//! The end-to-end MicroEdge simulation: control plane + data plane.
//!
//! A [`World`] owns the K3s-like orchestrator, the extended scheduler, one
//! data-plane [`TpuDevice`] per tRPi, and the camera streams. Camera frames
//! flow exactly as in the paper's Fig. 3:
//!
//! ```text
//! camera ─► TPU Client (pre-process) ─► LBS pick ─► network ─► TPU Service
//!                                                               (FIFO, run
//!                                                               to completion)
//!        ◄───────────── post-process ◄───────────── result ◄───┘
//! ```
//!
//! Streams can be admitted and removed while the simulation runs (the trace
//! study), TPUs can be failed (the failure-recovery extension), and every
//! run produces the metrics the paper's figures report: per-stream SLO
//! audits, overall and per-minute TPU utilization, and per-phase latency
//! breakdowns.
//!
//! ## Chaos mode
//!
//! [`World::enable_chaos`] arms the deterministic fault subsystem
//! ([`crate::faults`]): injected component faults ([`World::inject_faults`])
//! flow through the event queue, failures go *undetected* until the
//! heartbeat lease expires (the component silently drops traffic), and a
//! reconciliation controller re-admits displaced streams with capped
//! exponential backoff — optionally degrading frame rates in fairness tiers
//! instead of dropping tenants. Every stream then carries a
//! [`StreamPhase`], and [`RunResults`] reports recovery-latency breakdowns
//! (detection / rescheduling / swap-in) and per-lineage availability.
//! Without `enable_chaos` the world behaves exactly as before — the manual
//! [`World::fail_tpu`] / [`World::fail_node`] paths stay omniscient and
//! instantaneous.
//!
//! ## Multi-model pipelines
//!
//! A stream may chain several inference stages per frame
//! ([`StreamSpecBuilder::then`]): the frame visits each stage's TPU in
//! order, each stage load-balanced by its own LBS. When consecutive stages
//! land on the *same* TPU the inter-stage hop is free — the data-plane
//! pipeline optimization the paper's §8 calls for.
//!
//! # Examples
//!
//! ```
//! use microedge_cluster::topology::ClusterBuilder;
//! use microedge_core::config::Features;
//! use microedge_core::runtime::{StreamSpec, World};
//! use microedge_sim::time::SimTime;
//!
//! # use microedge_core::scheduler::DeployError;
//! # fn main() -> Result<(), DeployError> {
//! let cluster = ClusterBuilder::new().trpis(1).vrpis(2).build();
//! let mut world = World::new(cluster, Features::all());
//! let cam = world
//!     .admit_stream(StreamSpec::builder("cam-0", "ssd-mobilenet-v2").frame_limit(30).build())?;
//! let results = world.run_to_completion(SimTime::from_secs(10));
//! assert!(results.report(cam).is_some_and(|r| r.met_fps()));
//! # Ok(())
//! # }
//! ```

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;

use microedge_cluster::network::NetworkModel;
use microedge_cluster::node::NodeId;
use microedge_cluster::topology::Cluster;
use microedge_metrics::defrag::DefragStats;
use microedge_metrics::latency::{BreakdownRecorder, LatencyBreakdown};
use microedge_metrics::recovery::{
    AvailabilityTracker, RecoveryBreakdown, RecoveryRecorder, StreamAvailability,
};
use microedge_metrics::throughput::{SloReport, ThroughputAudit};
use microedge_metrics::utilization::FleetUtilization;
use microedge_models::catalog::Catalog;
use microedge_models::profile::{ModelId, ModelProfile};
use microedge_orch::lifecycle::Orchestrator;
use microedge_orch::pod::{PodId, PodSpec, ResourceRequest, EXT_MODEL, EXT_TPU_UNITS};
use microedge_sim::event::EventQueue;
use microedge_sim::rng::DetRng;
use microedge_sim::series::StepSeries;
use microedge_sim::stats::{LogLinearSketch, OnlineStats};
use microedge_sim::time::{SimDuration, SimTime};
use microedge_tpu::cocompile::CoCompiler;
use microedge_tpu::device::{DeviceStats, TpuDevice, TpuId};
use microedge_tpu::spec::TpuSpec;

use crate::client::SourceResolution;
use crate::config::{DataPlaneConfig, Features};
use crate::defrag::{self, DefragConfig};
use crate::faults::{ChaosConfig, FaultKind, FaultSchedule};
use crate::lbs::LbService;
use crate::scheduler::{DeployError, Deployment, ExtendedScheduler};
use crate::units::TpuUnits;

/// Identifies a camera stream for its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u64);

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream-{}", self.0)
    }
}

/// Bit position where [`StreamId::with_shard`] packs the shard index: the
/// low 40 bits stay the shard-local slab index (a trillion streams per
/// shard), the high bits name the shard.
pub const SHARD_ID_SHIFT: u32 = 40;

impl StreamId {
    /// This id as its dense slab index (streams are allocated contiguously
    /// per world). Checked: a stream id past `usize::MAX` would mean the
    /// slab itself could never have held the stream.
    #[must_use]
    pub fn index(self) -> usize {
        usize::try_from(self.0).expect("stream id fits the slab index space")
    }

    /// The id of the stream at dense slab index `i`.
    #[must_use]
    pub fn from_index(i: usize) -> StreamId {
        StreamId(u64::try_from(i).expect("slab index fits the u64 id space"))
    }

    /// Packs this shard-local id into the sharded replay's global id space.
    ///
    /// # Panics
    ///
    /// Panics if the local id overflows the 40-bit local field or the
    /// shard index overflows the remaining 24 bits — either overflow would
    /// silently alias another stream's id.
    #[must_use]
    pub fn with_shard(self, shard: u32) -> StreamId {
        assert!(
            self.0 < 1 << SHARD_ID_SHIFT,
            "shard-local stream id {id} overflows the global id space",
            id = self.0
        );
        assert!(
            u64::from(shard) < 1 << (u64::BITS - SHARD_ID_SHIFT),
            "shard index {shard} overflows the {bits}-bit shard field",
            bits = u64::BITS - SHARD_ID_SHIFT
        );
        StreamId((u64::from(shard) << SHARD_ID_SHIFT) | self.0)
    }

    /// The shard index a global id was packed with (0 for unsharded runs).
    #[must_use]
    pub fn shard(self) -> u32 {
        u32::try_from(self.0 >> SHARD_ID_SHIFT).expect("shard index fits u32")
    }

    /// The shard-local part of a global id.
    #[must_use]
    pub fn local(self) -> StreamId {
        StreamId(self.0 & ((1 << SHARD_ID_SHIFT) - 1))
    }
}

/// One inference stage of a stream's per-frame pipeline.
#[derive(Debug, Clone, PartialEq)]
struct StageSpec {
    model: ModelId,
    units: Option<TpuUnits>,
}

/// Describes one camera stream to admit.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSpec {
    name: String,
    stages: Vec<StageSpec>,
    fps: f64,
    frame_limit: Option<u64>,
    start_offset: SimDuration,
    collocated: bool,
    frame_filter: Option<(f64, u64)>,
    source: SourceResolution,
    export: bool,
}

impl StreamSpec {
    /// Starts building a stream whose first (often only) stage runs
    /// `model`, at the industry-standard 15 FPS.
    #[must_use]
    pub fn builder(name: &str, model: &str) -> StreamSpecBuilder {
        StreamSpecBuilder {
            spec: StreamSpec {
                name: name.to_owned(),
                stages: vec![StageSpec {
                    model: ModelId::new(model),
                    units: None,
                }],
                fps: 15.0,
                frame_limit: None,
                start_offset: SimDuration::ZERO,
                collocated: false,
                frame_filter: None,
                source: SourceResolution::FULL_HD,
                export: false,
            },
        }
    }

    /// Stream name (doubles as the pod name).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The first stage's model.
    #[must_use]
    pub fn model(&self) -> &ModelId {
        &self.stages[0].model
    }

    /// All stage models, in pipeline order.
    #[must_use]
    pub fn stage_models(&self) -> Vec<&ModelId> {
        self.stages.iter().map(|s| &s.model).collect()
    }

    /// Frame rate.
    #[must_use]
    pub fn fps(&self) -> f64 {
        self.fps
    }
}

/// Builder for [`StreamSpec`].
#[derive(Debug, Clone)]
pub struct StreamSpecBuilder {
    spec: StreamSpec,
}

impl StreamSpecBuilder {
    /// Sets the frame rate (default 15 FPS).
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not strictly positive.
    #[must_use]
    pub fn fps(mut self, fps: f64) -> Self {
        assert!(fps.is_finite() && fps > 0.0, "fps must be positive");
        self.spec.fps = fps;
        self
    }

    /// Overrides the *most recently added* stage's requested TPU units
    /// (default: derived by the offline profiling service from the model
    /// and frame rate).
    #[must_use]
    pub fn units(mut self, units: TpuUnits) -> Self {
        self.spec
            .stages
            .last_mut()
            .expect("builder always has a stage")
            .units = Some(units);
        self
    }

    /// Appends another inference stage to the per-frame pipeline.
    #[must_use]
    pub fn then(mut self, model: &str) -> Self {
        self.spec.stages.push(StageSpec {
            model: ModelId::new(model),
            units: None,
        });
        self
    }

    /// Stops the stream after `frames` frames (default: runs until
    /// removed).
    #[must_use]
    pub fn frame_limit(mut self, frames: u64) -> Self {
        self.spec.frame_limit = Some(frames);
        self
    }

    /// Delays the first frame — real cameras are not phase-aligned.
    #[must_use]
    pub fn start_offset(mut self, offset: SimDuration) -> Self {
        self.spec.start_offset = offset;
        self
    }

    /// Marks the stream's TPU as host-local (the bare-metal baseline):
    /// frames skip the network hop.
    #[must_use]
    pub fn collocated(mut self, collocated: bool) -> Self {
        self.spec.collocated = collocated;
        self
    }

    /// Sets the camera's native resolution (default 1080p); pre-processing
    /// cost scales with it.
    #[must_use]
    pub fn source_resolution(mut self, source: SourceResolution) -> Self {
        self.spec.source = source;
        self
    }

    /// Installs a NoScope-style difference detector (paper §1): only
    /// `pass_rate` of frames reach the TPU; the rest complete client-side
    /// after pre-processing. The caller should declare correspondingly
    /// reduced TPU units (see `microedge-workloads`' `DiffDetector`).
    ///
    /// # Panics
    ///
    /// Panics if `pass_rate` is outside `(0, 1]`.
    #[must_use]
    pub fn frame_filter(mut self, pass_rate: f64, seed: u64) -> Self {
        assert!(
            pass_rate > 0.0 && pass_rate <= 1.0,
            "pass rate must be in (0, 1], got {pass_rate}"
        );
        self.spec.frame_filter = Some((pass_rate, seed));
        self
    }

    /// Marks the stream's frame completions for cross-shard export: the
    /// sharded replay collects a [`FrameExport`] per completed frame from
    /// [`World::take_outbox`] and forwards it to a peer shard at the next
    /// epoch barrier (an analytics/aggregation consumer in another
    /// cluster). Unsharded runs ignore the flag beyond filling the outbox.
    #[must_use]
    pub fn export_completions(mut self, export: bool) -> Self {
        self.spec.export = export;
        self
    }

    /// Finalises the spec.
    #[must_use]
    pub fn build(self) -> StreamSpec {
        self.spec
    }
}

#[derive(Debug, Clone)]
struct InFlight {
    stream: StreamId,
    stage: usize,
    pre: SimDuration,
    trans_acc: SimDuration,
    infer_acc: SimDuration,
    arrived: SimTime,
}

#[derive(Debug)]
struct ServiceRuntime {
    device: TpuDevice,
    queue: VecDeque<InFlight>,
    current: Option<InFlight>,
    alive: bool,
    max_depth: usize,
}

#[derive(Debug)]
struct StageRuntime {
    /// Interned: every stream running the same model shares one profile
    /// (see `World::intern_profile`) instead of holding its own clone —
    /// at 100k streams the clones (and their heap model-id strings) were
    /// the largest per-stream allocation.
    profile: Arc<ModelProfile>,
    lbs: LbService,
    /// Network transfer time for this stage's input, fixed at admission
    /// (the input size and link model never change over a stream's life).
    /// Collocated streams and free local hops bypass this with zero.
    transfer: SimDuration,
}

#[derive(Debug)]
struct FrameFilter {
    pass_rate: f64,
    rng: DetRng,
}

/// Where a stream is in its service lifecycle. Exactly one phase applies at
/// any instant; without chaos mode only `Active`, `Lost`, `Removed`, and
/// `Superseded` occur.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StreamPhase {
    /// Serving at full rate.
    Active,
    /// Serving at a reduced frame rate (graceful degradation).
    Degraded,
    /// A component it depends on is down (detected or not); frames are
    /// being dropped but the stream has not been given up on.
    Interrupted,
    /// Displaced and waiting in the reconciler's pending-restart queue.
    Parked,
    /// Dropped with no pending recovery.
    Lost,
    /// Removed by the user.
    Removed,
    /// Restarted under a new stream id (see [`RunResults::successor`]).
    Superseded,
}

impl StreamPhase {
    /// `true` for phases in which the stream occupies the data plane
    /// (emission chain running, counted as served).
    #[must_use]
    pub fn is_live(self) -> bool {
        matches!(
            self,
            StreamPhase::Active | StreamPhase::Degraded | StreamPhase::Interrupted
        )
    }
}

impl fmt::Display for StreamPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StreamPhase::Active => "active",
            StreamPhase::Degraded => "degraded",
            StreamPhase::Interrupted => "interrupted",
            StreamPhase::Parked => "parked",
            StreamPhase::Lost => "lost",
            StreamPhase::Removed => "removed",
            StreamPhase::Superseded => "superseded",
        };
        f.write_str(s)
    }
}

#[derive(Debug)]
struct StreamRuntime {
    pod: PodId,
    spec: StreamSpec,
    stages: Vec<StageRuntime>,
    audit: ThroughputAudit,
    latency: OnlineStats,
    interval: SimDuration,
    frame_limit: Option<u64>,
    emitted: u64,
    collocated: bool,
    active: bool,
    filter: Option<FrameFilter>,
    preprocess: SimDuration,
    /// First stream id of this lineage (self for original admissions).
    root: StreamId,
    /// Lifecycle phase; kept consistent with `active` via `transition`.
    phase: StreamPhase,
    /// Degradation denominator: frames emit every `interval × den`.
    den: u32,
    /// Whether a `Frame` event chain is currently pending for this stream
    /// (guards against double emission chains across park/heal cycles).
    emission_alive: bool,
    /// Sequence number of the swap-in this stream is waiting on, if any;
    /// stale `SwapIn` events carry older numbers and are ignored.
    pending_swap: Option<u64>,
}

/// A control-plane command deliverable through the event queue at a chosen
/// instant — the unit of cross-shard control traffic. The sharded replay
/// holds commands in a global mailbox and releases each to its owning shard
/// at the epoch barrier covering its timestamp; unsharded callers can use
/// [`World::schedule_command`] directly to script mid-run admissions,
/// removals, and faults without stepping the world manually.
#[derive(Debug, Clone)]
pub enum WorldCommand {
    /// Admit a new stream when the command fires (boxed: specs are large
    /// and commands share the queue with hot-path events).
    Admit(Box<StreamSpec>),
    /// Remove a running stream.
    Remove(StreamId),
    /// Apply a component fault or repair (the chaos-mode injected path; a
    /// no-op unless [`World::enable_chaos`] armed the subsystem).
    Fault(FaultKind),
    /// Whole-cluster failure: remove every live (or parked) stream,
    /// capturing each as an [`EvacuatedStream`] for the fleet front door
    /// to re-place on surviving clusters (see [`crate::fleet`]).
    Evacuate,
}

/// A stream displaced by a whole-cluster failure, drained via
/// [`World::take_evacuations`] and re-admitted elsewhere by the fleet
/// front door.
#[derive(Debug, Clone)]
pub struct EvacuatedStream {
    /// The stream's id on the dead cluster.
    pub stream: StreamId,
    /// When the cluster died (the evacuation command's instant).
    pub fault_at: SimTime,
    /// The original spec, ready for re-admission.
    pub spec: StreamSpec,
}

/// One completed frame announced to another shard: the paper's cross-cluster
/// aggregation traffic. Carries everything the receiving side records, so
/// delivery needs no access to the producing shard's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameExport {
    /// Completion instant on the producing shard (post-processing done).
    pub at: SimTime,
    /// Producing stream, shard-local id.
    pub stream: StreamId,
    /// The frame's end-to-end latency.
    pub latency: SimDuration,
}

/// Kernel events. Completions are *not* events: a frame's completion time
/// is fully determined the moment its last TPU invocation finishes (or the
/// client filters it), so the kernel records completion metrics inline with
/// the future timestamp instead of bouncing a fourth event through the
/// queue — one quarter fewer events on the hot path, identical results.
#[derive(Debug)]
enum Ev {
    Frame(StreamId),
    Arrive(TpuId, InFlight),
    Done(TpuId),
    /// A component fault or repair takes effect (data plane only — the
    /// control plane stays oblivious until `Detect`).
    Fault(FaultKind),
    /// The heartbeat lease for a fault expires; `epoch` invalidates stale
    /// detections when the component repaired (or re-failed) in between.
    Detect {
        kind: FaultKind,
        epoch: u32,
    },
    /// Model parameters finished streaming onto a recovered placement;
    /// `seq` invalidates stale swap-ins superseded by a later recovery.
    SwapIn {
        stream: StreamId,
        seq: u64,
        breakdown: RecoveryBreakdown,
        restarted: bool,
    },
    /// Reconciliation pass: drain due pending-restart entries, then try
    /// upgrading degraded streams.
    Reconcile,
    /// A scheduled control-plane command fires (see [`WorldCommand`]).
    Command(WorldCommand),
    /// A frame completion exported by a peer shard arrives; the payload is
    /// its end-to-end latency, recorded into the remote-ingest sketch.
    Ingest(SimDuration),
}

/// Per-component fault bookkeeping (one per TPU, one per node — link
/// partitions share the node slot since the detector cannot tell them
/// apart).
#[derive(Debug, Default, Clone, Copy)]
struct CompFault {
    down_since: Option<SimTime>,
    /// Bumped on every new fault; `Detect` events from earlier downtimes
    /// carry stale epochs and are dropped.
    epoch: u32,
    detected: bool,
}

/// One displaced stream waiting for re-admission.
#[derive(Debug, Clone, Copy)]
struct ParkedStream {
    stream: StreamId,
    /// Consecutive failed re-admission attempts (drives backoff).
    attempts: u32,
    next_try: SimTime,
    fault_at: SimTime,
    detected_at: SimTime,
}

/// All chaos-mode state; boxed behind an `Option` so non-chaos worlds pay
/// nothing.
#[derive(Debug)]
struct ChaosState {
    config: ChaosConfig,
    tpus: Vec<CompFault>,
    nodes: Vec<CompFault>,
    parked: Vec<ParkedStream>,
    recorder: RecoveryRecorder,
    /// Availability per lineage root.
    trackers: BTreeMap<StreamId, AvailabilityTracker>,
    swap_seq: u64,
    /// Earliest pending `Reconcile` event, to avoid flooding the queue.
    reconcile_at: Option<SimTime>,
}

/// Aggregated outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResults {
    reports: BTreeMap<StreamId, SloReport>,
    latencies: BTreeMap<StreamId, OnlineStats>,
    average_utilization: f64,
    per_device_utilization: Vec<f64>,
    windowed_utilization: Vec<f64>,
    breakdowns: BreakdownRecorder,
    device_stats: Vec<DeviceStats>,
    max_queue_depths: Vec<usize>,
    used_tpus: usize,
    frames_dropped: u64,
    events_processed: u64,
    end: SimTime,
    recovery: RecoveryRecorder,
    availability: BTreeMap<StreamId, StreamAvailability>,
    phases: BTreeMap<StreamId, StreamPhase>,
    lineage: BTreeMap<StreamId, StreamId>,
    chain_latencies: BTreeMap<StreamId, OnlineStats>,
    remote_ingest: LogLinearSketch,
    commands_failed: u64,
    defrag: DefragStats,
}

impl RunResults {
    /// The SLO report for one stream.
    #[must_use]
    pub fn report(&self, stream: StreamId) -> Option<&SloReport> {
        self.reports.get(&stream)
    }

    /// All stream reports, in stream order.
    #[must_use]
    pub fn reports(&self) -> Vec<&SloReport> {
        self.reports.values().collect()
    }

    /// Per-frame end-to-end latency statistics (milliseconds) of one
    /// stream's TPU-served frames.
    #[must_use]
    pub fn latency(&self, stream: StreamId) -> Option<&OnlineStats> {
        self.latencies.get(&stream)
    }

    /// `true` when every TPU-served frame of every stream finished within
    /// `bound` — the per-frame latency SLO the paper's §2 motivates
    /// (unbounded queue build-up would eventually violate it).
    #[must_use]
    pub fn all_within_latency(&self, bound: SimDuration) -> bool {
        self.latencies
            .values()
            .all(|s| s.max().unwrap_or(0.0) <= bound.as_millis_f64())
    }

    /// `true` when every stream met its FPS SLO.
    #[must_use]
    pub fn all_met_fps(&self) -> bool {
        self.reports.values().all(SloReport::met_fps)
    }

    /// Mean TPU utilization over the whole run (Fig. 5b/5d).
    #[must_use]
    pub fn average_utilization(&self) -> f64 {
        self.average_utilization
    }

    /// Per-TPU utilization over the whole run.
    #[must_use]
    pub fn per_device_utilization(&self) -> &[f64] {
        &self.per_device_utilization
    }

    /// Fleet-average utilization per window (Fig. 6a).
    #[must_use]
    pub fn windowed_utilization(&self) -> &[f64] {
        &self.windowed_utilization
    }

    /// The per-phase latency statistics (Fig. 7b).
    #[must_use]
    pub fn breakdowns(&self) -> &BreakdownRecorder {
        &self.breakdowns
    }

    /// Mutable access to the latency statistics (e.g. for merging results
    /// from sharded runs via [`BreakdownRecorder::merge`]; percentile
    /// queries only need [`RunResults::breakdowns`]).
    pub fn breakdowns_mut(&mut self) -> &mut BreakdownRecorder {
        &mut self.breakdowns
    }

    /// Per-device execution counters.
    #[must_use]
    pub fn device_stats(&self) -> &[DeviceStats] {
        &self.device_stats
    }

    /// Deepest request backlog each TPU Service ever saw (queued plus
    /// executing). Admission control's job is to keep this small: a depth
    /// that grows with run length is the §2 queue build-up that eventually
    /// violates per-frame latency bounds.
    #[must_use]
    pub fn max_queue_depths(&self) -> &[usize] {
        &self.max_queue_depths
    }

    /// TPUs that carried load at the end of the run.
    #[must_use]
    pub fn used_tpus(&self) -> usize {
        self.used_tpus
    }

    /// Frames dropped by failed TPUs.
    #[must_use]
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped
    }

    /// Total simulation events the kernel delivered during the run — the
    /// denominator-independent work measure the perf harness reports as
    /// events/sec.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The instant the run was finalised at.
    #[must_use]
    pub fn end(&self) -> SimTime {
        self.end
    }

    /// Recovery-latency breakdowns (detection / rescheduling / swap-in)
    /// across every completed recovery. Empty without chaos mode.
    #[must_use]
    pub fn recovery(&self) -> &RecoveryRecorder {
        &self.recovery
    }

    /// Mutable access to the recovery recorder (e.g. for merging results
    /// from sharded runs via [`RecoveryRecorder::merge`]; percentile
    /// queries only need [`RunResults::recovery`]).
    pub fn recovery_mut(&mut self) -> &mut RecoveryRecorder {
        &mut self.recovery
    }

    /// Heap bytes held by the run's latency and recovery distributions —
    /// the telemetry the sketch keeps constant-size. Independent of frame
    /// count once the workload's latency range is covered (the scale sweep
    /// asserts this), unlike the old sample-retaining histograms whose
    /// footprint grew O(frames).
    #[must_use]
    pub fn telemetry_memory_bytes(&self) -> usize {
        self.breakdowns.memory_bytes()
            + self.recovery.memory_bytes()
            + self.remote_ingest.memory_bytes()
    }

    /// Latency sketch of every frame completion announced by peer shards
    /// (cross-shard aggregation traffic). Empty in unsharded runs.
    #[must_use]
    pub fn remote_ingest(&self) -> &LogLinearSketch {
        &self.remote_ingest
    }

    /// Scheduled control-plane commands that fired but failed (admission
    /// rejected, stream unknown). Deterministic, so it participates in the
    /// byte-compare artifacts.
    #[must_use]
    pub fn commands_failed(&self) -> u64 {
        self.commands_failed
    }

    /// Background-defragmentation counters for the run (all zero when the
    /// defragmenter was never enabled). Integer-exact, so sharded merges
    /// sum precisely and the counters participate in byte-compared
    /// artifacts.
    #[must_use]
    pub fn defrag(&self) -> &DefragStats {
        &self.defrag
    }

    /// Merges per-shard results into one fleet-level [`RunResults`], the
    /// final step of a sharded replay. Stream ids are remapped with
    /// [`StreamId::with_shard`] so shards cannot collide; distributions
    /// merge via the PR 4 sketch merges (merge ≡ concatenated recording),
    /// counters sum, and utilization averages weight each shard by its
    /// device count. The merge is pure data-plumbing — shard order is fixed
    /// by the caller's `Vec`, so the result is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or a shard-local stream id overflows the
    /// 40-bit local field.
    #[must_use]
    pub fn merge_shards(parts: Vec<RunResults>) -> RunResults {
        assert!(!parts.is_empty(), "cannot merge zero shards");
        let total_devices: usize = parts.iter().map(|p| p.per_device_utilization.len()).sum();
        let windows = parts
            .iter()
            .map(|p| p.windowed_utilization.len())
            .max()
            .unwrap_or(0);
        let mut merged = RunResults {
            reports: BTreeMap::new(),
            latencies: BTreeMap::new(),
            average_utilization: 0.0,
            per_device_utilization: Vec::with_capacity(total_devices),
            windowed_utilization: vec![0.0; windows],
            breakdowns: BreakdownRecorder::new(),
            device_stats: Vec::new(),
            max_queue_depths: Vec::new(),
            used_tpus: 0,
            frames_dropped: 0,
            events_processed: 0,
            end: SimTime::ZERO,
            recovery: RecoveryRecorder::new(),
            availability: BTreeMap::new(),
            phases: BTreeMap::new(),
            lineage: BTreeMap::new(),
            chain_latencies: BTreeMap::new(),
            remote_ingest: LogLinearSketch::new(),
            commands_failed: 0,
            defrag: DefragStats::default(),
        };
        for (shard, part) in parts.into_iter().enumerate() {
            let shard = u32::try_from(shard).expect("shard count fits u32");
            let remap = |id: StreamId| id.with_shard(shard);
            // A shard's windows are that shard's fleet average; weight by
            // its device share (a shard that ended early idles at 0).
            let weight = if total_devices == 0 {
                0.0
            } else {
                part.per_device_utilization.len() as f64 / total_devices as f64
            };
            merged.average_utilization += part.average_utilization * weight;
            for (w, v) in merged
                .windowed_utilization
                .iter_mut()
                .zip(&part.windowed_utilization)
            {
                *w += v * weight;
            }
            merged
                .reports
                .extend(part.reports.into_iter().map(|(id, r)| (remap(id), r)));
            merged
                .latencies
                .extend(part.latencies.into_iter().map(|(id, s)| (remap(id), s)));
            merged
                .availability
                .extend(part.availability.into_iter().map(|(id, a)| (remap(id), a)));
            merged
                .phases
                .extend(part.phases.into_iter().map(|(id, p)| (remap(id), p)));
            merged.lineage.extend(
                part.lineage
                    .into_iter()
                    .map(|(old, new)| (remap(old), remap(new))),
            );
            merged.chain_latencies.extend(
                part.chain_latencies
                    .into_iter()
                    .map(|(id, s)| (remap(id), s)),
            );
            merged
                .per_device_utilization
                .extend(part.per_device_utilization);
            merged.device_stats.extend(part.device_stats);
            merged.max_queue_depths.extend(part.max_queue_depths);
            merged.breakdowns.merge(&part.breakdowns);
            merged.recovery.merge(&part.recovery);
            merged.remote_ingest.merge(&part.remote_ingest);
            merged.used_tpus += part.used_tpus;
            merged.frames_dropped += part.frames_dropped;
            merged.events_processed += part.events_processed;
            merged.commands_failed += part.commands_failed;
            merged.defrag.merge(&part.defrag);
            merged.end = merged.end.max(part.end);
        }
        merged
    }

    /// Availability totals for the lineage rooted at `root`. Populated only
    /// in chaos mode.
    #[must_use]
    pub fn availability(&self, root: StreamId) -> Option<&StreamAvailability> {
        self.availability.get(&root)
    }

    /// All per-lineage availability totals, by root id.
    #[must_use]
    pub fn availabilities(&self) -> &BTreeMap<StreamId, StreamAvailability> {
        &self.availability
    }

    /// Folds a fleet-level availability entry into the results — the
    /// sharded replay's whole-cluster evacuations, keyed by the evacuated
    /// stream's packed global id. Overrides any per-shard entry for the
    /// same id (the fleet tier has the complete outage picture).
    pub fn merge_availability(&mut self, root: StreamId, availability: StreamAvailability) {
        self.availability.insert(root, availability);
    }

    /// Records that `old` was superseded by `new` — the fleet tier's
    /// cross-cluster re-admission lineage, in the packed global id space.
    pub fn link_lineage(&mut self, old: StreamId, new: StreamId) {
        self.lineage.insert(old, new);
    }

    /// The phase each stream ended the run in.
    #[must_use]
    pub fn stream_phase(&self, stream: StreamId) -> Option<StreamPhase> {
        self.phases.get(&stream).copied()
    }

    /// Streams that ended the run lost (no pending recovery).
    #[must_use]
    pub fn lost_streams(&self) -> Vec<StreamId> {
        self.phases
            .iter()
            .filter(|(_, p)| **p == StreamPhase::Lost)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Streams still waiting in the pending-restart queue at end of run.
    #[must_use]
    pub fn parked_streams(&self) -> Vec<StreamId> {
        self.phases
            .iter()
            .filter(|(_, p)| **p == StreamPhase::Parked)
            .map(|(&id, _)| id)
            .collect()
    }

    /// The stream that superseded `stream` via a restart, if any.
    #[must_use]
    pub fn successor(&self, stream: StreamId) -> Option<StreamId> {
        self.lineage.get(&stream).copied()
    }

    /// End-to-end latency statistics merged across every incarnation of the
    /// lineage rooted at `root` — restarts no longer fragment a stream's
    /// history.
    #[must_use]
    pub fn chain_latency(&self, root: StreamId) -> Option<&OnlineStats> {
        self.chain_latencies.get(&root)
    }

    /// Renders the whole run as an aligned report: one row per stream
    /// (throughput, latency, SLO) plus a fleet footer (utilization, queue
    /// depths, drops).
    #[must_use]
    pub fn render_summary(&self) -> String {
        let mut table = microedge_metrics::report::Table::new(&[
            "stream",
            "frames",
            "achieved FPS",
            "mean e2e (ms)",
            "max e2e (ms)",
            "SLO",
        ]);
        for (id, report) in &self.reports {
            let latency = self.latencies.get(id);
            table.row_owned(vec![
                report.stream().to_owned(),
                report.completed().to_string(),
                format!("{:.2}", report.achieved_fps()),
                format!("{:.2}", latency.map_or(0.0, OnlineStats::mean)),
                format!("{:.2}", latency.and_then(OnlineStats::max).unwrap_or(0.0)),
                if report.met_fps() { "met" } else { "VIOLATED" }.to_owned(),
            ]);
        }
        let depths: Vec<String> = self
            .max_queue_depths
            .iter()
            .map(ToString::to_string)
            .collect();
        format!(
            "{table}fleet: {:.1}% avg TPU utilization over {:.1}s | max queue depths [{}] | {} frames dropped\n",
            self.average_utilization * 100.0,
            self.end.as_secs_f64(),
            depths.join(", "),
            self.frames_dropped,
        )
    }
}

/// The complete simulated MicroEdge deployment.
pub struct World {
    queue: EventQueue<Ev>,
    orch: Orchestrator,
    sched: ExtendedScheduler,
    dp: DataPlaneConfig,
    net: NetworkModel,
    services: Vec<ServiceRuntime>,
    /// Slab of stream runtimes indexed by `StreamId.0`. Stream ids are
    /// allocated sequentially and never reused — removal merely clears
    /// `active` — so a dense `Vec` replaces the per-event `BTreeMap`
    /// lookups on the frame hot path. `BTreeMap`s survive only at the
    /// admission and reporting boundaries.
    streams: Vec<StreamRuntime>,
    active_count: usize,
    /// Interned model profiles shared by every stream stage running the
    /// model (see `intern_profile`).
    profiles: BTreeMap<ModelId, Arc<ModelProfile>>,
    pods_to_streams: BTreeMap<PodId, StreamId>,
    fleet: FleetUtilization,
    breakdowns: BreakdownRecorder,
    served: StepSeries,
    frames_dropped: u64,
    next_stream: u64,
    /// Old stream id → the id that superseded it via a restart.
    lineage: BTreeMap<StreamId, StreamId>,
    /// Armed by [`World::enable_chaos`]; `None` costs nothing on hot paths.
    chaos: Option<Box<ChaosState>>,
    /// Completions of export-flagged streams since the last
    /// [`World::take_outbox`], in completion-record order (monotone in
    /// `at`): the shard's outbound cross-shard traffic.
    outbox: Vec<FrameExport>,
    /// Latency sketch of peer-shard completions delivered via
    /// [`World::schedule_ingest`].
    ingest: LogLinearSketch,
    /// Scheduled commands that fired but failed.
    commands_failed: u64,
    /// Streams displaced by [`WorldCommand::Evacuate`] since the last
    /// [`World::take_evacuations`] — the whole-cluster-failure outbox the
    /// fleet front door drains at epoch barriers.
    evacuations: Vec<EvacuatedStream>,
    /// Armed by [`World::enable_defrag`]; `None` costs nothing on hot
    /// paths and leaves behavior identical to a defrag-free world.
    defrag: Option<Box<DefragRuntime>>,
}

/// Background-defragmenter state, boxed behind an `Option` so worlds that
/// never enable it pay nothing.
#[derive(Debug)]
struct DefragRuntime {
    config: DefragConfig,
    stats: DefragStats,
    /// Epoch barriers seen since enablement; a planning cycle runs every
    /// `config.interval_epochs` of them.
    epochs: u64,
}

/// The sharded replay moves whole shards across the worker pool between
/// epochs, so a `World` (and everything it owns) must stay `Send`.
fn _assert_world_is_send() {
    fn assert_send<T: Send>() {}
    assert_send::<World>();
}

impl fmt::Debug for World {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("World")
            .field("now", &self.queue.now())
            .field("streams", &self.streams.len())
            .field("tpus", &self.services.len())
            .finish()
    }
}

/// The window used for per-interval metrics (one minute, as in Fig. 6).
pub const METRIC_WINDOW: SimDuration = SimDuration::from_secs(60);

impl World {
    /// Builds a world over `cluster` with the built-in catalog and the
    /// shipped First-Fit policy.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no TPUs.
    #[must_use]
    pub fn new(cluster: Cluster, features: Features) -> Self {
        Self::with_scheduler(
            cluster.clone(),
            ExtendedScheduler::new(&cluster, Catalog::builtin(), features),
        )
    }

    /// Builds a world with a custom extended scheduler (e.g. a baseline
    /// policy or a different catalog).
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no TPUs.
    #[must_use]
    pub fn with_scheduler(cluster: Cluster, sched: ExtendedScheduler) -> Self {
        let tpu_count = cluster.tpu_count();
        assert!(tpu_count > 0, "a MicroEdge world needs at least one TPU");
        let net = *cluster.network();
        let services = (0..tpu_count)
            .map(|_| ServiceRuntime {
                device: TpuDevice::new(TpuSpec::coral_usb()),
                queue: VecDeque::new(),
                current: None,
                alive: true,
                max_depth: 0,
            })
            .collect();
        World {
            queue: EventQueue::new(),
            orch: Orchestrator::new(cluster),
            sched,
            dp: DataPlaneConfig::calibrated(),
            net,
            services,
            streams: Vec::new(),
            active_count: 0,
            profiles: BTreeMap::new(),
            pods_to_streams: BTreeMap::new(),
            fleet: FleetUtilization::new(tpu_count, METRIC_WINDOW),
            breakdowns: BreakdownRecorder::new(),
            served: StepSeries::new(METRIC_WINDOW),
            frames_dropped: 0,
            next_stream: 0,
            lineage: BTreeMap::new(),
            chaos: None,
            outbox: Vec::new(),
            ingest: LogLinearSketch::new(),
            commands_failed: 0,
            evacuations: Vec::new(),
            defrag: None,
        }
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Overrides the data-plane calibration. Call before admitting streams
    /// — already-admitted streams keep their cached pre-processing cost.
    pub fn set_data_plane(&mut self, dp: DataPlaneConfig) {
        self.dp = dp;
    }

    /// The extended scheduler (for inspecting pool state).
    #[must_use]
    pub fn scheduler(&self) -> &ExtendedScheduler {
        &self.sched
    }

    /// The orchestrator (for inspecting pods).
    #[must_use]
    pub fn orchestrator(&self) -> &Orchestrator {
        &self.orch
    }

    /// Number of active streams (maintained incrementally; O(1)).
    #[must_use]
    pub fn active_streams(&self) -> usize {
        debug_assert_eq!(
            self.active_count,
            self.streams.iter().filter(|s| s.active).count(),
            "active-stream counter drifted from the slab"
        );
        self.active_count
    }

    /// The pod backing a stream, if the stream exists.
    #[must_use]
    pub fn pod_of(&self, stream: StreamId) -> Option<PodId> {
        self.stream(stream).map(|s| s.pod)
    }

    #[inline]
    fn stream(&self, id: StreamId) -> Option<&StreamRuntime> {
        self.streams.get(id.index())
    }

    #[inline]
    fn stream_mut(&mut self, id: StreamId) -> Option<&mut StreamRuntime> {
        self.streams.get_mut(id.index())
    }

    /// Moves a stream to `phase`, keeping the active counter and the
    /// served series in sync. Returns `true` when the liveness flag
    /// changed.
    fn transition(&mut self, id: StreamId, phase: StreamPhase, now: SimTime) -> bool {
        let Some(stream) = self.streams.get_mut(id.index()) else {
            return false;
        };
        let was = stream.active;
        let is = phase.is_live();
        stream.phase = phase;
        stream.active = is;
        if was && !is {
            self.active_count -= 1;
            self.served.add(now, -1.0);
            true
        } else if !was && is {
            self.active_count += 1;
            self.served.add(now, 1.0);
            true
        } else {
            false
        }
    }

    /// Admits a camera stream: TPU admission (all pipeline stages), pod
    /// creation, LBS seeding, and scheduling of its first frame at the
    /// current time plus the stream's start offset.
    ///
    /// # Errors
    ///
    /// See [`DeployError`]; on error nothing is changed.
    pub fn admit_stream(&mut self, spec: StreamSpec) -> Result<StreamId, DeployError> {
        self.admit_with_root(spec, None)
    }

    /// Returns the shared, interned profile for `model`, cloning out of the
    /// catalog only on first use — every stream running the same model
    /// holds the same `Arc`.
    fn intern_profile(&mut self, model: &ModelId) -> Result<Arc<ModelProfile>, DeployError> {
        if let Some(profile) = self.profiles.get(model) {
            return Ok(Arc::clone(profile));
        }
        let profile = Arc::new(
            self.sched
                .catalog()
                .get(model)
                .ok_or_else(|| DeployError::UnknownModel(model.clone()))?
                .clone(),
        );
        self.profiles.insert(model.clone(), Arc::clone(&profile));
        Ok(profile)
    }

    /// Builds the K3s pod spec for a stream (extension knobs from profiled
    /// units) along with the per-stage model profiles.
    fn build_pod_spec(
        &mut self,
        spec: &StreamSpec,
    ) -> Result<(PodSpec, Vec<Arc<ModelProfile>>), DeployError> {
        let mut profiles = Vec::with_capacity(spec.stages.len());
        let mut model_ext = Vec::with_capacity(spec.stages.len());
        let mut units_ext = Vec::with_capacity(spec.stages.len());
        for stage in &spec.stages {
            let profile = self.intern_profile(&stage.model)?;
            let units = stage
                .units
                .unwrap_or_else(|| self.dp.profiled_units(&profile, spec.fps));
            model_ext.push(stage.model.as_str().to_owned());
            units_ext.push(format!("{}", units.as_f64()));
            profiles.push(profile);
        }
        let pod_spec = PodSpec::builder(&spec.name, "microedge-camera:latest")
            .resources(ResourceRequest::camera_default())
            .extension(EXT_MODEL, &model_ext.join(","))
            .extension(EXT_TPU_UNITS, &units_ext.join(","))
            .build();
        Ok((pod_spec, profiles))
    }

    fn admit_with_root(
        &mut self,
        spec: StreamSpec,
        root: Option<StreamId>,
    ) -> Result<StreamId, DeployError> {
        let (pod_spec, profiles) = self.build_pod_spec(&spec)?;
        let deployment = self.sched.deploy(&mut self.orch, pod_spec)?;
        let stages: Vec<StageRuntime> = deployment
            .stages()
            .iter()
            .zip(profiles)
            .map(|(grant, profile)| StageRuntime {
                transfer: self.net.transfer_time(profile.input_bytes()),
                profile,
                lbs: grant.lbs(),
            })
            .collect();
        for grant in deployment.stages() {
            for alloc in grant.allocations() {
                self.sync_device(alloc.tpu());
            }
        }
        let id = StreamId(self.next_stream);
        debug_assert_eq!(id.index(), self.streams.len(), "slab ids are dense");
        self.next_stream += 1;
        let now = self.queue.now();
        let start_offset = spec.start_offset;
        // The spec moves into the runtime whole — no per-admission deep
        // clone of its name and stage list.
        let runtime = StreamRuntime {
            pod: deployment.pod(),
            stages,
            audit: ThroughputAudit::new(spec.fps),
            latency: OnlineStats::new(),
            interval: SimDuration::from_secs_f64(1.0 / spec.fps),
            frame_limit: spec.frame_limit,
            emitted: 0,
            collocated: spec.collocated,
            active: true,
            filter: spec.frame_filter.map(|(pass_rate, seed)| FrameFilter {
                pass_rate,
                rng: DetRng::seed_from(seed),
            }),
            preprocess: self.dp.preprocess_for(spec.source),
            spec,
            root: root.unwrap_or(id),
            phase: StreamPhase::Active,
            den: 1,
            emission_alive: true,
            pending_swap: None,
        };
        self.pods_to_streams.insert(deployment.pod(), id);
        self.streams.push(runtime);
        self.active_count += 1;
        self.served.add(now, 1.0);
        self.queue.schedule_after(start_offset, Ev::Frame(id));
        if let Some(chaos) = self.chaos.as_mut() {
            let lineage_root = root.unwrap_or(id);
            let tracker = chaos.trackers.entry(lineage_root).or_default();
            if root.is_some() {
                // A restarted incarnation: the lineage's outage ends here.
                tracker.outage_ends(now);
                tracker.count_restart();
            }
        }
        Ok(id)
    }

    /// Removes a stream: the pod is deleted and its TPU units return to the
    /// pool. In-flight frames drain normally.
    ///
    /// # Errors
    ///
    /// Propagates orchestrator errors for unknown pods.
    pub fn remove_stream(&mut self, id: StreamId) -> Result<(), DeployError> {
        let stream = self.stream(id).ok_or(DeployError::UnknownStream(id.0))?;
        if !stream.active && stream.phase != StreamPhase::Parked {
            return Err(DeployError::InvalidStreamState(id.0, "not running"));
        }
        let pod = stream.pod;
        let now = self.queue.now();
        let was_parked = stream.phase == StreamPhase::Parked;
        self.transition(id, StreamPhase::Removed, now);
        if was_parked {
            // The pod is already gone; just drop the pending-restart entry.
            if let Some(chaos) = self.chaos.as_mut() {
                chaos.parked.retain(|p| p.stream != id);
                chaos
                    .trackers
                    .entry(self.streams[id.index()].root)
                    .or_default()
                    .outage_ends(now);
            }
            return Ok(());
        }
        self.sched.teardown(&mut self.orch, pod)?;
        // Capacity came back: give the reconciler a chance to drain parked
        // streams immediately.
        self.nudge_reconciler(now);
        Ok(())
    }

    /// Simulates the stream's pod crashing *without* notifying the
    /// extended scheduler: the orchestrator marks the pod terminated and
    /// frames stop, but the pod's TPU units remain held until the
    /// reclamation component notices (paper §3.1 step ⑤ — exercised via
    /// [`World::poll_reclamation`]).
    ///
    /// # Errors
    ///
    /// Propagates orchestrator errors for unknown/terminated pods.
    pub fn crash_stream(&mut self, id: StreamId) -> Result<(), DeployError> {
        let stream = self.stream(id).ok_or(DeployError::UnknownStream(id.0))?;
        if !stream.active {
            return Err(DeployError::InvalidStreamState(id.0, "not running"));
        }
        let pod = stream.pod;
        let now = self.queue.now();
        self.transition(id, StreamPhase::Lost, now);
        self.orch.delete_pod(pod)?;
        if let Some(chaos) = self.chaos.as_mut() {
            let root = self.streams[id.index()].root;
            chaos.trackers.entry(root).or_default().outage_begins(now);
        }
        Ok(())
    }

    /// One poll of the reclamation component: returns the TPU units of
    /// every terminated pod that still holds an assignment, and reports the
    /// pods reclaimed.
    pub fn poll_reclamation(&mut self) -> Vec<PodId> {
        self.sched.reclaim_terminated(&self.orch)
    }

    /// Kills a TPU's data plane: queued and executing frames are dropped
    /// and the service stops accepting traffic. Control-plane state is
    /// untouched.
    fn kill_tpu_data_plane(&mut self, now: SimTime, tpu: TpuId) {
        let svc = &mut self.services[tpu.index()];
        svc.alive = false;
        self.frames_dropped += svc.queue.len() as u64;
        svc.queue.clear();
        if svc.current.take().is_some() {
            self.frames_dropped += 1;
            self.fleet.tracker_mut(tpu.index()).end_busy(now);
        }
    }

    /// Applies new per-stage placements to a stream's load balancers and
    /// reloads the affected devices.
    fn apply_plans(&mut self, stream_id: StreamId, plans: &[crate::scheduler::StagePlacement]) {
        if let Some(stream) = self.stream_mut(stream_id) {
            for (stage, (_, allocations)) in stream.stages.iter_mut().zip(plans) {
                stage.lbs = LbService::from_allocations(allocations);
            }
        }
        for (_, allocations) in plans {
            for alloc in allocations {
                self.sync_device(alloc.tpu());
            }
        }
    }

    /// Arms the background defragmenter. From then on every
    /// [`World::defrag_epoch`] tick counts toward `config.interval_epochs`
    /// and armed ticks run one budgeted repacking cycle. Sharded runs call
    /// the tick at every epoch barrier; plain worlds may call it by hand
    /// between [`World::run_until`] slices.
    pub fn enable_defrag(&mut self, config: DefragConfig) {
        self.defrag = Some(Box::new(DefragRuntime {
            config,
            stats: DefragStats::default(),
            epochs: 0,
        }));
    }

    /// The defragmenter's counters so far, if it is enabled. The final
    /// values also land in [`RunResults::defrag`].
    #[must_use]
    pub fn defrag_stats(&self) -> Option<&DefragStats> {
        self.defrag.as_ref().map(|d| &d.stats)
    }

    /// One defragmenter tick. A no-op unless [`World::enable_defrag`] was
    /// called and this tick completes an `interval_epochs` period; an armed
    /// tick plans donor evictions against the live pool and executes the
    /// ones whose recovered contiguous capacity justifies their modeled
    /// disruption (see [`crate::defrag`]).
    ///
    /// Pods of streams that are mid-swap or not serving are frozen — the
    /// same swap-seq guard the failure-recovery path uses — so a migration
    /// never races a recovery. Each migrated stream's load-balancer weights
    /// are re-seeded immediately (the move is planned at a quiescent epoch
    /// barrier, so no in-flight frame observes the old placement), the
    /// donor's device cache is re-synced, and in chaos mode the stream is
    /// held under a pending-swap guard for the move's modeled cost so
    /// rescale/upgrade paths keep their hands off until the migration
    /// settles.
    pub fn defrag_epoch(&mut self) {
        let Some(runtime) = self.defrag.as_mut() else {
            return;
        };
        runtime.epochs += 1;
        if runtime.epochs % u64::from(runtime.config.interval_epochs.max(1)) != 0 {
            return;
        }
        let config = runtime.config;
        let mut frozen = BTreeSet::new();
        for s in &self.streams {
            let serving = matches!(s.phase, StreamPhase::Active | StreamPhase::Degraded);
            if s.pending_swap.is_some() || !serving {
                frozen.insert(s.pod);
            }
        }
        let mut stats = DefragStats::default();
        let moves = defrag::run_cycle(&mut self.sched, &frozen, &config, &mut stats);
        for mv in &moves {
            for pod_move in &mv.plan.moves {
                let sid = self.pods_to_streams[&pod_move.pod];
                self.apply_plans(sid, &pod_move.plans);
            }
            self.sync_device(mv.plan.donor);
            if mv.cost > SimDuration::ZERO {
                for pod_move in &mv.plan.moves {
                    let sid = self.pods_to_streams[&pod_move.pod];
                    self.guard_migration(sid, mv.cost);
                }
            }
        }
        if let Some(runtime) = self.defrag.as_mut() {
            runtime.stats.merge(&stats);
        }
    }

    /// Holds a just-migrated stream under the swap-seq guard for the
    /// migration's modeled duration. Mirrors `schedule_swap_in`, but the
    /// cost is the defragmenter's priced disruption and there is nothing to
    /// detect or reschedule. The stream keeps serving; when the `SwapIn`
    /// guard event fires on an `Active`/`Degraded` stream it clears
    /// `pending_swap` and records nothing. No-op without chaos mode, where
    /// no concurrent rescale/recovery path exists to guard against.
    fn guard_migration(&mut self, sid: StreamId, cost: SimDuration) {
        let now = self.queue.now();
        let Some(chaos) = self.chaos.as_mut() else {
            return;
        };
        chaos.swap_seq += 1;
        let seq = chaos.swap_seq;
        let breakdown = RecoveryBreakdown::new(SimDuration::ZERO, SimDuration::ZERO, cost);
        if let Some(stream) = self.streams.get_mut(sid.index()) {
            stream.pending_swap = Some(seq);
        }
        self.queue.schedule_at(
            now + cost,
            Ev::SwapIn {
                stream: sid,
                seq,
                breakdown,
                restarted: false,
            },
        );
    }

    /// Fails a TPU mid-run: queued and executing frames on it are dropped,
    /// and affected pods are re-admitted on surviving TPUs where possible
    /// (the paper's failure-recovery extension). Streams whose pods cannot
    /// be re-placed are deactivated.
    ///
    /// Idempotent and non-panicking: an unknown or already-failed TPU
    /// displaces nothing and returns an empty list, matching the
    /// orchestrator's `fail_node` semantics. This is the omniscient,
    /// instantaneous path; under chaos mode injected faults go through the
    /// lease-based detector instead.
    ///
    /// Returns the streams that lost TPU service.
    pub fn fail_tpu(&mut self, tpu: TpuId) -> Vec<StreamId> {
        let Some(svc) = self.services.get(tpu.index()) else {
            return Vec::new();
        };
        if !svc.alive {
            return Vec::new();
        }
        let now = self.queue.now();
        self.kill_tpu_data_plane(now, tpu);
        let outcome = self.sched.handle_tpu_failure(tpu);
        for recovered in &outcome.recovered {
            let stream_id = self.pods_to_streams[&recovered.pod];
            self.apply_plans(stream_id, &recovered.plans);
        }
        let mut lost_streams = Vec::new();
        for pod in outcome.lost {
            let stream_id = self.pods_to_streams[&pod];
            self.transition(stream_id, StreamPhase::Lost, now);
            lost_streams.push(stream_id);
        }
        lost_streams
    }

    /// Fails an entire node (tRPi or vRPi): the orchestrator terminates
    /// every pod hosted on it, the node stops accepting pods, and — if a
    /// TPU hangs off the node — that TPU fails too, with displaced streams
    /// re-admitted on survivors where possible. Streams whose *application
    /// container* lived on the dead node are deactivated outright (their
    /// pod is gone) and their TPU units reclaimed.
    ///
    /// Returns the streams that stopped as a result. Non-panicking: an
    /// unknown node displaces nothing.
    pub fn fail_node(&mut self, node: NodeId) -> Vec<StreamId> {
        if self.orch.cluster().node(node).is_none() {
            return Vec::new();
        }
        let now = self.queue.now();
        // The node's TPU (if any) dies with it.
        let tpu = self.tpu_on_node(node);
        let mut stopped = match tpu {
            Some(tpu) => self.fail_tpu(tpu),
            None => Vec::new(),
        };
        // Pods hosted on the node terminate; their streams stop emitting.
        let displaced = self.orch.fail_node(node);
        for pod in displaced {
            if let Some(&stream_id) = self.pods_to_streams.get(&pod) {
                if self.transition(stream_id, StreamPhase::Lost, now) {
                    stopped.push(stream_id);
                }
            }
        }
        // The reclamation component returns the dead pods' TPU units.
        self.sched.reclaim_terminated(&self.orch);
        stopped.sort_unstable();
        stopped.dedup();
        stopped
    }

    /// The TPU attached to `node`, if any.
    fn tpu_on_node(&self, node: NodeId) -> Option<TpuId> {
        self.sched
            .pool()
            .accounts()
            .iter()
            .find(|a| a.node() == node)
            .map(|a| a.id())
    }

    /// Drains a TPU for maintenance: its load live-migrates to the rest of
    /// the fleet (new frames route elsewhere; frames already queued on it
    /// finish normally — zero frames are dropped). Returns the migrated
    /// streams.
    ///
    /// # Errors
    ///
    /// [`DeployError::InsufficientTpu`] when the remaining fleet cannot
    /// absorb the load; nothing changes in that case.
    pub fn drain_tpu(&mut self, tpu: TpuId) -> Result<Vec<StreamId>, DeployError> {
        let migrated = self.sched.drain_tpu(tpu)?;
        let mut streams = Vec::with_capacity(migrated.len());
        for (pod, plans) in &migrated {
            let stream_id = self.pods_to_streams[pod];
            if let Some(stream) = self.stream_mut(stream_id) {
                for (stage, (_, allocations)) in stream.stages.iter_mut().zip(plans) {
                    stage.lbs = LbService::from_allocations(allocations);
                }
            }
            for (_, allocations) in plans {
                for alloc in allocations {
                    self.sync_device(alloc.tpu());
                }
            }
            streams.push(stream_id);
        }
        Ok(streams)
    }

    /// Attempts to restart a stream that lost service (pod crash, node or
    /// TPU failure): a fresh admission of the original spec under a new
    /// stream id — the controller loop a production deployment would run
    /// on `PodTerminated` events. Frames resume at the current time.
    ///
    /// The new stream inherits the old stream's lineage root, so
    /// availability and chain-latency metrics aggregate across restarts
    /// instead of treating the revived stream as an unrelated one; the old
    /// id is marked [`StreamPhase::Superseded`] and linked to its successor
    /// (see [`RunResults::successor`]).
    ///
    /// # Errors
    ///
    /// [`DeployError::UnknownStream`] for ids never issued,
    /// [`DeployError::InvalidStreamState`] when the stream is still active
    /// or already superseded, and admission errors when the spec no longer
    /// fits the surviving capacity.
    pub fn restart_stream(&mut self, id: StreamId) -> Result<StreamId, DeployError> {
        let stream = self.stream(id).ok_or(DeployError::UnknownStream(id.0))?;
        if stream.active {
            return Err(DeployError::InvalidStreamState(id.0, "still active"));
        }
        if stream.phase == StreamPhase::Superseded {
            return Err(DeployError::InvalidStreamState(id.0, "already superseded"));
        }
        let root = stream.root;
        let mut spec = stream.spec.clone();
        spec.start_offset = SimDuration::ZERO;
        let was_parked = stream.phase == StreamPhase::Parked;
        let new_id = self.admit_with_root(spec, Some(root))?;
        if was_parked {
            if let Some(chaos) = self.chaos.as_mut() {
                chaos.parked.retain(|p| p.stream != id);
            }
        }
        if let Some(stream) = self.stream_mut(id) {
            stream.phase = StreamPhase::Superseded;
        }
        self.lineage.insert(id, new_id);
        Ok(new_id)
    }

    /// Arms chaos mode: injected faults (see [`World::inject_faults`]) flow
    /// through the lease-based failure detector, the reconciliation
    /// controller heals displaced streams per `config.heal`, and frame
    /// rates degrade in fairness tiers per `config.degrade`. Idempotent in
    /// effect — calling again replaces the configuration and resets fault
    /// bookkeeping.
    pub fn enable_chaos(&mut self, config: ChaosConfig) {
        let node_slots = self
            .orch
            .cluster()
            .nodes()
            .iter()
            .map(|n| n.id().index() + 1)
            .max()
            .unwrap_or(0);
        self.chaos = Some(Box::new(ChaosState {
            config,
            tpus: vec![CompFault::default(); self.services.len()],
            nodes: vec![CompFault::default(); node_slots],
            parked: Vec::new(),
            recorder: RecoveryRecorder::new(),
            trackers: BTreeMap::new(),
            swap_seq: 0,
            reconcile_at: None,
        }));
    }

    /// `true` once [`World::enable_chaos`] has armed the fault subsystem.
    #[must_use]
    pub fn chaos_enabled(&self) -> bool {
        self.chaos.is_some()
    }

    /// Schedules every event of a fault trace into the simulation. Events
    /// earlier than the current time are skipped. Arms chaos mode with the
    /// default [`ChaosConfig`] if it is not already enabled.
    pub fn inject_faults(&mut self, schedule: &FaultSchedule) {
        if self.chaos.is_none() {
            self.enable_chaos(ChaosConfig::default());
        }
        let now = self.queue.now();
        for ev in schedule.events() {
            if ev.at < now {
                continue;
            }
            self.queue.schedule_at(ev.at, Ev::Fault(ev.kind));
        }
    }

    /// The lifecycle phase a stream is currently in.
    #[must_use]
    pub fn stream_phase(&self, id: StreamId) -> Option<StreamPhase> {
        self.stream(id).map(|s| s.phase)
    }

    /// The first stream id of `id`'s restart lineage.
    #[must_use]
    pub fn stream_root(&self, id: StreamId) -> Option<StreamId> {
        self.stream(id).map(|s| s.root)
    }

    /// Streams currently waiting in the reconciler's pending-restart
    /// queue, in arrival order.
    #[must_use]
    pub fn pending_restarts(&self) -> Vec<StreamId> {
        self.chaos
            .as_ref()
            .map(|c| c.parked.iter().map(|p| p.stream).collect())
            .unwrap_or_default()
    }

    /// Live streams that currently route through `tpu` (control-plane
    /// view).
    fn streams_using_tpu(&self, tpu: TpuId) -> Vec<StreamId> {
        let mut out = Vec::new();
        for (i, s) in self.streams.iter().enumerate() {
            if !s.phase.is_live() {
                continue;
            }
            if let Some(allocs) = self.sched.assignment(s.pod) {
                if allocs.iter().any(|a| a.tpu() == tpu) {
                    out.push(StreamId::from_index(i));
                }
            }
        }
        out
    }

    /// Marks a live stream interrupted (its frames now drop at the client)
    /// and opens the lineage's outage interval.
    fn interrupt_stream(&mut self, now: SimTime, id: StreamId) {
        let Some(stream) = self.stream(id) else {
            return;
        };
        if stream.phase == StreamPhase::Interrupted || !stream.phase.is_live() {
            return;
        }
        let root = stream.root;
        self.transition(id, StreamPhase::Interrupted, now);
        if let Some(chaos) = self.chaos.as_mut() {
            chaos.trackers.entry(root).or_default().outage_begins(now);
        }
    }

    /// Returns interrupted streams whose placement is healthy again to
    /// their rate-appropriate serving phase.
    fn resync_interrupted(&mut self, now: SimTime) {
        for i in 0..self.streams.len() {
            let id = StreamId::from_index(i);
            let (pod, den) = {
                let s = &self.streams[i];
                if s.phase != StreamPhase::Interrupted || s.pending_swap.is_some() {
                    continue;
                }
                (s.pod, s.den)
            };
            if !self.placement_healthy(pod) {
                continue;
            }
            let phase = if den > 1 {
                StreamPhase::Degraded
            } else {
                StreamPhase::Active
            };
            self.transition(id, phase, now);
            let root = self.streams[i].root;
            if let Some(chaos) = self.chaos.as_mut() {
                let tracker = chaos.trackers.entry(root).or_default();
                tracker.outage_ends(now);
                if den > 1 {
                    tracker.degrade_begins(now);
                }
            }
        }
    }

    /// Whether every component a pod depends on (host node, every allocated
    /// TPU) is currently serving.
    fn placement_healthy(&self, pod: PodId) -> bool {
        let Some(node) = self.orch.node_of(pod) else {
            return false;
        };
        if let Some(chaos) = self.chaos.as_ref() {
            if chaos
                .nodes
                .get(node.index())
                .is_some_and(|n| n.down_since.is_some())
            {
                return false;
            }
        }
        let Some(allocs) = self.sched.assignment(pod) else {
            return false;
        };
        allocs.iter().all(|a| self.services[a.tpu().index()].alive)
    }

    fn on_fault(&mut self, now: SimTime, kind: FaultKind) {
        match kind {
            FaultKind::TpuFail(tpu) => self.on_tpu_fault(now, tpu),
            FaultKind::TpuRepair(tpu) => self.on_tpu_repair(now, tpu),
            FaultKind::NodeFail(node) | FaultKind::LinkFail(node) => {
                self.on_node_fault(now, kind, node);
            }
            FaultKind::NodeRepair(node) | FaultKind::LinkRepair(node) => {
                self.on_node_repair(now, node);
            }
        }
    }

    fn on_tpu_fault(&mut self, now: SimTime, tpu: TpuId) {
        let (epoch, detect_at) = {
            let Some(chaos) = self.chaos.as_mut() else {
                return;
            };
            let Some(state) = chaos.tpus.get_mut(tpu.index()) else {
                return;
            };
            if state.down_since.is_some() {
                return;
            }
            state.down_since = Some(now);
            state.epoch = state.epoch.wrapping_add(1);
            state.detected = false;
            (state.epoch, chaos.config.detection.detect_at(now))
        };
        // Data plane only: the service silently drops traffic until the
        // lease expires.
        self.kill_tpu_data_plane(now, tpu);
        for id in self.streams_using_tpu(tpu) {
            self.interrupt_stream(now, id);
        }
        self.queue.schedule_at(
            detect_at,
            Ev::Detect {
                kind: FaultKind::TpuFail(tpu),
                epoch,
            },
        );
    }

    fn on_tpu_repair(&mut self, now: SimTime, tpu: TpuId) {
        let detected = {
            let Some(chaos) = self.chaos.as_mut() else {
                return;
            };
            let Some(state) = chaos.tpus.get_mut(tpu.index()) else {
                return;
            };
            if state.down_since.is_none() {
                return;
            }
            let detected = state.detected;
            state.down_since = None;
            state.detected = false;
            detected
        };
        // If the hosting node is itself down the repaired TPU stays
        // unreachable; the node's repair will bring it back.
        let host_down = self.tpu_host(tpu).is_some_and(|node| self.node_down(node));
        if host_down {
            return;
        }
        if detected {
            // The control plane replanned around this TPU; return it to
            // the pool for future placements.
            self.sched.restore_tpu(tpu);
            self.sync_device(tpu);
        }
        // Either way the data plane serves again (an undetected blip left
        // all placements intact).
        self.services[tpu.index()].alive = true;
        self.resync_interrupted(now);
        self.nudge_reconciler(now);
    }

    fn on_node_fault(&mut self, now: SimTime, kind: FaultKind, node: NodeId) {
        let (epoch, detect_at) = {
            let Some(chaos) = self.chaos.as_mut() else {
                return;
            };
            let Some(state) = chaos.nodes.get_mut(node.index()) else {
                return;
            };
            if state.down_since.is_some() {
                return;
            }
            state.down_since = Some(now);
            state.epoch = state.epoch.wrapping_add(1);
            state.detected = false;
            (state.epoch, chaos.config.detection.detect_at(now))
        };
        let mut victims: Vec<StreamId> = Vec::new();
        if let Some(tpu) = self.tpu_on_node(node) {
            self.kill_tpu_data_plane(now, tpu);
            victims.extend(self.streams_using_tpu(tpu));
        }
        // Streams whose application container lives on the dead /
        // partitioned node stop making progress too.
        for (&pod, &sid) in &self.pods_to_streams {
            if self.orch.node_of(pod) == Some(node)
                && self
                    .streams
                    .get(sid.index())
                    .is_some_and(|s| s.phase.is_live())
            {
                victims.push(sid);
            }
        }
        victims.sort_unstable();
        victims.dedup();
        for id in victims {
            self.interrupt_stream(now, id);
        }
        self.queue
            .schedule_at(detect_at, Ev::Detect { kind, epoch });
    }

    fn on_node_repair(&mut self, now: SimTime, node: NodeId) {
        let detected = {
            let Some(chaos) = self.chaos.as_mut() else {
                return;
            };
            let Some(state) = chaos.nodes.get_mut(node.index()) else {
                return;
            };
            if state.down_since.is_none() {
                return;
            }
            let detected = state.detected;
            state.down_since = None;
            state.detected = false;
            detected
        };
        if detected {
            self.orch.restore_node(node);
        }
        if let Some(tpu) = self.tpu_on_node(node) {
            let tpu_class_down = self.chaos.as_ref().is_some_and(|c| {
                c.tpus
                    .get(tpu.index())
                    .is_some_and(|t| t.down_since.is_some())
            });
            if !tpu_class_down {
                if detected {
                    self.sched.restore_tpu(tpu);
                    self.sync_device(tpu);
                }
                self.services[tpu.index()].alive = true;
            }
        }
        self.resync_interrupted(now);
        self.nudge_reconciler(now);
    }

    fn on_detect(&mut self, now: SimTime, kind: FaultKind, epoch: u32) {
        let heal = match self.chaos.as_ref() {
            Some(chaos) => chaos.config.heal.is_some(),
            None => return,
        };
        match kind {
            FaultKind::TpuFail(tpu) => {
                let fault_at = {
                    let chaos = self.chaos.as_mut().expect("checked above");
                    let Some(state) = chaos.tpus.get_mut(tpu.index()) else {
                        return;
                    };
                    let Some(down_since) = state.down_since else {
                        return;
                    };
                    if state.epoch != epoch || state.detected {
                        return;
                    }
                    state.detected = true;
                    down_since
                };
                self.detect_tpu_failure(now, tpu, heal, fault_at);
            }
            FaultKind::NodeFail(node) | FaultKind::LinkFail(node) => {
                let fault_at = {
                    let chaos = self.chaos.as_mut().expect("checked above");
                    let Some(state) = chaos.nodes.get_mut(node.index()) else {
                        return;
                    };
                    let Some(down_since) = state.down_since else {
                        return;
                    };
                    if state.epoch != epoch || state.detected {
                        return;
                    }
                    state.detected = true;
                    down_since
                };
                self.detect_node_failure(now, node, heal, fault_at);
            }
            // Repairs never schedule `Detect`.
            _ => {}
        }
    }

    /// The control plane reacts to a detected TPU failure: under healing
    /// every affected pod is replanned onto survivors (or parked for the
    /// reconciler); without healing displaced pods are dropped outright —
    /// the no-heal baseline.
    fn detect_tpu_failure(&mut self, now: SimTime, tpu: TpuId, heal: bool, fault_at: SimTime) {
        if heal {
            let outcome = self.sched.handle_tpu_failure(tpu);
            for rec in &outcome.recovered {
                let sid = self.pods_to_streams[&rec.pod];
                self.apply_plans(sid, &rec.plans);
                let stages = rec.plans.len();
                self.schedule_swap_in(sid, fault_at, now, rec.swap_bytes, stages, false);
            }
            for pod in outcome.lost {
                let sid = self.pods_to_streams[&pod];
                let _ = self.orch.delete_pod(pod);
                self.park_stream(now, sid, fault_at, now);
            }
            self.nudge_reconciler(now);
        } else {
            for pod in self.sched.fail_tpu_releasing(tpu) {
                let sid = self.pods_to_streams[&pod];
                let _ = self.orch.delete_pod(pod);
                self.transition(sid, StreamPhase::Lost, now);
            }
        }
    }

    /// The control plane reacts to a detected node/link failure: the
    /// orchestrator evicts hosted pods (K3s marks the node NotReady after
    /// the lease), their units are reclaimed, and the node's TPU — if any —
    /// goes through the TPU failure path.
    fn detect_node_failure(&mut self, now: SimTime, node: NodeId, heal: bool, fault_at: SimTime) {
        let displaced = self.orch.fail_node(node);
        self.sched.reclaim_terminated(&self.orch);
        // Parked streams whose replacement pod was still swapping in when
        // the node died count as displaced too — they must re-enter the
        // pending-restart queue.
        let hosted: Vec<StreamId> = displaced
            .iter()
            .filter_map(|p| self.pods_to_streams.get(p).copied())
            .filter(|sid| {
                self.streams
                    .get(sid.index())
                    .is_some_and(|s| s.phase.is_live() || s.phase == StreamPhase::Parked)
            })
            .collect();
        if heal {
            for sid in hosted {
                self.park_stream(now, sid, fault_at, now);
            }
            if let Some(tpu) = self.tpu_on_node(node) {
                self.detect_tpu_failure(now, tpu, true, fault_at);
            }
            self.nudge_reconciler(now);
        } else {
            for sid in hosted {
                self.transition(sid, StreamPhase::Lost, now);
            }
            if let Some(tpu) = self.tpu_on_node(node) {
                self.detect_tpu_failure(now, tpu, false, fault_at);
            }
        }
    }

    /// Queues a displaced stream for re-admission by the reconciler (or
    /// marks it lost when healing is off).
    fn park_stream(
        &mut self,
        now: SimTime,
        sid: StreamId,
        fault_at: SimTime,
        detected_at: SimTime,
    ) {
        let heal = self.chaos.as_ref().is_some_and(|c| c.config.heal.is_some());
        if !heal {
            self.transition(sid, StreamPhase::Lost, now);
            return;
        }
        self.transition(sid, StreamPhase::Parked, now);
        if let Some(s) = self.streams.get_mut(sid.index()) {
            // Parking supersedes any in-flight swap: its placement is gone.
            s.pending_swap = None;
        }
        let chaos = self.chaos.as_mut().expect("heal implies chaos");
        if !chaos.parked.iter().any(|p| p.stream == sid) {
            chaos.parked.push(ParkedStream {
                stream: sid,
                attempts: 0,
                next_try: now,
                fault_at,
                detected_at,
            });
        }
    }

    /// Schedules the swap-in completion for a freshly replanned placement
    /// and stamps the stream as waiting on it. Runs at the instant the
    /// replanning happened, so "now" is the queue's current time.
    fn schedule_swap_in(
        &mut self,
        sid: StreamId,
        fault_at: SimTime,
        detected_at: SimTime,
        swap_bytes: u64,
        stages: usize,
        restarted: bool,
    ) {
        let now = self.queue.now();
        let Some(chaos) = self.chaos.as_mut() else {
            return;
        };
        chaos.swap_seq += 1;
        let seq = chaos.swap_seq;
        let rpc =
            chaos.config.resched_rpc * (1 + u64::try_from(stages).expect("stage count fits u64"));
        let swap = TpuSpec::coral_usb().swap_time(swap_bytes);
        let breakdown = RecoveryBreakdown::new(
            detected_at.saturating_since(fault_at),
            now.saturating_since(detected_at) + rpc,
            swap,
        );
        if let Some(stream) = self.streams.get_mut(sid.index()) {
            stream.pending_swap = Some(seq);
        }
        self.queue.schedule_at(
            now + rpc + swap,
            Ev::SwapIn {
                stream: sid,
                seq,
                breakdown,
                restarted,
            },
        );
    }

    fn on_swap_in(
        &mut self,
        now: SimTime,
        sid: StreamId,
        seq: u64,
        breakdown: RecoveryBreakdown,
        restarted: bool,
    ) {
        let (den, root, pod) = {
            let Some(s) = self.streams.get_mut(sid.index()) else {
                return;
            };
            if s.pending_swap != Some(seq) {
                return;
            }
            s.pending_swap = None;
            if !matches!(s.phase, StreamPhase::Interrupted | StreamPhase::Parked) {
                // The stream left the recovery path (crashed, removed, or
                // restarted by hand) while parameters streamed in.
                return;
            }
            (s.den, s.root, s.pod)
        };
        if !self.placement_healthy(pod) {
            // The replacement placement itself failed before swap-in
            // finished; stay down — the new fault's detection will replan.
            return;
        }
        let phase = if den > 1 {
            StreamPhase::Degraded
        } else {
            StreamPhase::Active
        };
        self.transition(sid, phase, now);
        if let Some(chaos) = self.chaos.as_mut() {
            let tracker = chaos.trackers.entry(root).or_default();
            tracker.outage_ends(now);
            if den > 1 {
                tracker.degrade_begins(now);
            }
            if restarted {
                tracker.count_restart();
            }
            chaos.recorder.record(&breakdown);
        }
        let arm = {
            let s = &mut self.streams[sid.index()];
            if s.emission_alive {
                false
            } else {
                s.emission_alive = true;
                true
            }
        };
        if arm {
            self.queue.schedule_after(SimDuration::ZERO, Ev::Frame(sid));
        }
    }

    /// Ensures a `Reconcile` event fires at `now` if the controller has
    /// work: parked streams to re-admit, or degraded streams that might
    /// upgrade now that capacity was released.
    fn nudge_reconciler(&mut self, now: SimTime) {
        let Some(chaos) = self.chaos.as_ref() else {
            return;
        };
        if chaos.config.heal.is_none() {
            return;
        }
        let wanted = !chaos.parked.is_empty()
            || self
                .streams
                .iter()
                .any(|s| s.phase == StreamPhase::Degraded && s.den > 1);
        if wanted {
            self.schedule_reconcile(now);
        }
    }

    /// Schedules a `Reconcile` event at `at` unless an earlier one is
    /// already pending.
    fn schedule_reconcile(&mut self, at: SimTime) {
        let Some(chaos) = self.chaos.as_mut() else {
            return;
        };
        if chaos.reconcile_at.is_none_or(|t| at < t) {
            chaos.reconcile_at = Some(at);
            self.queue.schedule_at(at, Ev::Reconcile);
        }
    }

    fn on_reconcile(&mut self, now: SimTime) {
        let due: Vec<ParkedStream> = {
            let Some(chaos) = self.chaos.as_mut() else {
                return;
            };
            chaos.reconcile_at = None;
            if chaos.config.heal.is_none() {
                return;
            }
            chaos
                .parked
                .iter()
                .copied()
                .filter(|p| p.next_try <= now)
                .collect()
        };
        for entry in due {
            let readmitted = self.try_readmit(now, entry);
            let chaos = self.chaos.as_mut().expect("chaos stays armed");
            if readmitted {
                chaos.parked.retain(|p| p.stream != entry.stream);
            } else if let Some(p) = chaos.parked.iter_mut().find(|p| p.stream == entry.stream) {
                p.attempts += 1;
                let backoff = chaos
                    .config
                    .heal
                    .as_ref()
                    .expect("checked above")
                    .backoff(p.attempts, p.stream.0);
                p.next_try = now + backoff;
            }
        }
        // Only once nothing is waiting does the controller hand capacity
        // back to degraded tenants.
        let parked_empty = self.chaos.as_ref().is_some_and(|c| c.parked.is_empty());
        if parked_empty {
            self.upgrade_degraded(now);
        }
        let next = self
            .chaos
            .as_ref()
            .and_then(|c| c.parked.iter().map(|p| p.next_try).min());
        if let Some(next) = next {
            self.schedule_reconcile(next.max(now));
        }
    }

    /// One re-admission attempt for a parked stream: try each degradation
    /// tier from full rate down, then try making room by degrading active
    /// tenants, and finally give up (the caller applies backoff). Returns
    /// `true` when the entry should leave the queue.
    fn try_readmit(&mut self, now: SimTime, entry: ParkedStream) -> bool {
        let sid = entry.stream;
        let spec = match self.stream(sid) {
            Some(s) if s.phase == StreamPhase::Parked => s.spec.clone(),
            // Removed / restarted / otherwise gone: drop the entry.
            _ => return true,
        };
        let tiers: Vec<u32> = match self.chaos.as_ref().and_then(|c| c.config.degrade.as_ref()) {
            Some(d) => d.tiers().collect(),
            None => vec![1],
        };
        for &den in &tiers {
            if self.try_readmit_at(sid, &entry, &spec, den) {
                return true;
            }
        }
        let max_den = *tiers.last().expect("tiers are never empty");
        if max_den > 1 {
            while self.shrink_one_stream(now, max_den) {
                if self.try_readmit_at(sid, &entry, &spec, max_den) {
                    return true;
                }
            }
        }
        false
    }

    /// One deployment attempt at a specific degradation tier.
    fn try_readmit_at(
        &mut self,
        sid: StreamId,
        entry: &ParkedStream,
        spec: &StreamSpec,
        den: u32,
    ) -> bool {
        let Ok((pod_spec, _)) = self.build_pod_spec(spec) else {
            return false;
        };
        match self.sched.deploy_scaled(&mut self.orch, pod_spec, den) {
            Ok(deployment) => {
                self.wire_readmitted(sid, entry, den, &deployment);
                true
            }
            Err(_) => false,
        }
    }

    /// Points an existing (parked) stream runtime at its replacement
    /// deployment and schedules the swap-in that will bring it back live.
    fn wire_readmitted(
        &mut self,
        sid: StreamId,
        entry: &ParkedStream,
        den: u32,
        deployment: &Deployment,
    ) {
        let pod = deployment.pod();
        let mut per_tpu: BTreeMap<TpuId, u64> = BTreeMap::new();
        for grant in deployment.stages() {
            let bytes = self.sched.catalog().expect(grant.model()).param_bytes();
            for &tpu in grant.newly_loaded() {
                *per_tpu.entry(tpu).or_insert(0) += bytes;
            }
        }
        let swap_bytes = per_tpu.values().copied().max().unwrap_or(0);
        let stages = deployment.stages().len();
        let old_pod = self.streams[sid.index()].pod;
        {
            let s = &mut self.streams[sid.index()];
            s.pod = pod;
            s.den = den;
            for (stage, grant) in s.stages.iter_mut().zip(deployment.stages()) {
                stage.lbs = grant.lbs();
            }
        }
        self.pods_to_streams.remove(&old_pod);
        self.pods_to_streams.insert(pod, sid);
        for grant in deployment.stages() {
            for alloc in grant.allocations() {
                self.sync_device(alloc.tpu());
            }
        }
        self.schedule_swap_in(
            sid,
            entry.fault_at,
            entry.detected_at,
            swap_bytes,
            stages,
            true,
        );
    }

    /// Degrades the least-degraded serving stream by one tier to free
    /// capacity. Returns `false` when no stream can be shrunk further.
    fn shrink_one_stream(&mut self, now: SimTime, max_den: u32) -> bool {
        let mut candidate: Option<(u32, StreamId)> = None;
        for (i, s) in self.streams.iter().enumerate() {
            if !matches!(s.phase, StreamPhase::Active | StreamPhase::Degraded) {
                continue;
            }
            if s.den >= max_den || s.pending_swap.is_some() {
                continue;
            }
            let key = (s.den, StreamId::from_index(i));
            if candidate.is_none_or(|c| key < c) {
                candidate = Some(key);
            }
        }
        let Some((den, sid)) = candidate else {
            return false;
        };
        let pod = self.streams[sid.index()].pod;
        let new_den = den * 2;
        match self.sched.rescale(pod, new_den) {
            Ok(plans) => {
                self.apply_plans(sid, &plans);
                self.set_denominator(now, sid, new_den);
                true
            }
            Err(_) => false,
        }
    }

    /// Promotes degraded streams back toward full rate, deepest tier
    /// first, for as long as capacity allows.
    fn upgrade_degraded(&mut self, now: SimTime) {
        loop {
            let mut candidate: Option<(u32, StreamId)> = None;
            for (i, s) in self.streams.iter().enumerate() {
                if s.phase != StreamPhase::Degraded || s.den <= 1 || s.pending_swap.is_some() {
                    continue;
                }
                let id = StreamId::from_index(i);
                let better = match candidate {
                    None => true,
                    Some((cd, cid)) => s.den > cd || (s.den == cd && id < cid),
                };
                if better {
                    candidate = Some((s.den, id));
                }
            }
            let Some((den, sid)) = candidate else {
                return;
            };
            let pod = self.streams[sid.index()].pod;
            match self.sched.rescale(pod, den / 2) {
                Ok(plans) => {
                    self.apply_plans(sid, &plans);
                    self.set_denominator(now, sid, den / 2);
                }
                Err(_) => return,
            }
        }
    }

    /// Records a denominator change on a serving stream, keeping phase and
    /// degrade-interval bookkeeping consistent.
    fn set_denominator(&mut self, now: SimTime, sid: StreamId, new_den: u32) {
        let (root, old_den, serving) = {
            let s = &mut self.streams[sid.index()];
            let old = s.den;
            s.den = new_den;
            (
                s.root,
                old,
                matches!(s.phase, StreamPhase::Active | StreamPhase::Degraded),
            )
        };
        if !serving {
            return;
        }
        let phase = if new_den > 1 {
            StreamPhase::Degraded
        } else {
            StreamPhase::Active
        };
        self.transition(sid, phase, now);
        if let Some(chaos) = self.chaos.as_mut() {
            let tracker = chaos.trackers.entry(root).or_default();
            if old_den == 1 && new_den > 1 {
                tracker.degrade_begins(now);
            } else if old_den > 1 && new_den == 1 {
                tracker.degrade_ends(now);
            }
        }
    }

    /// The node hosting `tpu`.
    fn tpu_host(&self, tpu: TpuId) -> Option<NodeId> {
        self.sched
            .pool()
            .accounts()
            .iter()
            .find(|a| a.id() == tpu)
            .map(|a| a.node())
    }

    /// Whether chaos bookkeeping currently marks `node` as down.
    fn node_down(&self, node: NodeId) -> bool {
        self.chaos.as_ref().is_some_and(|c| {
            c.nodes
                .get(node.index())
                .is_some_and(|n| n.down_since.is_some())
        })
    }

    /// Processes all events up to and including `until`.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some((now, ev)) = self.queue.pop_due(until) {
            self.dispatch(now, ev);
        }
    }

    /// Schedules a control-plane command to fire at `at` — the delivery
    /// half of the cross-shard command mailbox, also usable directly to
    /// script mid-run admissions/removals/faults.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_command(&mut self, at: SimTime, cmd: WorldCommand) {
        self.queue.schedule_at(at, Ev::Command(cmd));
    }

    /// Drains the cross-shard outbox: every completion an export-flagged
    /// stream recorded since the previous call, in completion-record order.
    pub fn take_outbox(&mut self) -> Vec<FrameExport> {
        std::mem::take(&mut self.outbox)
    }

    /// Drains the whole-cluster-failure outbox: every stream displaced by
    /// [`WorldCommand::Evacuate`] since the previous call, in stream-id
    /// order. The fleet front door re-places these on surviving clusters.
    pub fn take_evacuations(&mut self) -> Vec<EvacuatedStream> {
        std::mem::take(&mut self.evacuations)
    }

    /// Removes every live or parked stream, capturing each as an
    /// [`EvacuatedStream`] — the whole-cluster-failure path. Fired by
    /// [`WorldCommand::Evacuate`]; streams are visited in id order, so the
    /// evacuation list is deterministic.
    pub fn evacuate_all(&mut self, now: SimTime) {
        let ids: Vec<StreamId> = self
            .streams
            .iter()
            .enumerate()
            .filter(|(_, s)| s.phase.is_live() || s.phase == StreamPhase::Parked)
            .map(|(i, _)| StreamId::from_index(i))
            .collect();
        for id in ids {
            let spec = self.streams[id.index()].spec.clone();
            if self.remove_stream(id).is_ok() {
                self.evacuations.push(EvacuatedStream {
                    stream: id,
                    fault_at: now,
                    spec,
                });
            }
        }
    }

    /// Estimates a spec's TPU demand the way admission will charge it —
    /// explicit per-stage units where given, otherwise the profiling
    /// service's duty-cycle derivation — for the fleet front door's
    /// placement decision. This world acts as the profiling service; no
    /// state is touched.
    ///
    /// # Errors
    ///
    /// [`DeployError::UnknownModel`] if a stage's model is not in the
    /// catalog (the admission it predicts would fail the same way).
    pub fn estimate_demand(
        &self,
        spec: &StreamSpec,
    ) -> Result<crate::fleet::StreamDemand, DeployError> {
        let mut stages = Vec::with_capacity(spec.stages.len());
        for stage in &spec.stages {
            let units = match stage.units {
                Some(units) => units,
                None => {
                    let profile = self
                        .sched
                        .catalog()
                        .get(&stage.model)
                        .ok_or_else(|| DeployError::UnknownModel(stage.model.clone()))?;
                    self.dp.profiled_units(profile, spec.fps)
                }
            };
            stages.push(units);
        }
        Ok(crate::fleet::StreamDemand::from_stages(stages))
    }

    /// Delivers a peer shard's [`FrameExport`] at `at`: the receiving side
    /// records the announced end-to-end `latency` into its remote-ingest
    /// sketch when the event fires.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_ingest(&mut self, at: SimTime, latency: SimDuration) {
        self.queue.schedule_at(at, Ev::Ingest(latency));
    }

    /// Number of events still pending in the queue (the sharded replay's
    /// global-drain test).
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Aligns the clock to an epoch barrier without delivering anything;
    /// see [`EventQueue::advance_to`].
    ///
    /// # Panics
    ///
    /// Panics if an event at or before `barrier` is still pending — call
    /// [`World::run_until`]`(barrier)` first.
    pub fn advance_to(&mut self, barrier: SimTime) {
        self.queue.advance_to(barrier);
    }

    /// Runs until the event queue drains or `deadline` is reached, then
    /// finalises. Convenient for frame-limited runs.
    #[must_use]
    pub fn run_to_completion(mut self, deadline: SimTime) -> RunResults {
        self.run_until(deadline);
        let end = self.queue.now().max(SimTime::from_nanos(1));
        self.finish(end)
    }

    /// Finalises the run at `end`, producing every metric.
    ///
    /// # Panics
    ///
    /// Panics if `end` precedes the last processed event.
    #[must_use]
    pub fn finish(self, end: SimTime) -> RunResults {
        let reports = self
            .streams
            .iter()
            .enumerate()
            .map(|(i, s)| (StreamId::from_index(i), s.audit.report(&s.spec.name, end)))
            .collect();
        let latencies = self
            .streams
            .iter()
            .enumerate()
            .map(|(i, s)| (StreamId::from_index(i), s.latency.clone()))
            .collect();
        let average_utilization = self.fleet.average_utilization(end);
        let per_device_utilization = self.fleet.per_device_utilization(end);
        let windowed_utilization = self.fleet.into_windowed_average(end);
        let phases: BTreeMap<StreamId, StreamPhase> = self
            .streams
            .iter()
            .enumerate()
            .map(|(i, s)| (StreamId::from_index(i), s.phase))
            .collect();
        let mut chain_latencies: BTreeMap<StreamId, OnlineStats> = BTreeMap::new();
        for s in &self.streams {
            chain_latencies
                .entry(s.root)
                .and_modify(|stats| stats.merge(&s.latency))
                .or_insert_with(|| s.latency.clone());
        }
        let lineage = self.lineage;
        let (recovery, availability) = match self.chaos {
            Some(chaos) => {
                let chaos = *chaos;
                let mut availability = BTreeMap::new();
                for (root, tracker) in chaos.trackers {
                    // A lineage counts as lost only when its final
                    // incarnation ended the run lost (parked streams were
                    // still pending recovery).
                    let mut tail = root;
                    while let Some(&next) = lineage.get(&tail) {
                        tail = next;
                    }
                    let lost = phases.get(&tail) == Some(&StreamPhase::Lost);
                    availability.insert(root, tracker.finish(end, lost));
                }
                (chaos.recorder, availability)
            }
            None => (RecoveryRecorder::new(), BTreeMap::new()),
        };
        RunResults {
            reports,
            latencies,
            average_utilization,
            per_device_utilization,
            windowed_utilization,
            breakdowns: self.breakdowns,
            device_stats: self.services.iter().map(|s| s.device.stats()).collect(),
            max_queue_depths: self.services.iter().map(|s| s.max_depth).collect(),
            used_tpus: self.sched.pool().used_tpus(),
            frames_dropped: self.frames_dropped,
            events_processed: self.queue.events_processed(),
            end,
            recovery,
            availability,
            phases,
            lineage,
            chain_latencies,
            remote_ingest: self.ingest,
            commands_failed: self.commands_failed,
            defrag: self.defrag.map_or_else(DefragStats::default, |d| d.stats),
        }
    }

    /// Cameras-served step series finaliser (Fig. 6b): per-window average
    /// number of active streams up to `end`, alongside the run results.
    /// Consumes the world.
    #[must_use]
    pub fn finish_with_served_series(self, end: SimTime) -> (RunResults, Vec<f64>) {
        let served = self.served.clone().finish(end);
        (self.finish(end), served)
    }

    fn sync_device(&mut self, tpu: TpuId) {
        let models = self.sched.resident_models(tpu);
        let profiles: Vec<ModelProfile> = models
            .iter()
            .map(|m| self.sched.catalog().expect(m).clone())
            .collect();
        let device = &mut self.services[tpu.index()].device;
        let plan = CoCompiler::new(device.spec())
            .plan(&profiles)
            .expect("resident models are distinct");
        device.load_plan(plan);
    }

    fn dispatch(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Frame(id) => self.on_frame(now, id),
            Ev::Arrive(tpu, inflight) => self.on_arrive(now, tpu, inflight),
            Ev::Done(tpu) => self.on_done(now, tpu),
            Ev::Fault(kind) => self.on_fault(now, kind),
            Ev::Detect { kind, epoch } => self.on_detect(now, kind, epoch),
            Ev::SwapIn {
                stream,
                seq,
                breakdown,
                restarted,
            } => self.on_swap_in(now, stream, seq, breakdown, restarted),
            Ev::Reconcile => self.on_reconcile(now),
            Ev::Command(cmd) => self.on_command(now, cmd),
            Ev::Ingest(latency) => self.ingest.record_duration(latency),
        }
    }

    /// Applies a scheduled control-plane command. Failures (admission
    /// rejected, unknown stream) are counted, not propagated: by the time a
    /// command fires, its originator is long gone.
    fn on_command(&mut self, now: SimTime, cmd: WorldCommand) {
        let outcome = match cmd {
            WorldCommand::Admit(spec) => self.admit_stream(*spec).map(|_| ()),
            WorldCommand::Remove(id) => self.remove_stream(id),
            WorldCommand::Fault(kind) => {
                self.on_fault(now, kind);
                Ok(())
            }
            WorldCommand::Evacuate => {
                self.evacuate_all(now);
                Ok(())
            }
        };
        if outcome.is_err() {
            self.commands_failed += 1;
        }
    }

    fn on_frame(&mut self, now: SimTime, id: StreamId) {
        let Some(stream) = self.streams.get_mut(id.index()) else {
            return;
        };
        if !stream.active {
            stream.emission_alive = false;
            return;
        }
        if stream.phase == StreamPhase::Interrupted {
            // The placement is down (detected or not): the frame drops at
            // the client without reaching any TPU.
            stream.emitted += 1;
            self.frames_dropped += 1;
            if stream
                .frame_limit
                .is_none_or(|limit| stream.emitted < limit)
            {
                let interval = stream.interval * u64::from(stream.den);
                self.queue.schedule_after(interval, Ev::Frame(id));
            } else {
                stream.emission_alive = false;
            }
            return;
        }
        stream.audit.frame_emitted(now);
        stream.emitted += 1;
        let pre = stream.preprocess;
        let filtered = stream
            .filter
            .as_mut()
            .is_some_and(|f| !f.rng.chance(f.pass_rate));
        if filtered {
            // The difference detector discards the frame client-side after
            // pre-processing; it never reaches a TPU, so its completion
            // instant is already known.
            stream.audit.frame_completed(now + pre);
            let more = stream
                .frame_limit
                .is_none_or(|limit| stream.emitted < limit);
            if more {
                let interval = stream.interval * u64::from(stream.den);
                self.queue.schedule_after(interval, Ev::Frame(id));
            } else {
                stream.emission_alive = false;
            }
            return;
        }
        let tpu = stream.stages[0].lbs.next();
        let trans = if stream.collocated {
            SimDuration::ZERO
        } else {
            stream.stages[0].transfer
        };
        let inflight = InFlight {
            stream: id,
            stage: 0,
            pre,
            trans_acc: trans,
            infer_acc: SimDuration::ZERO,
            arrived: now, // overwritten on arrival
        };
        self.queue
            .schedule_at(now + pre + trans, Ev::Arrive(tpu, inflight));
        let more = stream
            .frame_limit
            .is_none_or(|limit| stream.emitted < limit);
        if more {
            let interval = stream.interval * u64::from(stream.den);
            self.queue.schedule_after(interval, Ev::Frame(id));
        } else {
            stream.emission_alive = false;
        }
    }

    fn on_arrive(&mut self, now: SimTime, tpu: TpuId, mut inflight: InFlight) {
        let svc = &mut self.services[tpu.index()];
        if !svc.alive {
            self.frames_dropped += 1;
            return;
        }
        inflight.arrived = now;
        svc.queue.push_back(inflight);
        let depth = svc.queue.len() + usize::from(svc.current.is_some());
        svc.max_depth = svc.max_depth.max(depth);
        if svc.current.is_none() {
            self.start_next(now, tpu);
        }
    }

    fn start_next(&mut self, now: SimTime, tpu: TpuId) {
        let svc = &mut self.services[tpu.index()];
        let Some(inflight) = svc.queue.pop_front() else {
            return;
        };
        let profile = &self.streams[inflight.stream.index()].stages[inflight.stage].profile;
        let busy = svc.device.invoke(profile).busy() + self.dp.invoke_overhead;
        svc.current = Some(inflight);
        self.fleet.tracker_mut(tpu.index()).begin_busy(now);
        self.queue.schedule_at(now + busy, Ev::Done(tpu));
    }

    fn on_done(&mut self, now: SimTime, tpu: TpuId) {
        let inflight = {
            let svc = &mut self.services[tpu.index()];
            if !svc.alive {
                return;
            }
            svc.current
                .take()
                .expect("Done event without an executing request")
        };
        self.fleet.tracker_mut(tpu.index()).end_busy(now);
        let mut inflight = inflight;
        inflight.infer_acc += now.saturating_since(inflight.arrived);
        let next_stage = inflight.stage + 1;
        let stream = self
            .streams
            .get_mut(inflight.stream.index())
            .expect("in-flight frames belong to known streams");
        if next_stage < stream.stages.len() {
            // Forward to the next pipeline stage. A hop to the same TPU is
            // free (same host); otherwise the next stage's input crosses
            // the network.
            let next_tpu = stream.stages[next_stage].lbs.next();
            let local_hop = next_tpu == tpu && self.dp.pipeline_local_hop;
            let trans = if local_hop || stream.collocated {
                SimDuration::ZERO
            } else {
                stream.stages[next_stage].transfer
            };
            inflight.stage = next_stage;
            inflight.trans_acc += trans;
            self.queue
                .schedule_at(now + trans, Ev::Arrive(next_tpu, inflight));
        } else {
            let breakdown = LatencyBreakdown::new(
                inflight.pre,
                inflight.trans_acc,
                inflight.infer_acc,
                self.dp.postprocess,
            );
            // The frame leaves the pipeline after client-side
            // post-processing, whose duration is fixed — record the
            // completion now with its future timestamp.
            stream.audit.frame_completed(now + self.dp.postprocess);
            stream.latency.record_duration(breakdown.total());
            if stream.spec.export {
                self.outbox.push(FrameExport {
                    at: now + self.dp.postprocess,
                    stream: inflight.stream,
                    latency: breakdown.total(),
                });
            }
            self.breakdowns.record(&breakdown);
        }
        self.start_next(now, tpu);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microedge_cluster::topology::ClusterBuilder;
    use microedge_metrics::latency::Phase;

    fn world(trpis: u32, features: Features) -> World {
        let cluster = ClusterBuilder::new().trpis(trpis).vrpis(4).build();
        World::new(cluster, features)
    }

    fn coral_pie(name: &str, frames: u64) -> StreamSpec {
        StreamSpec::builder(name, "ssd-mobilenet-v2")
            .frame_limit(frames)
            .build()
    }

    #[test]
    fn single_stream_meets_slo() {
        let mut w = world(1, Features::all());
        let cam = w.admit_stream(coral_pie("cam", 150)).unwrap();
        let results = w.run_to_completion(SimTime::from_secs(60));
        let report = results.report(cam).unwrap();
        assert_eq!(report.emitted(), 150);
        assert_eq!(report.completed(), 150);
        assert!(report.met_fps(), "achieved {}", report.achieved_fps());
    }

    #[test]
    fn utilization_matches_tpu_units() {
        let mut w = world(1, Features::all());
        w.admit_stream(coral_pie("cam", 300)).unwrap();
        let results = w.run_to_completion(SimTime::from_secs(60));
        // One 0.35-unit stream on one TPU → ≈ 35 % utilization.
        assert!(
            (results.average_utilization() - 0.35).abs() < 0.02,
            "got {}",
            results.average_utilization()
        );
    }

    #[test]
    fn two_streams_share_one_tpu() {
        let mut w = world(1, Features::all());
        let a = w.admit_stream(coral_pie("a", 300)).unwrap();
        let b = w
            .admit_stream(
                StreamSpec::builder("b", "ssd-mobilenet-v2")
                    .frame_limit(300)
                    .start_offset(SimDuration::from_millis(33))
                    .build(),
            )
            .unwrap();
        let results = w.run_to_completion(SimTime::from_secs(60));
        assert!(results.report(a).unwrap().met_fps());
        assert!(results.report(b).unwrap().met_fps());
        assert!((results.average_utilization() - 0.70).abs() < 0.03);
    }

    #[test]
    fn breakdown_reproduces_fig7b_shape() {
        let mut w = world(1, Features::all());
        w.admit_stream(coral_pie("cam", 100)).unwrap();
        let results = w.run_to_completion(SimTime::from_secs(30));
        let b = results.breakdowns();
        assert_eq!(b.mean_ms(Phase::PreProcess), 5.0);
        assert!((b.mean_ms(Phase::Transmission) - 8.0).abs() < 0.2);
        // Inference phase = TPU occupancy (no queueing for one stream).
        assert!((b.mean_ms(Phase::Inference) - 23.33).abs() < 0.1);
        assert_eq!(b.mean_ms(Phase::PostProcess), 3.0);
    }

    #[test]
    fn collocated_baseline_has_no_transmission() {
        let mut w = world(1, Features::all());
        w.admit_stream(
            StreamSpec::builder("cam", "ssd-mobilenet-v2")
                .frame_limit(50)
                .collocated(true)
                .build(),
        )
        .unwrap();
        let results = w.run_to_completion(SimTime::from_secs(30));
        assert_eq!(results.breakdowns().mean_ms(Phase::Transmission), 0.0);
    }

    #[test]
    fn partitioned_stream_uses_both_tpus() {
        let mut w = world(2, Features::all());
        let cam = w
            .admit_stream(
                StreamSpec::builder("seg", "bodypix-mobilenet-v1")
                    .frame_limit(150)
                    .build(),
            )
            .unwrap();
        let results = w.run_to_completion(SimTime::from_secs(60));
        assert!(results.report(cam).unwrap().met_fps());
        let per = results.per_device_utilization();
        assert!(per[0] > 0.5, "TPU 0 carries most load: {per:?}");
        assert!(per[1] > 0.05, "TPU 1 carries the overflow: {per:?}");
    }

    #[test]
    fn stream_removal_frees_units_for_new_streams() {
        let mut w = world(1, Features::all());
        let a = w.admit_stream(coral_pie("a", 1_000_000)).unwrap();
        let b = w.admit_stream(coral_pie("b", 1_000_000)).unwrap();
        // Pool is at 0.70; a third stream does not fit.
        assert!(w.admit_stream(coral_pie("c", 10)).is_err());
        w.run_until(SimTime::from_secs(5));
        w.remove_stream(a).unwrap();
        let c = w.admit_stream(coral_pie("c", 50)).unwrap();
        w.run_until(SimTime::from_secs(20));
        let results = w.finish(SimTime::from_secs(20));
        assert!(results.report(c).unwrap().met_fps());
        assert!(results.report(b).unwrap().met_fps());
    }

    #[test]
    fn remove_stream_twice_errors() {
        let mut w = world(1, Features::all());
        let a = w.admit_stream(coral_pie("a", 10)).unwrap();
        w.remove_stream(a).unwrap();
        assert!(w.remove_stream(a).is_err());
    }

    #[test]
    fn tpu_failure_recovers_streams_onto_survivors() {
        let mut w = world(2, Features::all());
        let cam = w.admit_stream(coral_pie("cam", 1_000_000)).unwrap();
        w.run_until(SimTime::from_secs(2));
        let pod = w.pod_of(cam).unwrap();
        let tpu = w.scheduler().assignment(pod).unwrap()[0].tpu();
        let lost = w.fail_tpu(tpu);
        assert!(lost.is_empty(), "stream should be re-placed");
        w.run_until(SimTime::from_secs(6));
        let results = w.finish(SimTime::from_secs(6));
        // Some frames may have been dropped at the failure instant, but the
        // stream keeps flowing on the surviving TPU.
        let report = results.report(cam).unwrap();
        assert!(report.completed() > 80, "completed {}", report.completed());
    }

    #[test]
    fn tpu_failure_without_spare_capacity_loses_stream() {
        let mut w = world(1, Features::all());
        let cam = w.admit_stream(coral_pie("cam", 1_000_000)).unwrap();
        w.run_until(SimTime::from_secs(1));
        let lost = w.fail_tpu(TpuId(0));
        assert_eq!(lost, vec![cam]);
        assert_eq!(w.active_streams(), 0);
    }

    #[test]
    fn served_series_tracks_arrivals_and_departures() {
        let mut w = world(2, Features::all());
        let a = w.admit_stream(coral_pie("a", 1_000_000)).unwrap();
        w.run_until(SimTime::from_secs(120));
        w.remove_stream(a).unwrap();
        w.run_until(SimTime::from_secs(179));
        let (_, served) = w.finish_with_served_series(SimTime::from_secs(180));
        assert_eq!(served.len(), 3);
        assert!((served[0] - 1.0).abs() < 1e-9);
        // Removal happens at the last event before t=120 s, a hair inside
        // the second window.
        assert!(served[1] > 0.99, "got {}", served[1]);
        assert!(served[2] < 0.01);
    }

    #[test]
    fn stream_spec_accessors() {
        let s = StreamSpec::builder("cam", "unet-v2").fps(10.0).build();
        assert_eq!(s.name(), "cam");
        assert_eq!(s.model().as_str(), "unet-v2");
        assert_eq!(s.fps(), 10.0);
        assert_eq!(StreamId(3).to_string(), "stream-3");
    }

    #[test]
    fn unknown_model_rejected_at_admission() {
        let mut w = world(1, Features::all());
        let err = w
            .admit_stream(StreamSpec::builder("x", "nope").build())
            .unwrap_err();
        assert!(matches!(err, DeployError::UnknownModel(_)));
    }

    // --- multi-model pipelines (paper §8 extension) ---

    // UNet (2.3 MiB) then MobileNet V1 (3.5 MiB): the pair co-fits one
    // TPU's parameter budget, unlike SSD-based pipelines.
    fn segment_then_classify(name: &str, frames: u64) -> StreamSpec {
        StreamSpec::builder(name, "unet-v2")
            .then("mobilenet-v1")
            .frame_limit(frames)
            .build()
    }

    #[test]
    fn pipeline_stream_runs_both_stages_per_frame() {
        let mut w = world(1, Features::all());
        let cam = w.admit_stream(segment_then_classify("pipe", 100)).unwrap();
        let results = w.run_to_completion(SimTime::from_secs(30));
        let report = results.report(cam).unwrap();
        assert_eq!(report.completed(), 100);
        assert!(report.met_fps(), "achieved {}", report.achieved_fps());
        // Every frame ran two inferences on the single TPU.
        assert_eq!(results.device_stats()[0].invocations(), 200);
        // Utilization ≈ (0.675 + 0.215) on one TPU.
        assert!(
            (results.average_utilization() - 0.89).abs() < 0.02,
            "got {}",
            results.average_utilization()
        );
    }

    #[test]
    fn pipeline_same_tpu_hop_is_free() {
        // One TPU: both stages must land on it, so the inter-stage hop is
        // local and transmission equals a single-stage stream's.
        let mut w = world(1, Features::all());
        w.admit_stream(segment_then_classify("pipe", 80)).unwrap();
        let results = w.run_to_completion(SimTime::from_secs(30));
        // UNet's 256×256 input costs ≈ 6.1 ms for its single network hop.
        let trans = results.breakdowns().mean_ms(Phase::Transmission);
        assert!((trans - 6.1).abs() < 0.2, "single hop only, got {trans}");
        // The inference phase is the sum of both stage occupancies
        // (45 ms + 14.33 ms).
        let infer = results.breakdowns().mean_ms(Phase::Inference);
        assert!((infer - (45.0 + 14.33)).abs() < 0.5, "got {infer}");
    }

    #[test]
    fn pipeline_spec_accessors() {
        let s = segment_then_classify("p", 1);
        assert_eq!(
            s.stage_models()
                .iter()
                .map(|m| m.as_str())
                .collect::<Vec<_>>(),
            vec!["unet-v2", "mobilenet-v1"]
        );
    }

    #[test]
    fn pipeline_stream_removal_frees_all_stage_units() {
        let mut w = world(1, Features::all());
        let cam = w
            .admit_stream(segment_then_classify("pipe", 1_000_000))
            .unwrap();
        w.run_until(SimTime::from_secs(1));
        w.remove_stream(cam).unwrap();
        assert_eq!(w.scheduler().pool().total_free_units(), TpuUnits::ONE);
    }

    // --- NoScope-style difference detector (paper §1) ---

    #[test]
    fn frame_filter_reduces_tpu_utilization() {
        // Coral-Pie behind a 2/3-pass difference detector: the paper's §1
        // observation that utilization drops from ~30 % to ~20 %.
        let mut w = world(1, Features::all());
        let cam = w
            .admit_stream(
                StreamSpec::builder("cam", "ssd-mobilenet-v2")
                    .units(TpuUnits::from_f64(0.235))
                    .frame_filter(2.0 / 3.0, 7)
                    .frame_limit(900)
                    .build(),
            )
            .unwrap();
        let results = w.run_to_completion(SimTime::from_secs(90));
        let util = results.average_utilization();
        assert!(
            (util - 0.35 * 2.0 / 3.0).abs() < 0.02,
            "expected ≈ 0.233, got {util}"
        );
        // Every frame still completes (filtered ones finish client-side).
        let report = results.report(cam).unwrap();
        assert_eq!(report.completed(), 900);
        assert!(report.met_fps());
    }

    #[test]
    fn frame_filter_with_full_pass_rate_is_transparent() {
        let mut w = world(1, Features::all());
        w.admit_stream(
            StreamSpec::builder("cam", "ssd-mobilenet-v2")
                .frame_filter(1.0, 3)
                .frame_limit(100)
                .build(),
        )
        .unwrap();
        let results = w.run_to_completion(SimTime::from_secs(30));
        assert!((results.average_utilization() - 0.35).abs() < 0.02);
        assert_eq!(results.device_stats()[0].invocations(), 100);
    }

    #[test]
    fn filtered_frames_skip_the_breakdown_statistics() {
        let mut w = world(1, Features::all());
        w.admit_stream(
            StreamSpec::builder("cam", "ssd-mobilenet-v2")
                .units(TpuUnits::from_f64(0.2))
                .frame_filter(0.5, 11)
                .frame_limit(200)
                .build(),
        )
        .unwrap();
        let results = w.run_to_completion(SimTime::from_secs(60));
        let recorded = results.breakdowns().count();
        let invoked = results.device_stats()[0].invocations();
        assert_eq!(recorded, invoked, "only TPU-served frames are recorded");
        assert!(invoked < 200, "the filter must drop some frames");
        // Mean transmission still reflects full frames, not diluted zeros.
        use microedge_metrics::latency::Phase;
        assert!((results.breakdowns().mean_ms(Phase::Transmission) - 8.0).abs() < 0.2);
    }

    #[test]
    fn source_resolution_scales_preprocessing() {
        use crate::client::SourceResolution;
        let mut w = world(1, Features::all());
        w.admit_stream(
            StreamSpec::builder("vga-cam", "ssd-mobilenet-v2")
                .source_resolution(SourceResolution::new(640, 480))
                .frame_limit(50)
                .build(),
        )
        .unwrap();
        let results = w.run_to_completion(SimTime::from_secs(30));
        let pre = results.breakdowns().mean_ms(Phase::PreProcess);
        // 640×480 walks far fewer pixels than 1080p: ≈ 1.5 + 0.52 ms.
        assert!((pre - 2.02).abs() < 0.05, "got {pre}");
    }

    #[test]
    fn crashed_pod_units_return_only_after_reclamation_poll() {
        let mut w = world(1, Features::all());
        let cam = w.admit_stream(coral_pie("cam", 1_000_000)).unwrap();
        w.run_until(SimTime::from_secs(2));
        let pod = w.pod_of(cam).unwrap();
        w.crash_stream(cam).unwrap();
        // Units still held — the scheduler has not noticed the crash.
        assert_eq!(
            w.scheduler().pool().total_free_units(),
            TpuUnits::ONE - TpuUnits::from_f64(0.35)
        );
        assert!(
            w.admit_stream(coral_pie("replacement", 10)).is_ok(),
            "0.65 free still fits a 0.35 camera"
        );
        assert!(
            w.admit_stream(coral_pie("third", 10)).is_err(),
            "0.30 free does not fit another"
        );
        // The reclamation poll notices the crash and frees the units.
        assert_eq!(w.poll_reclamation(), vec![pod]);
        assert!(w.admit_stream(coral_pie("third", 10)).is_ok());
    }

    #[test]
    fn per_stream_latency_statistics() {
        let mut w = world(1, Features::all());
        let cam = w.admit_stream(coral_pie("cam", 100)).unwrap();
        let results = w.run_to_completion(SimTime::from_secs(30));
        let latency = results.latency(cam).unwrap();
        assert_eq!(latency.count(), 100);
        // One uncontended camera: every frame costs exactly the Fig. 7b
        // total (≈ 39.3 ms).
        assert!((latency.mean() - 39.33).abs() < 0.1, "{}", latency.mean());
        assert!(latency.max().unwrap() < 40.0);
        // Within one frame interval — the latency SLO holds trivially.
        assert!(results.all_within_latency(SimDuration::from_millis_f64(1000.0 / 15.0)));
        assert!(!results.all_within_latency(SimDuration::from_millis(20)));
    }

    #[test]
    fn lost_streams_can_be_restarted_when_capacity_returns() {
        let mut w = world(1, Features::all());
        let a = w.admit_stream(coral_pie("a", 1_000_000)).unwrap();
        let b = w.admit_stream(coral_pie("b", 1_000_000)).unwrap();
        w.run_until(SimTime::from_secs(2));
        // `a` crashes; before reclamation the restart cannot fit.
        w.crash_stream(a).unwrap();
        assert!(matches!(
            w.restart_stream(a),
            Err(DeployError::InsufficientTpu)
        ));
        w.poll_reclamation();
        let a2 = w.restart_stream(a).unwrap();
        assert_ne!(a2, a, "restart is a fresh stream id");
        assert_eq!(w.active_streams(), 2);
        // Restarting an active stream is refused.
        assert!(w.restart_stream(b).is_err());
        w.run_until(SimTime::from_secs(6));
        let results = w.finish(SimTime::from_secs(6));
        assert!(results.report(a2).unwrap().met_fps());
    }

    #[test]
    fn admitted_load_keeps_queues_shallow() {
        // At exactly 1.0 declared and true load the backlog stays bounded
        // by the number of co-resident streams.
        let mut w = world(1, Features::all());
        for i in 0..2 {
            w.admit_stream(
                StreamSpec::builder(&format!("cam-{i}"), "ssd-mobilenet-v2")
                    .frame_limit(600)
                    .start_offset(SimDuration::from_millis(i * 29))
                    .build(),
            )
            .unwrap();
        }
        let results = w.run_to_completion(SimTime::from_secs(60));
        assert!(results.all_met_fps());
        assert!(
            results.max_queue_depths()[0] <= 3,
            "bounded backlog, got {:?}",
            results.max_queue_depths()
        );
    }

    #[test]
    fn understated_units_build_queues_and_violate_the_slo() {
        // The system trusts declared TPU units (paper §2: the input rate is
        // provided by the developer or profiled up front). A pod that lies —
        // declaring 0.2 units while actually generating 0.35 of work — gets
        // admitted five-to-a-TPU and drives it past saturation: the backlog
        // grows with run length and every stream misses 15 FPS.
        let mut w = world(1, Features::all());
        let mut cams = Vec::new();
        for i in 0..5 {
            cams.push(
                w.admit_stream(
                    StreamSpec::builder(&format!("liar-{i}"), "ssd-mobilenet-v2")
                        .units(TpuUnits::from_f64(0.2))
                        .frame_limit(900)
                        .start_offset(SimDuration::from_millis(i * 13))
                        .build(),
                )
                .unwrap(),
            );
        }
        let results = w.run_to_completion(SimTime::from_secs(300));
        // True demand 5 × 0.35 = 1.75 on one TPU: completions cap at ~57 %.
        for cam in cams {
            assert!(
                !results.report(cam).unwrap().met_fps(),
                "an oversubscribed TPU cannot hold the SLO"
            );
        }
        assert!(
            results.max_queue_depths()[0] > 20,
            "backlog grows without bound, got {:?}",
            results.max_queue_depths()
        );
        assert!(results.average_utilization() > 0.99);
    }

    #[test]
    fn drain_migrates_live_streams_with_zero_frame_loss() {
        let mut w = world(2, Features::all());
        let mut cams = Vec::new();
        for i in 0..2 {
            cams.push(
                w.admit_stream(
                    StreamSpec::builder(&format!("cam-{i}"), "ssd-mobilenet-v2")
                        .frame_limit(300)
                        .start_offset(SimDuration::from_millis(i * 29))
                        .build(),
                )
                .unwrap(),
            );
        }
        // Both cameras share TPU 0; TPU 1 is empty.
        assert_eq!(
            w.scheduler().pool().account(TpuId(0)).load(),
            TpuUnits::from_f64(0.7)
        );
        w.run_until(SimTime::from_secs(5));
        let migrated = w.drain_tpu(TpuId(0)).unwrap();
        assert_eq!(migrated.len(), 2);
        let results = w.run_to_completion(SimTime::from_secs(60));
        assert_eq!(results.frames_dropped(), 0, "maintenance loses nothing");
        for cam in cams {
            let r = results.report(cam).unwrap();
            assert_eq!(r.completed(), 300);
            assert!(r.met_fps());
        }
    }

    #[test]
    fn drain_rejects_when_fleet_cannot_absorb() {
        let mut w = world(1, Features::all());
        w.admit_stream(coral_pie("cam", 100)).unwrap();
        assert!(matches!(
            w.drain_tpu(TpuId(0)),
            Err(DeployError::InsufficientTpu)
        ));
        // Still schedulable and still running.
        assert_eq!(w.active_streams(), 1);
        let results = w.run_to_completion(SimTime::from_secs(30));
        assert!(results.all_met_fps());
    }

    #[test]
    fn run_summary_renders_per_stream_rows() {
        let mut w = world(1, Features::all());
        w.admit_stream(coral_pie("report-cam", 50)).unwrap();
        let results = w.run_to_completion(SimTime::from_secs(30));
        let text = results.render_summary();
        assert!(text.contains("report-cam"));
        assert!(text.contains("met"));
        assert!(text.contains("avg TPU utilization"));
        assert!(text.contains("0 frames dropped"));
    }

    // ------------------------------------------------------------------
    // Chaos mode
    // ------------------------------------------------------------------

    use crate::faults::{ChaosConfig, FaultEvent, FaultKind, FaultSchedule};
    use crate::pool::Allocation;

    /// Endless stream (no frame limit) — chaos runs end at the horizon.
    fn cam(name: &str) -> StreamSpec {
        StreamSpec::builder(name, "ssd-mobilenet-v2").build()
    }

    fn scripted(events: Vec<(u64, FaultKind)>) -> FaultSchedule {
        FaultSchedule::scripted(
            events
                .into_iter()
                .map(|(secs, kind)| FaultEvent {
                    at: SimTime::from_secs(secs),
                    kind,
                })
                .collect(),
        )
    }

    #[test]
    fn chaos_fault_is_detected_only_after_the_lease_expires() {
        let mut w = world(2, Features::all());
        let cam0 = w.admit_stream(cam("cam-0")).unwrap();
        w.enable_chaos(ChaosConfig::heal_only());
        w.inject_faults(&scripted(vec![(10, FaultKind::TpuFail(TpuId(0)))]));
        // Fault at 10 s; k3s default lease expires at 14 s. In between the
        // stream is interrupted but not yet recovered.
        w.run_until(SimTime::from_secs(12));
        assert_eq!(w.stream_phase(cam0), Some(StreamPhase::Interrupted));
        let results = w.run_to_completion(SimTime::from_secs(60));
        assert_eq!(results.stream_phase(cam0), Some(StreamPhase::Active));
        assert_eq!(results.recovery().count(), 1);
        let detection = results
            .recovery()
            .mean_ms(microedge_metrics::recovery::RecoveryPhase::Detection);
        assert!(
            (3_999.0..=4_001.0).contains(&detection),
            "detection should be the 4 s lease, got {detection} ms"
        );
        let avail = results.availability(cam0).unwrap();
        assert!(avail.downtime > SimDuration::from_secs(4), "{avail:?}");
        assert_eq!(avail.outages, 1);
        assert!(!avail.lost);
    }

    #[test]
    fn chaos_blip_shorter_than_the_lease_goes_undetected() {
        let mut w = world(2, Features::all());
        let cam0 = w.admit_stream(cam("cam-0")).unwrap();
        w.enable_chaos(ChaosConfig::heal_only());
        w.inject_faults(&scripted(vec![
            (10, FaultKind::TpuFail(TpuId(0))),
            (12, FaultKind::TpuRepair(TpuId(0))),
        ]));
        let results = w.run_to_completion(SimTime::from_secs(60));
        // The control plane never noticed: no recovery was recorded, the
        // placement is intact, and downtime is exactly the blip.
        assert_eq!(results.recovery().count(), 0);
        assert_eq!(results.stream_phase(cam0), Some(StreamPhase::Active));
        let avail = results.availability(cam0).unwrap();
        assert_eq!(avail.downtime, SimDuration::from_secs(2));
        assert_eq!(avail.outages, 1);
    }

    #[test]
    fn chaos_no_heal_loses_displaced_streams_for_good() {
        let mut w = world(1, Features::all());
        let cam0 = w.admit_stream(cam("cam-0")).unwrap();
        w.enable_chaos(ChaosConfig::no_heal());
        w.inject_faults(&scripted(vec![(10, FaultKind::TpuFail(TpuId(0)))]));
        // The queue drains once the stream is lost; finalise at the full
        // horizon so downtime covers the rest of the run.
        w.run_until(SimTime::from_secs(60));
        let results = w.finish(SimTime::from_secs(60));
        assert_eq!(results.stream_phase(cam0), Some(StreamPhase::Lost));
        assert_eq!(results.lost_streams(), vec![cam0]);
        let avail = results.availability(cam0).unwrap();
        assert!(avail.lost);
        // Down from the fault to the end of the run.
        assert_eq!(avail.downtime, SimDuration::from_secs(50));
    }

    #[test]
    fn chaos_heal_parks_until_capacity_returns() {
        let mut w = world(1, Features::all());
        let cam0 = w.admit_stream(cam("cam-0")).unwrap();
        w.enable_chaos(ChaosConfig::heal_only());
        w.inject_faults(&scripted(vec![
            (10, FaultKind::TpuFail(TpuId(0))),
            (30, FaultKind::TpuRepair(TpuId(0))),
        ]));
        w.run_until(SimTime::from_secs(20));
        // The only TPU is gone: the stream waits in the restart queue.
        assert_eq!(w.stream_phase(cam0), Some(StreamPhase::Parked));
        assert_eq!(w.pending_restarts(), vec![cam0]);
        let results = w.run_to_completion(SimTime::from_secs(60));
        assert_eq!(results.stream_phase(cam0), Some(StreamPhase::Active));
        assert!(results.parked_streams().is_empty());
        let avail = results.availability(cam0).unwrap();
        assert_eq!(avail.restarts, 1);
        assert!(!avail.lost);
        assert!(avail.downtime >= SimDuration::from_secs(20));
    }

    #[test]
    fn chaos_degradation_makes_room_on_the_surviving_fleet() {
        // Four 0.35-unit streams over two TPUs (1.40 units). Losing one
        // TPU leaves 1.0 units: impossible at full rate, possible with
        // fairness-tier degradation.
        let mut w = world(2, Features::all());
        let cams: Vec<StreamId> = (0..4)
            .map(|i| w.admit_stream(cam(&format!("cam-{i}"))).unwrap())
            .collect();
        w.enable_chaos(ChaosConfig::heal_degrade());
        w.inject_faults(&scripted(vec![(10, FaultKind::TpuFail(TpuId(0)))]));
        let results = w.run_to_completion(SimTime::from_secs(120));
        assert!(results.lost_streams().is_empty(), "degradation saves all");
        assert!(results.parked_streams().is_empty());
        let degraded = cams
            .iter()
            .filter(|&&c| results.stream_phase(c) == Some(StreamPhase::Degraded))
            .count();
        assert!(degraded >= 2, "someone must run at reduced rate");
        for &c in &cams {
            let phase = results.stream_phase(c).unwrap();
            assert!(
                matches!(phase, StreamPhase::Active | StreamPhase::Degraded),
                "{c} ended {phase}"
            );
        }
    }

    #[test]
    fn chaos_degraded_streams_upgrade_after_repair() {
        let mut w = world(2, Features::all());
        let cams: Vec<StreamId> = (0..4)
            .map(|i| w.admit_stream(cam(&format!("cam-{i}"))).unwrap())
            .collect();
        w.enable_chaos(ChaosConfig::heal_degrade());
        w.inject_faults(&scripted(vec![
            (10, FaultKind::TpuFail(TpuId(0))),
            (60, FaultKind::TpuRepair(TpuId(0))),
        ]));
        let results = w.run_to_completion(SimTime::from_secs(180));
        for &c in &cams {
            assert_eq!(
                results.stream_phase(c),
                Some(StreamPhase::Active),
                "full rate restores after repair"
            );
        }
        for avail in results.availabilities().values() {
            assert!(!avail.lost);
        }
    }

    #[test]
    fn chaos_tpu_failing_mid_swap_does_not_resurrect_the_stream() {
        // cam-0 recovers from TPU 0 onto another TPU; that destination then
        // fails *during* the parameter swap-in. The stale swap-in must not
        // flip the stream live on a dead placement.
        let mut w = world(3, Features::all());
        let cam0 = w.admit_stream(cam("cam-0")).unwrap();
        w.enable_chaos(ChaosConfig::heal_only());
        w.inject_faults(&scripted(vec![(10, FaultKind::TpuFail(TpuId(0)))]));
        // Detection at 14 s; swap-in needs RPCs + parameter streaming.
        w.run_until(SimTime::from_secs(14) + SimDuration::from_millis(50));
        let dest = w
            .scheduler()
            .assignment(w.pod_of(cam0).unwrap())
            .expect("replanned")
            .first()
            .map(Allocation::tpu)
            .unwrap();
        assert_ne!(dest, TpuId(0));
        // Kill the destination before the swap-in event fires.
        w.inject_faults(&FaultSchedule::scripted(vec![FaultEvent {
            at: w.now() + SimDuration::from_millis(1),
            kind: FaultKind::TpuFail(dest),
        }]));
        let results = w.run_to_completion(SimTime::from_secs(120));
        // It must end up serving from the third TPU, after two recoveries.
        assert_eq!(results.stream_phase(cam0), Some(StreamPhase::Active));
        assert_eq!(results.recovery().count(), 1, "only one recovery completed");
        let avail = results.availability(cam0).unwrap();
        assert_eq!(avail.outages, 1, "one continuous outage, not two");
    }

    #[test]
    fn chaos_node_fault_parks_hosted_streams() {
        let mut w = world(2, Features::all());
        let cam0 = w.admit_stream(cam("cam-0")).unwrap();
        let node = w.orchestrator().node_of(w.pod_of(cam0).unwrap()).unwrap();
        w.enable_chaos(ChaosConfig::heal_only());
        w.inject_faults(&scripted(vec![
            (10, FaultKind::NodeFail(node)),
            (40, FaultKind::NodeRepair(node)),
        ]));
        let results = w.run_to_completion(SimTime::from_secs(90));
        // The hosted pod was evicted after the lease; the reconciler
        // re-admitted the stream on surviving capacity.
        assert_eq!(results.stream_phase(cam0), Some(StreamPhase::Active));
        let avail = results.availability(cam0).unwrap();
        assert_eq!(avail.restarts, 1);
        assert!(avail.downtime >= SimDuration::from_secs(4), "{avail:?}");
    }

    #[test]
    fn chaos_link_blip_interrupts_without_control_plane_action() {
        let mut w = world(2, Features::all());
        let cam0 = w.admit_stream(cam("cam-0")).unwrap();
        let node = w.orchestrator().node_of(w.pod_of(cam0).unwrap()).unwrap();
        w.enable_chaos(ChaosConfig::heal_only());
        w.inject_faults(&scripted(vec![
            (10, FaultKind::LinkFail(node)),
            (12, FaultKind::LinkRepair(node)),
        ]));
        let results = w.run_to_completion(SimTime::from_secs(60));
        assert_eq!(results.stream_phase(cam0), Some(StreamPhase::Active));
        assert_eq!(results.recovery().count(), 0, "partition healed in time");
        assert_eq!(
            results.availability(cam0).unwrap().downtime,
            SimDuration::from_secs(2)
        );
    }

    #[test]
    fn restart_stream_links_lineage_and_merges_chain_latency() {
        let mut w = world(1, Features::all());
        let old = w.admit_stream(cam("cam-0")).unwrap();
        w.run_until(SimTime::from_secs(10));
        w.crash_stream(old).unwrap();
        w.poll_reclamation();
        let new = w.restart_stream(old).unwrap();
        assert_ne!(old, new);
        assert_eq!(w.stream_root(new), Some(old));
        // The superseded id cannot be restarted again.
        assert!(matches!(
            w.restart_stream(old),
            Err(DeployError::InvalidStreamState(_, _))
        ));
        let results = w.run_to_completion(SimTime::from_secs(30));
        assert_eq!(results.successor(old), Some(new));
        assert_eq!(results.stream_phase(old), Some(StreamPhase::Superseded));
        let merged = results.chain_latency(old).unwrap().count();
        let split = results.latency(old).unwrap().count() + results.latency(new).unwrap().count();
        assert_eq!(merged, split, "chain stats cover both incarnations");
        assert!(results.latency(old).unwrap().count() > 0);
        assert!(results.latency(new).unwrap().count() > 0);
    }

    #[test]
    fn fail_tpu_is_idempotent_and_tolerates_unknown_ids() {
        let mut w = world(1, Features::all());
        w.admit_stream(cam("cam-0")).unwrap();
        assert!(!w.fail_tpu(TpuId(0)).is_empty());
        assert!(w.fail_tpu(TpuId(0)).is_empty(), "second failure is a no-op");
        assert!(w.fail_tpu(TpuId(999)).is_empty(), "unknown id is a no-op");
        assert!(
            w.fail_node(NodeId(9_999)).is_empty(),
            "unknown node is a no-op"
        );
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let run = || {
            let cluster = ClusterBuilder::new().trpis(3).vrpis(6).build();
            let mut w = World::new(cluster.clone(), Features::all());
            let mut ids = Vec::new();
            for i in 0..5 {
                ids.push(w.admit_stream(cam(&format!("cam-{i}"))).unwrap());
            }
            w.enable_chaos(ChaosConfig::heal_degrade());
            let model = crate::faults::FaultModel {
                tpu: Some(crate::faults::ClassRates::new(
                    SimDuration::from_secs(60),
                    SimDuration::from_secs(20),
                )),
                node: Some(crate::faults::ClassRates::new(
                    SimDuration::from_secs(300),
                    SimDuration::from_secs(30),
                )),
                link: Some(crate::faults::ClassRates::new(
                    SimDuration::from_secs(120),
                    SimDuration::from_secs(5),
                )),
            };
            let schedule = crate::faults::FaultSchedule::generate(
                &model,
                &cluster,
                SimTime::from_secs(300),
                42,
            );
            w.inject_faults(&schedule);
            let results = w.run_to_completion(SimTime::from_secs(300));
            let fingerprint: Vec<String> = ids
                .iter()
                .map(|&id| {
                    let avail = results.availability(id);
                    format!(
                        "{id}:{:?}:{:?}",
                        results.stream_phase(id),
                        avail.map(|a| (a.downtime, a.degraded, a.outages, a.restarts, a.lost)),
                    )
                })
                .collect();
            (results.events_processed(), fingerprint)
        };
        assert_eq!(run(), run(), "identical seeds replay identically");
    }
}
