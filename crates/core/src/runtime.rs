//! The end-to-end MicroEdge simulation: control plane + data plane.
//!
//! A [`World`] owns the K3s-like orchestrator, the extended scheduler, one
//! data-plane [`TpuDevice`] per tRPi, and the camera streams. Camera frames
//! flow exactly as in the paper's Fig. 3:
//!
//! ```text
//! camera ─► TPU Client (pre-process) ─► LBS pick ─► network ─► TPU Service
//!                                                               (FIFO, run
//!                                                               to completion)
//!        ◄───────────── post-process ◄───────────── result ◄───┘
//! ```
//!
//! Streams can be admitted and removed while the simulation runs (the trace
//! study), TPUs can be failed (the failure-recovery extension), and every
//! run produces the metrics the paper's figures report: per-stream SLO
//! audits, overall and per-minute TPU utilization, and per-phase latency
//! breakdowns.
//!
//! ## Multi-model pipelines
//!
//! A stream may chain several inference stages per frame
//! ([`StreamSpecBuilder::then`]): the frame visits each stage's TPU in
//! order, each stage load-balanced by its own LBS. When consecutive stages
//! land on the *same* TPU the inter-stage hop is free — the data-plane
//! pipeline optimization the paper's §8 calls for.
//!
//! # Examples
//!
//! ```
//! use microedge_cluster::topology::ClusterBuilder;
//! use microedge_core::config::Features;
//! use microedge_core::runtime::{StreamSpec, World};
//! use microedge_sim::time::SimTime;
//!
//! # use microedge_core::scheduler::DeployError;
//! # fn main() -> Result<(), DeployError> {
//! let cluster = ClusterBuilder::new().trpis(1).vrpis(2).build();
//! let mut world = World::new(cluster, Features::all());
//! let cam = world
//!     .admit_stream(StreamSpec::builder("cam-0", "ssd-mobilenet-v2").frame_limit(30).build())?;
//! let results = world.run_to_completion(SimTime::from_secs(10));
//! assert!(results.report(cam).is_some_and(|r| r.met_fps()));
//! # Ok(())
//! # }
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use microedge_cluster::network::NetworkModel;
use microedge_cluster::node::NodeId;
use microedge_cluster::topology::Cluster;
use microedge_metrics::latency::{BreakdownRecorder, LatencyBreakdown};
use microedge_metrics::throughput::{SloReport, ThroughputAudit};
use microedge_metrics::utilization::FleetUtilization;
use microedge_models::catalog::Catalog;
use microedge_models::profile::{ModelId, ModelProfile};
use microedge_orch::lifecycle::Orchestrator;
use microedge_orch::pod::{PodId, PodSpec, ResourceRequest, EXT_MODEL, EXT_TPU_UNITS};
use microedge_sim::event::EventQueue;
use microedge_sim::rng::DetRng;
use microedge_sim::series::StepSeries;
use microedge_sim::stats::OnlineStats;
use microedge_sim::time::{SimDuration, SimTime};
use microedge_tpu::cocompile::CoCompiler;
use microedge_tpu::device::{DeviceStats, TpuDevice, TpuId};
use microedge_tpu::spec::TpuSpec;

use crate::client::SourceResolution;
use crate::config::{DataPlaneConfig, Features};
use crate::lbs::LbService;
use crate::scheduler::{DeployError, ExtendedScheduler};
use crate::units::TpuUnits;

/// Identifies a camera stream for its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u64);

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream-{}", self.0)
    }
}

/// One inference stage of a stream's per-frame pipeline.
#[derive(Debug, Clone, PartialEq)]
struct StageSpec {
    model: ModelId,
    units: Option<TpuUnits>,
}

/// Describes one camera stream to admit.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSpec {
    name: String,
    stages: Vec<StageSpec>,
    fps: f64,
    frame_limit: Option<u64>,
    start_offset: SimDuration,
    collocated: bool,
    frame_filter: Option<(f64, u64)>,
    source: SourceResolution,
}

impl StreamSpec {
    /// Starts building a stream whose first (often only) stage runs
    /// `model`, at the industry-standard 15 FPS.
    #[must_use]
    pub fn builder(name: &str, model: &str) -> StreamSpecBuilder {
        StreamSpecBuilder {
            spec: StreamSpec {
                name: name.to_owned(),
                stages: vec![StageSpec {
                    model: ModelId::new(model),
                    units: None,
                }],
                fps: 15.0,
                frame_limit: None,
                start_offset: SimDuration::ZERO,
                collocated: false,
                frame_filter: None,
                source: SourceResolution::FULL_HD,
            },
        }
    }

    /// Stream name (doubles as the pod name).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The first stage's model.
    #[must_use]
    pub fn model(&self) -> &ModelId {
        &self.stages[0].model
    }

    /// All stage models, in pipeline order.
    #[must_use]
    pub fn stage_models(&self) -> Vec<&ModelId> {
        self.stages.iter().map(|s| &s.model).collect()
    }

    /// Frame rate.
    #[must_use]
    pub fn fps(&self) -> f64 {
        self.fps
    }
}

/// Builder for [`StreamSpec`].
#[derive(Debug, Clone)]
pub struct StreamSpecBuilder {
    spec: StreamSpec,
}

impl StreamSpecBuilder {
    /// Sets the frame rate (default 15 FPS).
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not strictly positive.
    #[must_use]
    pub fn fps(mut self, fps: f64) -> Self {
        assert!(fps.is_finite() && fps > 0.0, "fps must be positive");
        self.spec.fps = fps;
        self
    }

    /// Overrides the *most recently added* stage's requested TPU units
    /// (default: derived by the offline profiling service from the model
    /// and frame rate).
    #[must_use]
    pub fn units(mut self, units: TpuUnits) -> Self {
        self.spec
            .stages
            .last_mut()
            .expect("builder always has a stage")
            .units = Some(units);
        self
    }

    /// Appends another inference stage to the per-frame pipeline.
    #[must_use]
    pub fn then(mut self, model: &str) -> Self {
        self.spec.stages.push(StageSpec {
            model: ModelId::new(model),
            units: None,
        });
        self
    }

    /// Stops the stream after `frames` frames (default: runs until
    /// removed).
    #[must_use]
    pub fn frame_limit(mut self, frames: u64) -> Self {
        self.spec.frame_limit = Some(frames);
        self
    }

    /// Delays the first frame — real cameras are not phase-aligned.
    #[must_use]
    pub fn start_offset(mut self, offset: SimDuration) -> Self {
        self.spec.start_offset = offset;
        self
    }

    /// Marks the stream's TPU as host-local (the bare-metal baseline):
    /// frames skip the network hop.
    #[must_use]
    pub fn collocated(mut self, collocated: bool) -> Self {
        self.spec.collocated = collocated;
        self
    }

    /// Sets the camera's native resolution (default 1080p); pre-processing
    /// cost scales with it.
    #[must_use]
    pub fn source_resolution(mut self, source: SourceResolution) -> Self {
        self.spec.source = source;
        self
    }

    /// Installs a NoScope-style difference detector (paper §1): only
    /// `pass_rate` of frames reach the TPU; the rest complete client-side
    /// after pre-processing. The caller should declare correspondingly
    /// reduced TPU units (see `microedge-workloads`' `DiffDetector`).
    ///
    /// # Panics
    ///
    /// Panics if `pass_rate` is outside `(0, 1]`.
    #[must_use]
    pub fn frame_filter(mut self, pass_rate: f64, seed: u64) -> Self {
        assert!(
            pass_rate > 0.0 && pass_rate <= 1.0,
            "pass rate must be in (0, 1], got {pass_rate}"
        );
        self.spec.frame_filter = Some((pass_rate, seed));
        self
    }

    /// Finalises the spec.
    #[must_use]
    pub fn build(self) -> StreamSpec {
        self.spec
    }
}

#[derive(Debug, Clone)]
struct InFlight {
    stream: StreamId,
    stage: usize,
    pre: SimDuration,
    trans_acc: SimDuration,
    infer_acc: SimDuration,
    arrived: SimTime,
}

#[derive(Debug)]
struct ServiceRuntime {
    device: TpuDevice,
    queue: VecDeque<InFlight>,
    current: Option<InFlight>,
    alive: bool,
    max_depth: usize,
}

#[derive(Debug)]
struct StageRuntime {
    profile: ModelProfile,
    lbs: LbService,
    /// Network transfer time for this stage's input, fixed at admission
    /// (the input size and link model never change over a stream's life).
    /// Collocated streams and free local hops bypass this with zero.
    transfer: SimDuration,
}

#[derive(Debug)]
struct FrameFilter {
    pass_rate: f64,
    rng: DetRng,
}

#[derive(Debug)]
struct StreamRuntime {
    pod: PodId,
    spec: StreamSpec,
    stages: Vec<StageRuntime>,
    audit: ThroughputAudit,
    latency: OnlineStats,
    interval: SimDuration,
    frame_limit: Option<u64>,
    emitted: u64,
    collocated: bool,
    active: bool,
    filter: Option<FrameFilter>,
    preprocess: SimDuration,
}

/// Kernel events. Completions are *not* events: a frame's completion time
/// is fully determined the moment its last TPU invocation finishes (or the
/// client filters it), so the kernel records completion metrics inline with
/// the future timestamp instead of bouncing a fourth event through the
/// queue — one quarter fewer events on the hot path, identical results.
#[derive(Debug)]
enum Ev {
    Frame(StreamId),
    Arrive(TpuId, InFlight),
    Done(TpuId),
}

/// Aggregated outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResults {
    reports: BTreeMap<StreamId, SloReport>,
    latencies: BTreeMap<StreamId, OnlineStats>,
    average_utilization: f64,
    per_device_utilization: Vec<f64>,
    windowed_utilization: Vec<f64>,
    breakdowns: BreakdownRecorder,
    device_stats: Vec<DeviceStats>,
    max_queue_depths: Vec<usize>,
    used_tpus: usize,
    frames_dropped: u64,
    events_processed: u64,
    end: SimTime,
}

impl RunResults {
    /// The SLO report for one stream.
    #[must_use]
    pub fn report(&self, stream: StreamId) -> Option<&SloReport> {
        self.reports.get(&stream)
    }

    /// All stream reports, in stream order.
    #[must_use]
    pub fn reports(&self) -> Vec<&SloReport> {
        self.reports.values().collect()
    }

    /// Per-frame end-to-end latency statistics (milliseconds) of one
    /// stream's TPU-served frames.
    #[must_use]
    pub fn latency(&self, stream: StreamId) -> Option<&OnlineStats> {
        self.latencies.get(&stream)
    }

    /// `true` when every TPU-served frame of every stream finished within
    /// `bound` — the per-frame latency SLO the paper's §2 motivates
    /// (unbounded queue build-up would eventually violate it).
    #[must_use]
    pub fn all_within_latency(&self, bound: SimDuration) -> bool {
        self.latencies
            .values()
            .all(|s| s.max().unwrap_or(0.0) <= bound.as_millis_f64())
    }

    /// `true` when every stream met its FPS SLO.
    #[must_use]
    pub fn all_met_fps(&self) -> bool {
        self.reports.values().all(SloReport::met_fps)
    }

    /// Mean TPU utilization over the whole run (Fig. 5b/5d).
    #[must_use]
    pub fn average_utilization(&self) -> f64 {
        self.average_utilization
    }

    /// Per-TPU utilization over the whole run.
    #[must_use]
    pub fn per_device_utilization(&self) -> &[f64] {
        &self.per_device_utilization
    }

    /// Fleet-average utilization per window (Fig. 6a).
    #[must_use]
    pub fn windowed_utilization(&self) -> &[f64] {
        &self.windowed_utilization
    }

    /// The per-phase latency statistics (Fig. 7b).
    #[must_use]
    pub fn breakdowns(&self) -> &BreakdownRecorder {
        &self.breakdowns
    }

    /// Mutable access to the latency statistics (percentile queries sort
    /// lazily and need it).
    pub fn breakdowns_mut(&mut self) -> &mut BreakdownRecorder {
        &mut self.breakdowns
    }

    /// Per-device execution counters.
    #[must_use]
    pub fn device_stats(&self) -> &[DeviceStats] {
        &self.device_stats
    }

    /// Deepest request backlog each TPU Service ever saw (queued plus
    /// executing). Admission control's job is to keep this small: a depth
    /// that grows with run length is the §2 queue build-up that eventually
    /// violates per-frame latency bounds.
    #[must_use]
    pub fn max_queue_depths(&self) -> &[usize] {
        &self.max_queue_depths
    }

    /// TPUs that carried load at the end of the run.
    #[must_use]
    pub fn used_tpus(&self) -> usize {
        self.used_tpus
    }

    /// Frames dropped by failed TPUs.
    #[must_use]
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped
    }

    /// Total simulation events the kernel delivered during the run — the
    /// denominator-independent work measure the perf harness reports as
    /// events/sec.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The instant the run was finalised at.
    #[must_use]
    pub fn end(&self) -> SimTime {
        self.end
    }

    /// Renders the whole run as an aligned report: one row per stream
    /// (throughput, latency, SLO) plus a fleet footer (utilization, queue
    /// depths, drops).
    #[must_use]
    pub fn render_summary(&self) -> String {
        let mut table = microedge_metrics::report::Table::new(&[
            "stream",
            "frames",
            "achieved FPS",
            "mean e2e (ms)",
            "max e2e (ms)",
            "SLO",
        ]);
        for (id, report) in &self.reports {
            let latency = self.latencies.get(id);
            table.row_owned(vec![
                report.stream().to_owned(),
                report.completed().to_string(),
                format!("{:.2}", report.achieved_fps()),
                format!("{:.2}", latency.map_or(0.0, OnlineStats::mean)),
                format!("{:.2}", latency.and_then(OnlineStats::max).unwrap_or(0.0)),
                if report.met_fps() { "met" } else { "VIOLATED" }.to_owned(),
            ]);
        }
        let depths: Vec<String> = self
            .max_queue_depths
            .iter()
            .map(ToString::to_string)
            .collect();
        format!(
            "{table}fleet: {:.1}% avg TPU utilization over {:.1}s | max queue depths [{}] | {} frames dropped\n",
            self.average_utilization * 100.0,
            self.end.as_secs_f64(),
            depths.join(", "),
            self.frames_dropped,
        )
    }
}

/// The complete simulated MicroEdge deployment.
pub struct World {
    queue: EventQueue<Ev>,
    orch: Orchestrator,
    sched: ExtendedScheduler,
    dp: DataPlaneConfig,
    net: NetworkModel,
    services: Vec<ServiceRuntime>,
    /// Slab of stream runtimes indexed by `StreamId.0`. Stream ids are
    /// allocated sequentially and never reused — removal merely clears
    /// `active` — so a dense `Vec` replaces the per-event `BTreeMap`
    /// lookups on the frame hot path. `BTreeMap`s survive only at the
    /// admission and reporting boundaries.
    streams: Vec<StreamRuntime>,
    active_count: usize,
    pods_to_streams: BTreeMap<PodId, StreamId>,
    fleet: FleetUtilization,
    breakdowns: BreakdownRecorder,
    served: StepSeries,
    frames_dropped: u64,
    next_stream: u64,
}

impl fmt::Debug for World {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("World")
            .field("now", &self.queue.now())
            .field("streams", &self.streams.len())
            .field("tpus", &self.services.len())
            .finish()
    }
}

/// The window used for per-interval metrics (one minute, as in Fig. 6).
pub const METRIC_WINDOW: SimDuration = SimDuration::from_secs(60);

impl World {
    /// Builds a world over `cluster` with the built-in catalog and the
    /// shipped First-Fit policy.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no TPUs.
    #[must_use]
    pub fn new(cluster: Cluster, features: Features) -> Self {
        Self::with_scheduler(
            cluster.clone(),
            ExtendedScheduler::new(&cluster, Catalog::builtin(), features),
        )
    }

    /// Builds a world with a custom extended scheduler (e.g. a baseline
    /// policy or a different catalog).
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no TPUs.
    #[must_use]
    pub fn with_scheduler(cluster: Cluster, sched: ExtendedScheduler) -> Self {
        let tpu_count = cluster.tpu_count();
        assert!(tpu_count > 0, "a MicroEdge world needs at least one TPU");
        let net = *cluster.network();
        let services = (0..tpu_count)
            .map(|_| ServiceRuntime {
                device: TpuDevice::new(TpuSpec::coral_usb()),
                queue: VecDeque::new(),
                current: None,
                alive: true,
                max_depth: 0,
            })
            .collect();
        World {
            queue: EventQueue::new(),
            orch: Orchestrator::new(cluster),
            sched,
            dp: DataPlaneConfig::calibrated(),
            net,
            services,
            streams: Vec::new(),
            active_count: 0,
            pods_to_streams: BTreeMap::new(),
            fleet: FleetUtilization::new(tpu_count, METRIC_WINDOW),
            breakdowns: BreakdownRecorder::new(),
            served: StepSeries::new(METRIC_WINDOW),
            frames_dropped: 0,
            next_stream: 0,
        }
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Overrides the data-plane calibration. Call before admitting streams
    /// — already-admitted streams keep their cached pre-processing cost.
    pub fn set_data_plane(&mut self, dp: DataPlaneConfig) {
        self.dp = dp;
    }

    /// The extended scheduler (for inspecting pool state).
    #[must_use]
    pub fn scheduler(&self) -> &ExtendedScheduler {
        &self.sched
    }

    /// The orchestrator (for inspecting pods).
    #[must_use]
    pub fn orchestrator(&self) -> &Orchestrator {
        &self.orch
    }

    /// Number of active streams (maintained incrementally; O(1)).
    #[must_use]
    pub fn active_streams(&self) -> usize {
        debug_assert_eq!(
            self.active_count,
            self.streams.iter().filter(|s| s.active).count(),
            "active-stream counter drifted from the slab"
        );
        self.active_count
    }

    /// The pod backing a stream, if the stream exists.
    #[must_use]
    pub fn pod_of(&self, stream: StreamId) -> Option<PodId> {
        self.stream(stream).map(|s| s.pod)
    }

    #[inline]
    fn stream(&self, id: StreamId) -> Option<&StreamRuntime> {
        self.streams.get(id.0 as usize)
    }

    #[inline]
    fn stream_mut(&mut self, id: StreamId) -> Option<&mut StreamRuntime> {
        self.streams.get_mut(id.0 as usize)
    }

    /// Flips an active stream inactive, keeping the counter in sync.
    /// Returns `false` when the stream was already inactive or unknown.
    fn deactivate(&mut self, id: StreamId) -> bool {
        match self.streams.get_mut(id.0 as usize) {
            Some(stream) if stream.active => {
                stream.active = false;
                self.active_count -= 1;
                true
            }
            _ => false,
        }
    }

    /// Admits a camera stream: TPU admission (all pipeline stages), pod
    /// creation, LBS seeding, and scheduling of its first frame at the
    /// current time plus the stream's start offset.
    ///
    /// # Errors
    ///
    /// See [`DeployError`]; on error nothing is changed.
    pub fn admit_stream(&mut self, spec: StreamSpec) -> Result<StreamId, DeployError> {
        let mut profiles = Vec::with_capacity(spec.stages.len());
        let mut model_ext = Vec::with_capacity(spec.stages.len());
        let mut units_ext = Vec::with_capacity(spec.stages.len());
        for stage in &spec.stages {
            let profile = self
                .sched
                .catalog()
                .get(&stage.model)
                .ok_or_else(|| DeployError::UnknownModel(stage.model.clone()))?
                .clone();
            let units = stage
                .units
                .unwrap_or_else(|| self.dp.profiled_units(&profile, spec.fps));
            model_ext.push(stage.model.as_str().to_owned());
            units_ext.push(format!("{}", units.as_f64()));
            profiles.push(profile);
        }
        let pod_spec = PodSpec::builder(&spec.name, "microedge-camera:latest")
            .resources(ResourceRequest::camera_default())
            .extension(EXT_MODEL, &model_ext.join(","))
            .extension(EXT_TPU_UNITS, &units_ext.join(","))
            .build();
        let deployment = self.sched.deploy(&mut self.orch, pod_spec)?;
        let stages: Vec<StageRuntime> = deployment
            .stages()
            .iter()
            .zip(profiles)
            .map(|(grant, profile)| StageRuntime {
                transfer: self.net.transfer_time(profile.input_bytes()),
                profile,
                lbs: grant.lbs(),
            })
            .collect();
        for grant in deployment.stages() {
            for alloc in grant.allocations() {
                self.sync_device(alloc.tpu());
            }
        }
        let id = StreamId(self.next_stream);
        debug_assert_eq!(id.0 as usize, self.streams.len(), "slab ids are dense");
        self.next_stream += 1;
        let now = self.queue.now();
        let start_offset = spec.start_offset;
        // The spec moves into the runtime whole — no per-admission deep
        // clone of its name and stage list.
        let runtime = StreamRuntime {
            pod: deployment.pod(),
            stages,
            audit: ThroughputAudit::new(&spec.name, spec.fps),
            latency: OnlineStats::new(),
            interval: SimDuration::from_secs_f64(1.0 / spec.fps),
            frame_limit: spec.frame_limit,
            emitted: 0,
            collocated: spec.collocated,
            active: true,
            filter: spec.frame_filter.map(|(pass_rate, seed)| FrameFilter {
                pass_rate,
                rng: DetRng::seed_from(seed),
            }),
            preprocess: self.dp.preprocess_for(spec.source),
            spec,
        };
        self.pods_to_streams.insert(deployment.pod(), id);
        self.streams.push(runtime);
        self.active_count += 1;
        self.served.add(now, 1.0);
        self.queue.schedule_after(start_offset, Ev::Frame(id));
        Ok(id)
    }

    /// Removes a stream: the pod is deleted and its TPU units return to the
    /// pool. In-flight frames drain normally.
    ///
    /// # Errors
    ///
    /// Propagates orchestrator errors for unknown pods.
    pub fn remove_stream(&mut self, id: StreamId) -> Result<(), DeployError> {
        let pod = self
            .stream(id)
            .filter(|s| s.active)
            .map(|s| s.pod)
            .ok_or(DeployError::Orch(
                microedge_orch::lifecycle::OrchError::UnknownPod(PodId(u64::MAX)),
            ))?;
        self.deactivate(id);
        self.sched.teardown(&mut self.orch, pod)?;
        self.served.add(self.queue.now(), -1.0);
        Ok(())
    }

    /// Simulates the stream's pod crashing *without* notifying the
    /// extended scheduler: the orchestrator marks the pod terminated and
    /// frames stop, but the pod's TPU units remain held until the
    /// reclamation component notices (paper §3.1 step ⑤ — exercised via
    /// [`World::poll_reclamation`]).
    ///
    /// # Errors
    ///
    /// Propagates orchestrator errors for unknown/terminated pods.
    pub fn crash_stream(&mut self, id: StreamId) -> Result<(), DeployError> {
        let pod = self
            .stream(id)
            .filter(|s| s.active)
            .map(|s| s.pod)
            .ok_or(DeployError::Orch(
                microedge_orch::lifecycle::OrchError::UnknownPod(PodId(u64::MAX)),
            ))?;
        self.deactivate(id);
        self.orch.delete_pod(pod)?;
        self.served.add(self.queue.now(), -1.0);
        Ok(())
    }

    /// One poll of the reclamation component: returns the TPU units of
    /// every terminated pod that still holds an assignment, and reports the
    /// pods reclaimed.
    pub fn poll_reclamation(&mut self) -> Vec<PodId> {
        self.sched.reclaim_terminated(&self.orch)
    }

    /// Fails a TPU mid-run: queued and executing frames on it are dropped,
    /// and affected pods are re-admitted on surviving TPUs where possible
    /// (the paper's failure-recovery extension). Streams whose pods cannot
    /// be re-placed are deactivated.
    ///
    /// Returns the streams that lost TPU service.
    pub fn fail_tpu(&mut self, tpu: TpuId) -> Vec<StreamId> {
        let now = self.queue.now();
        let svc = &mut self.services[tpu.0 as usize];
        svc.alive = false;
        self.frames_dropped += svc.queue.len() as u64;
        svc.queue.clear();
        if svc.current.take().is_some() {
            self.frames_dropped += 1;
            self.fleet.tracker_mut(tpu.0 as usize).end_busy(now);
        }
        let outcome = self.sched.handle_tpu_failure(tpu);
        for (pod, plans) in &outcome.recovered {
            let stream_id = self.pods_to_streams[pod];
            if let Some(stream) = self.stream_mut(stream_id) {
                for (stage, (_, allocations)) in stream.stages.iter_mut().zip(plans) {
                    stage.lbs = LbService::from_allocations(allocations);
                }
            }
            for (_, allocations) in plans {
                for alloc in allocations {
                    self.sync_device(alloc.tpu());
                }
            }
        }
        let mut lost_streams = Vec::new();
        for pod in outcome.lost {
            let stream_id = self.pods_to_streams[&pod];
            if self.deactivate(stream_id) {
                self.served.add(now, -1.0);
            }
            lost_streams.push(stream_id);
        }
        lost_streams
    }

    /// Fails an entire node (tRPi or vRPi): the orchestrator terminates
    /// every pod hosted on it, the node stops accepting pods, and — if a
    /// TPU hangs off the node — that TPU fails too, with displaced streams
    /// re-admitted on survivors where possible. Streams whose *application
    /// container* lived on the dead node are deactivated outright (their
    /// pod is gone) and their TPU units reclaimed.
    ///
    /// Returns the streams that stopped as a result.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of the cluster.
    pub fn fail_node(&mut self, node: NodeId) -> Vec<StreamId> {
        let now = self.queue.now();
        // The node's TPU (if any) dies with it.
        let tpu = self
            .sched
            .pool()
            .accounts()
            .iter()
            .find(|a| a.node() == node)
            .map(|a| a.id());
        let mut stopped = match tpu {
            Some(tpu) => self.fail_tpu(tpu),
            None => Vec::new(),
        };
        // Pods hosted on the node terminate; their streams stop emitting.
        let displaced = self.orch.fail_node(node);
        for pod in displaced {
            if let Some(&stream_id) = self.pods_to_streams.get(&pod) {
                if self.deactivate(stream_id) {
                    self.served.add(now, -1.0);
                    stopped.push(stream_id);
                }
            }
        }
        // The reclamation component returns the dead pods' TPU units.
        self.sched.reclaim_terminated(&self.orch);
        stopped.sort_unstable();
        stopped.dedup();
        stopped
    }

    /// Drains a TPU for maintenance: its load live-migrates to the rest of
    /// the fleet (new frames route elsewhere; frames already queued on it
    /// finish normally — zero frames are dropped). Returns the migrated
    /// streams.
    ///
    /// # Errors
    ///
    /// [`DeployError::InsufficientTpu`] when the remaining fleet cannot
    /// absorb the load; nothing changes in that case.
    pub fn drain_tpu(&mut self, tpu: TpuId) -> Result<Vec<StreamId>, DeployError> {
        let migrated = self.sched.drain_tpu(tpu)?;
        let mut streams = Vec::with_capacity(migrated.len());
        for (pod, plans) in &migrated {
            let stream_id = self.pods_to_streams[pod];
            if let Some(stream) = self.stream_mut(stream_id) {
                for (stage, (_, allocations)) in stream.stages.iter_mut().zip(plans) {
                    stage.lbs = LbService::from_allocations(allocations);
                }
            }
            for (_, allocations) in plans {
                for alloc in allocations {
                    self.sync_device(alloc.tpu());
                }
            }
            streams.push(stream_id);
        }
        Ok(streams)
    }

    /// Attempts to restart a stream that lost service (pod crash, node or
    /// TPU failure): a fresh admission of the original spec under a new
    /// stream id — the controller loop a production deployment would run
    /// on `PodTerminated` events. Frames resume at the current time.
    ///
    /// # Errors
    ///
    /// [`DeployError`] when the stream is unknown, still active, or no
    /// longer fits the surviving capacity.
    pub fn restart_stream(&mut self, id: StreamId) -> Result<StreamId, DeployError> {
        let stream = self.stream(id).ok_or(DeployError::Orch(
            microedge_orch::lifecycle::OrchError::UnknownPod(PodId(u64::MAX)),
        ))?;
        if stream.active {
            return Err(DeployError::MalformedRequest(format!(
                "{id} is still active"
            )));
        }
        let mut spec = stream.spec.clone();
        spec.start_offset = SimDuration::ZERO;
        self.admit_stream(spec)
    }

    /// Processes all events up to and including `until`.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some((now, ev)) = self.queue.pop_due(until) {
            self.dispatch(now, ev);
        }
    }

    /// Runs until the event queue drains or `deadline` is reached, then
    /// finalises. Convenient for frame-limited runs.
    #[must_use]
    pub fn run_to_completion(mut self, deadline: SimTime) -> RunResults {
        self.run_until(deadline);
        let end = self.queue.now().max(SimTime::from_nanos(1));
        self.finish(end)
    }

    /// Finalises the run at `end`, producing every metric.
    ///
    /// # Panics
    ///
    /// Panics if `end` precedes the last processed event.
    #[must_use]
    pub fn finish(self, end: SimTime) -> RunResults {
        let reports = self
            .streams
            .iter()
            .enumerate()
            .map(|(i, s)| (StreamId(i as u64), s.audit.report(end)))
            .collect();
        let latencies = self
            .streams
            .iter()
            .enumerate()
            .map(|(i, s)| (StreamId(i as u64), s.latency.clone()))
            .collect();
        let average_utilization = self.fleet.average_utilization(end);
        let per_device_utilization = self.fleet.per_device_utilization(end);
        let windowed_utilization = self.fleet.into_windowed_average(end);
        RunResults {
            reports,
            latencies,
            average_utilization,
            per_device_utilization,
            windowed_utilization,
            breakdowns: self.breakdowns,
            device_stats: self.services.iter().map(|s| s.device.stats()).collect(),
            max_queue_depths: self.services.iter().map(|s| s.max_depth).collect(),
            used_tpus: self.sched.pool().used_tpus(),
            frames_dropped: self.frames_dropped,
            events_processed: self.queue.events_processed(),
            end,
        }
    }

    /// Cameras-served step series finaliser (Fig. 6b): per-window average
    /// number of active streams up to `end`, alongside the run results.
    /// Consumes the world.
    #[must_use]
    pub fn finish_with_served_series(self, end: SimTime) -> (RunResults, Vec<f64>) {
        let served = self.served.clone().finish(end);
        (self.finish(end), served)
    }

    fn sync_device(&mut self, tpu: TpuId) {
        let models = self.sched.resident_models(tpu);
        let profiles: Vec<ModelProfile> = models
            .iter()
            .map(|m| self.sched.catalog().expect(m).clone())
            .collect();
        let device = &mut self.services[tpu.0 as usize].device;
        let plan = CoCompiler::new(device.spec())
            .plan(&profiles)
            .expect("resident models are distinct");
        device.load_plan(plan);
    }

    fn dispatch(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Frame(id) => self.on_frame(now, id),
            Ev::Arrive(tpu, inflight) => self.on_arrive(now, tpu, inflight),
            Ev::Done(tpu) => self.on_done(now, tpu),
        }
    }

    fn on_frame(&mut self, now: SimTime, id: StreamId) {
        let Some(stream) = self.streams.get_mut(id.0 as usize) else {
            return;
        };
        if !stream.active {
            return;
        }
        stream.audit.frame_emitted(now);
        stream.emitted += 1;
        let pre = stream.preprocess;
        let filtered = stream
            .filter
            .as_mut()
            .is_some_and(|f| !f.rng.chance(f.pass_rate));
        if filtered {
            // The difference detector discards the frame client-side after
            // pre-processing; it never reaches a TPU, so its completion
            // instant is already known.
            stream.audit.frame_completed(now + pre);
            let more = stream
                .frame_limit
                .is_none_or(|limit| stream.emitted < limit);
            if more {
                let interval = stream.interval;
                self.queue.schedule_after(interval, Ev::Frame(id));
            }
            return;
        }
        let tpu = stream.stages[0].lbs.next();
        let trans = if stream.collocated {
            SimDuration::ZERO
        } else {
            stream.stages[0].transfer
        };
        let inflight = InFlight {
            stream: id,
            stage: 0,
            pre,
            trans_acc: trans,
            infer_acc: SimDuration::ZERO,
            arrived: now, // overwritten on arrival
        };
        self.queue
            .schedule_at(now + pre + trans, Ev::Arrive(tpu, inflight));
        let more = stream
            .frame_limit
            .is_none_or(|limit| stream.emitted < limit);
        if more {
            let interval = stream.interval;
            self.queue.schedule_after(interval, Ev::Frame(id));
        }
    }

    fn on_arrive(&mut self, now: SimTime, tpu: TpuId, mut inflight: InFlight) {
        let svc = &mut self.services[tpu.0 as usize];
        if !svc.alive {
            self.frames_dropped += 1;
            return;
        }
        inflight.arrived = now;
        svc.queue.push_back(inflight);
        let depth = svc.queue.len() + usize::from(svc.current.is_some());
        svc.max_depth = svc.max_depth.max(depth);
        if svc.current.is_none() {
            self.start_next(now, tpu);
        }
    }

    fn start_next(&mut self, now: SimTime, tpu: TpuId) {
        let svc = &mut self.services[tpu.0 as usize];
        let Some(inflight) = svc.queue.pop_front() else {
            return;
        };
        let profile = &self.streams[inflight.stream.0 as usize].stages[inflight.stage].profile;
        let busy = svc.device.invoke(profile).busy() + self.dp.invoke_overhead;
        svc.current = Some(inflight);
        self.fleet.tracker_mut(tpu.0 as usize).begin_busy(now);
        self.queue.schedule_at(now + busy, Ev::Done(tpu));
    }

    fn on_done(&mut self, now: SimTime, tpu: TpuId) {
        let inflight = {
            let svc = &mut self.services[tpu.0 as usize];
            if !svc.alive {
                return;
            }
            svc.current
                .take()
                .expect("Done event without an executing request")
        };
        self.fleet.tracker_mut(tpu.0 as usize).end_busy(now);
        let mut inflight = inflight;
        inflight.infer_acc += now.saturating_since(inflight.arrived);
        let next_stage = inflight.stage + 1;
        let stream = self
            .streams
            .get_mut(inflight.stream.0 as usize)
            .expect("in-flight frames belong to known streams");
        if next_stage < stream.stages.len() {
            // Forward to the next pipeline stage. A hop to the same TPU is
            // free (same host); otherwise the next stage's input crosses
            // the network.
            let next_tpu = stream.stages[next_stage].lbs.next();
            let local_hop = next_tpu == tpu && self.dp.pipeline_local_hop;
            let trans = if local_hop || stream.collocated {
                SimDuration::ZERO
            } else {
                stream.stages[next_stage].transfer
            };
            inflight.stage = next_stage;
            inflight.trans_acc += trans;
            self.queue
                .schedule_at(now + trans, Ev::Arrive(next_tpu, inflight));
        } else {
            let breakdown = LatencyBreakdown::new(
                inflight.pre,
                inflight.trans_acc,
                inflight.infer_acc,
                self.dp.postprocess,
            );
            // The frame leaves the pipeline after client-side
            // post-processing, whose duration is fixed — record the
            // completion now with its future timestamp.
            stream.audit.frame_completed(now + self.dp.postprocess);
            stream.latency.record_duration(breakdown.total());
            self.breakdowns.record(&breakdown);
        }
        self.start_next(now, tpu);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microedge_cluster::topology::ClusterBuilder;
    use microedge_metrics::latency::Phase;

    fn world(trpis: u32, features: Features) -> World {
        let cluster = ClusterBuilder::new().trpis(trpis).vrpis(4).build();
        World::new(cluster, features)
    }

    fn coral_pie(name: &str, frames: u64) -> StreamSpec {
        StreamSpec::builder(name, "ssd-mobilenet-v2")
            .frame_limit(frames)
            .build()
    }

    #[test]
    fn single_stream_meets_slo() {
        let mut w = world(1, Features::all());
        let cam = w.admit_stream(coral_pie("cam", 150)).unwrap();
        let results = w.run_to_completion(SimTime::from_secs(60));
        let report = results.report(cam).unwrap();
        assert_eq!(report.emitted(), 150);
        assert_eq!(report.completed(), 150);
        assert!(report.met_fps(), "achieved {}", report.achieved_fps());
    }

    #[test]
    fn utilization_matches_tpu_units() {
        let mut w = world(1, Features::all());
        w.admit_stream(coral_pie("cam", 300)).unwrap();
        let results = w.run_to_completion(SimTime::from_secs(60));
        // One 0.35-unit stream on one TPU → ≈ 35 % utilization.
        assert!(
            (results.average_utilization() - 0.35).abs() < 0.02,
            "got {}",
            results.average_utilization()
        );
    }

    #[test]
    fn two_streams_share_one_tpu() {
        let mut w = world(1, Features::all());
        let a = w.admit_stream(coral_pie("a", 300)).unwrap();
        let b = w
            .admit_stream(
                StreamSpec::builder("b", "ssd-mobilenet-v2")
                    .frame_limit(300)
                    .start_offset(SimDuration::from_millis(33))
                    .build(),
            )
            .unwrap();
        let results = w.run_to_completion(SimTime::from_secs(60));
        assert!(results.report(a).unwrap().met_fps());
        assert!(results.report(b).unwrap().met_fps());
        assert!((results.average_utilization() - 0.70).abs() < 0.03);
    }

    #[test]
    fn breakdown_reproduces_fig7b_shape() {
        let mut w = world(1, Features::all());
        w.admit_stream(coral_pie("cam", 100)).unwrap();
        let results = w.run_to_completion(SimTime::from_secs(30));
        let b = results.breakdowns();
        assert_eq!(b.mean_ms(Phase::PreProcess), 5.0);
        assert!((b.mean_ms(Phase::Transmission) - 8.0).abs() < 0.2);
        // Inference phase = TPU occupancy (no queueing for one stream).
        assert!((b.mean_ms(Phase::Inference) - 23.33).abs() < 0.1);
        assert_eq!(b.mean_ms(Phase::PostProcess), 3.0);
    }

    #[test]
    fn collocated_baseline_has_no_transmission() {
        let mut w = world(1, Features::all());
        w.admit_stream(
            StreamSpec::builder("cam", "ssd-mobilenet-v2")
                .frame_limit(50)
                .collocated(true)
                .build(),
        )
        .unwrap();
        let results = w.run_to_completion(SimTime::from_secs(30));
        assert_eq!(results.breakdowns().mean_ms(Phase::Transmission), 0.0);
    }

    #[test]
    fn partitioned_stream_uses_both_tpus() {
        let mut w = world(2, Features::all());
        let cam = w
            .admit_stream(
                StreamSpec::builder("seg", "bodypix-mobilenet-v1")
                    .frame_limit(150)
                    .build(),
            )
            .unwrap();
        let results = w.run_to_completion(SimTime::from_secs(60));
        assert!(results.report(cam).unwrap().met_fps());
        let per = results.per_device_utilization();
        assert!(per[0] > 0.5, "TPU 0 carries most load: {per:?}");
        assert!(per[1] > 0.05, "TPU 1 carries the overflow: {per:?}");
    }

    #[test]
    fn stream_removal_frees_units_for_new_streams() {
        let mut w = world(1, Features::all());
        let a = w.admit_stream(coral_pie("a", 1_000_000)).unwrap();
        let b = w.admit_stream(coral_pie("b", 1_000_000)).unwrap();
        // Pool is at 0.70; a third stream does not fit.
        assert!(w.admit_stream(coral_pie("c", 10)).is_err());
        w.run_until(SimTime::from_secs(5));
        w.remove_stream(a).unwrap();
        let c = w.admit_stream(coral_pie("c", 50)).unwrap();
        w.run_until(SimTime::from_secs(20));
        let results = w.finish(SimTime::from_secs(20));
        assert!(results.report(c).unwrap().met_fps());
        assert!(results.report(b).unwrap().met_fps());
    }

    #[test]
    fn remove_stream_twice_errors() {
        let mut w = world(1, Features::all());
        let a = w.admit_stream(coral_pie("a", 10)).unwrap();
        w.remove_stream(a).unwrap();
        assert!(w.remove_stream(a).is_err());
    }

    #[test]
    fn tpu_failure_recovers_streams_onto_survivors() {
        let mut w = world(2, Features::all());
        let cam = w.admit_stream(coral_pie("cam", 1_000_000)).unwrap();
        w.run_until(SimTime::from_secs(2));
        let pod = w.pod_of(cam).unwrap();
        let tpu = w.scheduler().assignment(pod).unwrap()[0].tpu();
        let lost = w.fail_tpu(tpu);
        assert!(lost.is_empty(), "stream should be re-placed");
        w.run_until(SimTime::from_secs(6));
        let results = w.finish(SimTime::from_secs(6));
        // Some frames may have been dropped at the failure instant, but the
        // stream keeps flowing on the surviving TPU.
        let report = results.report(cam).unwrap();
        assert!(report.completed() > 80, "completed {}", report.completed());
    }

    #[test]
    fn tpu_failure_without_spare_capacity_loses_stream() {
        let mut w = world(1, Features::all());
        let cam = w.admit_stream(coral_pie("cam", 1_000_000)).unwrap();
        w.run_until(SimTime::from_secs(1));
        let lost = w.fail_tpu(TpuId(0));
        assert_eq!(lost, vec![cam]);
        assert_eq!(w.active_streams(), 0);
    }

    #[test]
    fn served_series_tracks_arrivals_and_departures() {
        let mut w = world(2, Features::all());
        let a = w.admit_stream(coral_pie("a", 1_000_000)).unwrap();
        w.run_until(SimTime::from_secs(120));
        w.remove_stream(a).unwrap();
        w.run_until(SimTime::from_secs(179));
        let (_, served) = w.finish_with_served_series(SimTime::from_secs(180));
        assert_eq!(served.len(), 3);
        assert!((served[0] - 1.0).abs() < 1e-9);
        // Removal happens at the last event before t=120 s, a hair inside
        // the second window.
        assert!(served[1] > 0.99, "got {}", served[1]);
        assert!(served[2] < 0.01);
    }

    #[test]
    fn stream_spec_accessors() {
        let s = StreamSpec::builder("cam", "unet-v2").fps(10.0).build();
        assert_eq!(s.name(), "cam");
        assert_eq!(s.model().as_str(), "unet-v2");
        assert_eq!(s.fps(), 10.0);
        assert_eq!(StreamId(3).to_string(), "stream-3");
    }

    #[test]
    fn unknown_model_rejected_at_admission() {
        let mut w = world(1, Features::all());
        let err = w
            .admit_stream(StreamSpec::builder("x", "nope").build())
            .unwrap_err();
        assert!(matches!(err, DeployError::UnknownModel(_)));
    }

    // --- multi-model pipelines (paper §8 extension) ---

    // UNet (2.3 MiB) then MobileNet V1 (3.5 MiB): the pair co-fits one
    // TPU's parameter budget, unlike SSD-based pipelines.
    fn segment_then_classify(name: &str, frames: u64) -> StreamSpec {
        StreamSpec::builder(name, "unet-v2")
            .then("mobilenet-v1")
            .frame_limit(frames)
            .build()
    }

    #[test]
    fn pipeline_stream_runs_both_stages_per_frame() {
        let mut w = world(1, Features::all());
        let cam = w.admit_stream(segment_then_classify("pipe", 100)).unwrap();
        let results = w.run_to_completion(SimTime::from_secs(30));
        let report = results.report(cam).unwrap();
        assert_eq!(report.completed(), 100);
        assert!(report.met_fps(), "achieved {}", report.achieved_fps());
        // Every frame ran two inferences on the single TPU.
        assert_eq!(results.device_stats()[0].invocations(), 200);
        // Utilization ≈ (0.675 + 0.215) on one TPU.
        assert!(
            (results.average_utilization() - 0.89).abs() < 0.02,
            "got {}",
            results.average_utilization()
        );
    }

    #[test]
    fn pipeline_same_tpu_hop_is_free() {
        // One TPU: both stages must land on it, so the inter-stage hop is
        // local and transmission equals a single-stage stream's.
        let mut w = world(1, Features::all());
        w.admit_stream(segment_then_classify("pipe", 80)).unwrap();
        let results = w.run_to_completion(SimTime::from_secs(30));
        // UNet's 256×256 input costs ≈ 6.1 ms for its single network hop.
        let trans = results.breakdowns().mean_ms(Phase::Transmission);
        assert!((trans - 6.1).abs() < 0.2, "single hop only, got {trans}");
        // The inference phase is the sum of both stage occupancies
        // (45 ms + 14.33 ms).
        let infer = results.breakdowns().mean_ms(Phase::Inference);
        assert!((infer - (45.0 + 14.33)).abs() < 0.5, "got {infer}");
    }

    #[test]
    fn pipeline_spec_accessors() {
        let s = segment_then_classify("p", 1);
        assert_eq!(
            s.stage_models()
                .iter()
                .map(|m| m.as_str())
                .collect::<Vec<_>>(),
            vec!["unet-v2", "mobilenet-v1"]
        );
    }

    #[test]
    fn pipeline_stream_removal_frees_all_stage_units() {
        let mut w = world(1, Features::all());
        let cam = w
            .admit_stream(segment_then_classify("pipe", 1_000_000))
            .unwrap();
        w.run_until(SimTime::from_secs(1));
        w.remove_stream(cam).unwrap();
        assert_eq!(w.scheduler().pool().total_free_units(), TpuUnits::ONE);
    }

    // --- NoScope-style difference detector (paper §1) ---

    #[test]
    fn frame_filter_reduces_tpu_utilization() {
        // Coral-Pie behind a 2/3-pass difference detector: the paper's §1
        // observation that utilization drops from ~30 % to ~20 %.
        let mut w = world(1, Features::all());
        let cam = w
            .admit_stream(
                StreamSpec::builder("cam", "ssd-mobilenet-v2")
                    .units(TpuUnits::from_f64(0.235))
                    .frame_filter(2.0 / 3.0, 7)
                    .frame_limit(900)
                    .build(),
            )
            .unwrap();
        let results = w.run_to_completion(SimTime::from_secs(90));
        let util = results.average_utilization();
        assert!(
            (util - 0.35 * 2.0 / 3.0).abs() < 0.02,
            "expected ≈ 0.233, got {util}"
        );
        // Every frame still completes (filtered ones finish client-side).
        let report = results.report(cam).unwrap();
        assert_eq!(report.completed(), 900);
        assert!(report.met_fps());
    }

    #[test]
    fn frame_filter_with_full_pass_rate_is_transparent() {
        let mut w = world(1, Features::all());
        w.admit_stream(
            StreamSpec::builder("cam", "ssd-mobilenet-v2")
                .frame_filter(1.0, 3)
                .frame_limit(100)
                .build(),
        )
        .unwrap();
        let results = w.run_to_completion(SimTime::from_secs(30));
        assert!((results.average_utilization() - 0.35).abs() < 0.02);
        assert_eq!(results.device_stats()[0].invocations(), 100);
    }

    #[test]
    fn filtered_frames_skip_the_breakdown_statistics() {
        let mut w = world(1, Features::all());
        w.admit_stream(
            StreamSpec::builder("cam", "ssd-mobilenet-v2")
                .units(TpuUnits::from_f64(0.2))
                .frame_filter(0.5, 11)
                .frame_limit(200)
                .build(),
        )
        .unwrap();
        let results = w.run_to_completion(SimTime::from_secs(60));
        let recorded = results.breakdowns().count();
        let invoked = results.device_stats()[0].invocations();
        assert_eq!(recorded, invoked, "only TPU-served frames are recorded");
        assert!(invoked < 200, "the filter must drop some frames");
        // Mean transmission still reflects full frames, not diluted zeros.
        use microedge_metrics::latency::Phase;
        assert!((results.breakdowns().mean_ms(Phase::Transmission) - 8.0).abs() < 0.2);
    }

    #[test]
    fn source_resolution_scales_preprocessing() {
        use crate::client::SourceResolution;
        let mut w = world(1, Features::all());
        w.admit_stream(
            StreamSpec::builder("vga-cam", "ssd-mobilenet-v2")
                .source_resolution(SourceResolution::new(640, 480))
                .frame_limit(50)
                .build(),
        )
        .unwrap();
        let results = w.run_to_completion(SimTime::from_secs(30));
        let pre = results.breakdowns().mean_ms(Phase::PreProcess);
        // 640×480 walks far fewer pixels than 1080p: ≈ 1.5 + 0.52 ms.
        assert!((pre - 2.02).abs() < 0.05, "got {pre}");
    }

    #[test]
    fn crashed_pod_units_return_only_after_reclamation_poll() {
        let mut w = world(1, Features::all());
        let cam = w.admit_stream(coral_pie("cam", 1_000_000)).unwrap();
        w.run_until(SimTime::from_secs(2));
        let pod = w.pod_of(cam).unwrap();
        w.crash_stream(cam).unwrap();
        // Units still held — the scheduler has not noticed the crash.
        assert_eq!(
            w.scheduler().pool().total_free_units(),
            TpuUnits::ONE - TpuUnits::from_f64(0.35)
        );
        assert!(
            w.admit_stream(coral_pie("replacement", 10)).is_ok(),
            "0.65 free still fits a 0.35 camera"
        );
        assert!(
            w.admit_stream(coral_pie("third", 10)).is_err(),
            "0.30 free does not fit another"
        );
        // The reclamation poll notices the crash and frees the units.
        assert_eq!(w.poll_reclamation(), vec![pod]);
        assert!(w.admit_stream(coral_pie("third", 10)).is_ok());
    }

    #[test]
    fn per_stream_latency_statistics() {
        let mut w = world(1, Features::all());
        let cam = w.admit_stream(coral_pie("cam", 100)).unwrap();
        let results = w.run_to_completion(SimTime::from_secs(30));
        let latency = results.latency(cam).unwrap();
        assert_eq!(latency.count(), 100);
        // One uncontended camera: every frame costs exactly the Fig. 7b
        // total (≈ 39.3 ms).
        assert!((latency.mean() - 39.33).abs() < 0.1, "{}", latency.mean());
        assert!(latency.max().unwrap() < 40.0);
        // Within one frame interval — the latency SLO holds trivially.
        assert!(results.all_within_latency(SimDuration::from_millis_f64(1000.0 / 15.0)));
        assert!(!results.all_within_latency(SimDuration::from_millis(20)));
    }

    #[test]
    fn lost_streams_can_be_restarted_when_capacity_returns() {
        let mut w = world(1, Features::all());
        let a = w.admit_stream(coral_pie("a", 1_000_000)).unwrap();
        let b = w.admit_stream(coral_pie("b", 1_000_000)).unwrap();
        w.run_until(SimTime::from_secs(2));
        // `a` crashes; before reclamation the restart cannot fit.
        w.crash_stream(a).unwrap();
        assert!(matches!(
            w.restart_stream(a),
            Err(DeployError::InsufficientTpu)
        ));
        w.poll_reclamation();
        let a2 = w.restart_stream(a).unwrap();
        assert_ne!(a2, a, "restart is a fresh stream id");
        assert_eq!(w.active_streams(), 2);
        // Restarting an active stream is refused.
        assert!(w.restart_stream(b).is_err());
        w.run_until(SimTime::from_secs(6));
        let results = w.finish(SimTime::from_secs(6));
        assert!(results.report(a2).unwrap().met_fps());
    }

    #[test]
    fn admitted_load_keeps_queues_shallow() {
        // At exactly 1.0 declared and true load the backlog stays bounded
        // by the number of co-resident streams.
        let mut w = world(1, Features::all());
        for i in 0..2 {
            w.admit_stream(
                StreamSpec::builder(&format!("cam-{i}"), "ssd-mobilenet-v2")
                    .frame_limit(600)
                    .start_offset(SimDuration::from_millis(i * 29))
                    .build(),
            )
            .unwrap();
        }
        let results = w.run_to_completion(SimTime::from_secs(60));
        assert!(results.all_met_fps());
        assert!(
            results.max_queue_depths()[0] <= 3,
            "bounded backlog, got {:?}",
            results.max_queue_depths()
        );
    }

    #[test]
    fn understated_units_build_queues_and_violate_the_slo() {
        // The system trusts declared TPU units (paper §2: the input rate is
        // provided by the developer or profiled up front). A pod that lies —
        // declaring 0.2 units while actually generating 0.35 of work — gets
        // admitted five-to-a-TPU and drives it past saturation: the backlog
        // grows with run length and every stream misses 15 FPS.
        let mut w = world(1, Features::all());
        let mut cams = Vec::new();
        for i in 0..5 {
            cams.push(
                w.admit_stream(
                    StreamSpec::builder(&format!("liar-{i}"), "ssd-mobilenet-v2")
                        .units(TpuUnits::from_f64(0.2))
                        .frame_limit(900)
                        .start_offset(SimDuration::from_millis(i * 13))
                        .build(),
                )
                .unwrap(),
            );
        }
        let results = w.run_to_completion(SimTime::from_secs(300));
        // True demand 5 × 0.35 = 1.75 on one TPU: completions cap at ~57 %.
        for cam in cams {
            assert!(
                !results.report(cam).unwrap().met_fps(),
                "an oversubscribed TPU cannot hold the SLO"
            );
        }
        assert!(
            results.max_queue_depths()[0] > 20,
            "backlog grows without bound, got {:?}",
            results.max_queue_depths()
        );
        assert!(results.average_utilization() > 0.99);
    }

    #[test]
    fn drain_migrates_live_streams_with_zero_frame_loss() {
        let mut w = world(2, Features::all());
        let mut cams = Vec::new();
        for i in 0..2 {
            cams.push(
                w.admit_stream(
                    StreamSpec::builder(&format!("cam-{i}"), "ssd-mobilenet-v2")
                        .frame_limit(300)
                        .start_offset(SimDuration::from_millis(i * 29))
                        .build(),
                )
                .unwrap(),
            );
        }
        // Both cameras share TPU 0; TPU 1 is empty.
        assert_eq!(
            w.scheduler().pool().account(TpuId(0)).load(),
            TpuUnits::from_f64(0.7)
        );
        w.run_until(SimTime::from_secs(5));
        let migrated = w.drain_tpu(TpuId(0)).unwrap();
        assert_eq!(migrated.len(), 2);
        let results = w.run_to_completion(SimTime::from_secs(60));
        assert_eq!(results.frames_dropped(), 0, "maintenance loses nothing");
        for cam in cams {
            let r = results.report(cam).unwrap();
            assert_eq!(r.completed(), 300);
            assert!(r.met_fps());
        }
    }

    #[test]
    fn drain_rejects_when_fleet_cannot_absorb() {
        let mut w = world(1, Features::all());
        w.admit_stream(coral_pie("cam", 100)).unwrap();
        assert!(matches!(
            w.drain_tpu(TpuId(0)),
            Err(DeployError::InsufficientTpu)
        ));
        // Still schedulable and still running.
        assert_eq!(w.active_streams(), 1);
        let results = w.run_to_completion(SimTime::from_secs(30));
        assert!(results.all_met_fps());
    }

    #[test]
    fn run_summary_renders_per_stream_rows() {
        let mut w = world(1, Features::all());
        w.admit_stream(coral_pie("report-cam", 50)).unwrap();
        let results = w.run_to_completion(SimTime::from_secs(30));
        let text = results.render_summary();
        assert!(text.contains("report-cam"));
        assert!(text.contains("met"));
        assert!(text.contains("avg TPU utilization"));
        assert!(text.contains("0 frames dropped"));
    }
}
