//! TPU units — MicroEdge's fractional resource metric (paper §4.1).
//!
//! > "TPU unit is the *duty cycle* of inference requests that an application
//! > pod is expected to generate. If an application requires an inference
//! > service that takes *t* time units to complete (including model switching
//! > time), and the inter-arrival period for successive requests is *T*, then
//! > the TPU Unit needed is t ÷ T."
//!
//! Units are stored as integer **micro-units** (1 unit = 1 000 000), so the
//! admission-control arithmetic is exact: `0.35 + 0.35 + 0.30 == 1.0` holds
//! bit-for-bit, and the TPU Units Rule (cumulative load per TPU ≤ 1) can
//! never be violated by floating-point drift.
//!
//! # Examples
//!
//! ```
//! use microedge_core::units::TpuUnits;
//! use microedge_sim::time::SimDuration;
//!
//! // 10 FPS camera, 30 ms service time → 0.3 TPU units (the paper's example).
//! let units = TpuUnits::from_duty_cycle(
//!     SimDuration::from_millis(30),
//!     SimDuration::from_millis(100),
//! );
//! assert_eq!(units, TpuUnits::from_f64(0.3));
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use microedge_sim::time::SimDuration;

/// Micro-units per whole TPU unit.
const SCALE: u64 = 1_000_000;

/// A fractional amount of TPU time, in exact micro-units.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct TpuUnits(u64);

impl TpuUnits {
    /// Zero TPU units.
    pub const ZERO: TpuUnits = TpuUnits(0);
    /// One whole TPU.
    pub const ONE: TpuUnits = TpuUnits(SCALE);

    /// Creates units from raw micro-units (1 000 000 = one TPU).
    #[must_use]
    pub const fn from_micro(micro: u64) -> Self {
        TpuUnits(micro)
    }

    /// Creates units from a float, rounding to the nearest micro-unit.
    ///
    /// # Panics
    ///
    /// Panics if `units` is negative or not finite.
    #[must_use]
    pub fn from_f64(units: f64) -> Self {
        assert!(
            units.is_finite() && units >= 0.0,
            "TPU units must be finite and non-negative, got {units}"
        );
        TpuUnits((units * SCALE as f64).round() as u64)
    }

    /// The paper's defining formula: service time ÷ inter-arrival period,
    /// rounded *up* to the next micro-unit so a declared demand never
    /// understates the true duty cycle.
    ///
    /// # Panics
    ///
    /// Panics if `interarrival` is zero.
    #[must_use]
    pub fn from_duty_cycle(service: SimDuration, interarrival: SimDuration) -> Self {
        assert!(
            !interarrival.is_zero(),
            "inter-arrival period must be non-zero"
        );
        let num = service.as_nanos() as u128 * SCALE as u128;
        let den = interarrival.as_nanos() as u128;
        let units: u64 = num
            .div_ceil(den)
            .try_into()
            .expect("duty-cycle unit demand fits u64");
        TpuUnits(units)
    }

    /// Raw micro-units.
    #[must_use]
    pub const fn as_micro(self) -> u64 {
        self.0
    }

    /// Units as a float.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / SCALE as f64
    }

    /// `true` when zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, other: TpuUnits) -> TpuUnits {
        TpuUnits(self.0.saturating_sub(other.0))
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub fn checked_add(self, other: TpuUnits) -> Option<TpuUnits> {
        self.0.checked_add(other.0).map(TpuUnits)
    }

    /// The smaller of two values.
    #[must_use]
    pub fn min(self, other: TpuUnits) -> TpuUnits {
        TpuUnits(self.0.min(other.0))
    }

    /// How many whole TPUs a demand of this size needs under *integral*
    /// (baseline, non-fractional) allocation: `ceil(units)`.
    #[must_use]
    pub fn whole_tpus_needed(self) -> u32 {
        u32::try_from(self.0.div_ceil(SCALE)).expect("unit counts fit in u32")
    }

    /// The share of `self` that `part` represents, as a float in `[0, 1]`.
    /// Returns 0.0 when `self` is zero.
    #[must_use]
    pub fn fraction_of(self, part: TpuUnits) -> f64 {
        if self.0 == 0 {
            0.0
        } else {
            part.0 as f64 / self.0 as f64
        }
    }
}

impl Add for TpuUnits {
    type Output = TpuUnits;
    fn add(self, rhs: TpuUnits) -> TpuUnits {
        TpuUnits(self.0 + rhs.0)
    }
}

impl AddAssign for TpuUnits {
    fn add_assign(&mut self, rhs: TpuUnits) {
        self.0 += rhs.0;
    }
}

impl Sub for TpuUnits {
    type Output = TpuUnits;
    fn sub(self, rhs: TpuUnits) -> TpuUnits {
        TpuUnits(self.0 - rhs.0)
    }
}

impl SubAssign for TpuUnits {
    fn sub_assign(&mut self, rhs: TpuUnits) {
        self.0 -= rhs.0;
    }
}

impl Sum for TpuUnits {
    fn sum<I: Iterator<Item = TpuUnits>>(iter: I) -> TpuUnits {
        iter.fold(TpuUnits::ZERO, Add::add)
    }
}

impl fmt::Display for TpuUnits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}u", self.as_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_arithmetic() {
        let a = TpuUnits::from_f64(0.35);
        let b = TpuUnits::from_f64(0.35);
        let c = TpuUnits::from_f64(0.30);
        assert_eq!(a + b + c, TpuUnits::ONE);
        assert_eq!(TpuUnits::ONE - a - b, c);
    }

    #[test]
    fn duty_cycle_paper_example() {
        // 30 ms service at 10 FPS → 0.3 units.
        let u =
            TpuUnits::from_duty_cycle(SimDuration::from_millis(30), SimDuration::from_millis(100));
        assert_eq!(u, TpuUnits::from_f64(0.3));
    }

    #[test]
    fn duty_cycle_rounds_up() {
        // 1 ns over a 3 ns period = 0.333… → must round up, never down.
        let u = TpuUnits::from_duty_cycle(SimDuration::from_nanos(1), SimDuration::from_nanos(3));
        assert!(u.as_f64() >= 1.0 / 3.0);
    }

    #[test]
    fn coral_pie_and_bodypix_units() {
        let interval = SimDuration::from_millis_f64(1000.0 / 15.0);
        let coral_pie = TpuUnits::from_duty_cycle(SimDuration::from_nanos(23_333_333), interval);
        assert_eq!(coral_pie, TpuUnits::from_f64(0.35));
        let bodypix = TpuUnits::from_duty_cycle(SimDuration::from_millis(80), interval);
        assert_eq!(bodypix, TpuUnits::from_f64(1.2));
    }

    #[test]
    fn whole_tpus_needed_ceils() {
        assert_eq!(TpuUnits::from_f64(0.35).whole_tpus_needed(), 1);
        assert_eq!(TpuUnits::from_f64(1.0).whole_tpus_needed(), 1);
        assert_eq!(TpuUnits::from_f64(1.2).whole_tpus_needed(), 2);
        assert_eq!(TpuUnits::ZERO.whole_tpus_needed(), 0);
    }

    #[test]
    fn saturating_and_checked_ops() {
        let small = TpuUnits::from_f64(0.1);
        let big = TpuUnits::from_f64(0.9);
        assert_eq!(small.saturating_sub(big), TpuUnits::ZERO);
        assert!(small.checked_add(big).is_some());
        assert!(TpuUnits::from_micro(u64::MAX)
            .checked_add(TpuUnits::from_micro(1))
            .is_none());
    }

    #[test]
    fn fraction_of_for_lbs_weights() {
        let total = TpuUnits::from_f64(0.6);
        let part = TpuUnits::from_f64(0.4);
        assert!((total.fraction_of(part) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(TpuUnits::ZERO.fraction_of(part), 0.0);
    }

    #[test]
    fn ordering_and_min() {
        assert!(TpuUnits::from_f64(0.2) < TpuUnits::from_f64(0.3));
        assert_eq!(
            TpuUnits::from_f64(0.2).min(TpuUnits::from_f64(0.3)),
            TpuUnits::from_f64(0.2)
        );
    }

    #[test]
    fn display() {
        assert_eq!(TpuUnits::from_f64(0.35).to_string(), "0.350u");
        assert_eq!(TpuUnits::ONE.to_string(), "1.000u");
    }

    #[test]
    fn sum_of_units() {
        let total: TpuUnits = [0.1, 0.2, 0.3].iter().map(|&f| TpuUnits::from_f64(f)).sum();
        assert_eq!(total, TpuUnits::from_f64(0.6));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_units_rejected() {
        let _ = TpuUnits::from_f64(-0.1);
    }
}
