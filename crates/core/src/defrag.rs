//! Online defragmentation: swap-cost-budgeted live repacking toward the
//! Martello–Toth L2 bound (see EXPERIMENTS.md, "Online defragmentation").
//!
//! Arrive/depart churn fragments the TPU pool: free capacity survives in
//! total but shatters into slivers spread across many TPUs, so whole-ish
//! placement requests bounce off a fleet that provably has room (the
//! packing benches show bins-used drifting away from the Martello–Toth L2
//! lower bound). Nothing in the admission path ever repacks — admission is
//! a one-time action by design — so repacking has to be a background
//! activity.
//!
//! This module is that activity's *planner*: a deterministic, budgeted
//! greedy pass that picks **donor** TPUs (lightly loaded, so their load is
//! cheap to move and their freed slot is nearly whole), plans each donor's
//! full eviction with best-fit receivers on the capacity index
//! ([`ExtendedScheduler::plan_evict`]), prices the move with the *real*
//! swap-cost model — full parameter transfer at [`TpuSpec::swap_time`]
//! bandwidth plus the co-compiled partial-cache transition from
//! `tpu::cocompile` — and executes only the moves whose recovered
//! contiguous capacity beats their migration-disruption budget.
//!
//! The planner mutates only scheduler state (assignments + pool). The
//! *runtime* consequences — re-seeding each migrated pod's load-balancer
//! weights, re-syncing device cache plans, and arming the swap-seq/epoch
//! guard so in-flight frames are never corrupted — are applied by
//! `World::defrag_epoch` from the [`ExecutedMove`]s returned here, and the
//! whole cycle runs at epoch barriers inside `ShardedWorld`, where every
//! shard is quiescent.
//!
//! # Examples
//!
//! ```
//! use microedge_core::defrag::DefragConfig;
//! use microedge_core::units::TpuUnits;
//!
//! let config = DefragConfig::default();
//! assert_eq!(config.interval_epochs, 4);
//! assert!(config.min_gain > TpuUnits::ZERO);
//! ```

use std::collections::BTreeSet;

use microedge_metrics::defrag::DefragStats;
use microedge_orch::pod::PodId;
use microedge_sim::time::SimDuration;
use microedge_tpu::cocompile::CoCompiler;
use microedge_tpu::device::TpuId;
use microedge_tpu::spec::TpuSpec;

use crate::pool::TpuPool;
use crate::scheduler::{EvictPlan, ExtendedScheduler};
use crate::units::TpuUnits;

/// Tuning knobs for the background defragmenter. All thresholds are exact
/// (integer micro-units, integer nanoseconds), so identical configs yield
/// identical plans on every run and worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefragConfig {
    /// Run a planning cycle every this many epoch barriers (sharded runs)
    /// or `defrag_epoch` calls (plain worlds).
    pub interval_epochs: u32,
    /// Ceiling on the summed migration disruption one cycle may incur.
    pub cycle_budget: SimDuration,
    /// Ceiling on donor evictions per cycle, independent of budget.
    pub max_moves_per_cycle: u32,
    /// Donors carrying less recoverable load than this are not worth a
    /// move (the freed slot barely grows).
    pub min_gain: TpuUnits,
    /// Exchange rate: a move is executed only if its disruption per whole
    /// recovered unit stays at or below this.
    pub max_cost_per_unit: SimDuration,
}

impl Default for DefragConfig {
    /// Conservative defaults: plan every 4 epochs (2 s of simulated time at
    /// the default 500 ms barrier), spend at most 5 s of modeled disruption
    /// per cycle across at most 8 moves, ignore donors freeing under
    /// 0.05 units, and never pay more than 30 s per recovered unit.
    fn default() -> Self {
        DefragConfig {
            interval_epochs: 4,
            cycle_budget: SimDuration::from_secs(5),
            max_moves_per_cycle: 8,
            min_gain: TpuUnits::from_micro(50_000),
            max_cost_per_unit: SimDuration::from_secs(30),
        }
    }
}

/// One executed donor eviction, as reported back to the runtime layer: the
/// scheduler-level plan plus its priced disruption. The runtime replays
/// `plan.moves` into each migrated pod's LBS, re-syncs the donor device,
/// and holds every migrated stream under a swap guard for `cost`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutedMove {
    /// The eviction that was applied to the scheduler.
    pub plan: EvictPlan,
    /// Modeled migration disruption: the busiest receiver's parameter swap
    /// plus its co-compile transition and first-invocation uncached stream.
    pub cost: SimDuration,
}

/// Candidate donors in planning order: available TPUs carrying load, with
/// the *least-loaded* (most free) first. A lightly loaded TPU maximizes
/// the fragmentation score — it pins an almost-whole contiguous slot at
/// the cheapest migration cost — while a fully loaded TPU is already
/// perfectly packed and is never a donor.
///
/// Pure and read-only (shared by the Criterion planner microbench); order
/// comes from the capacity index, so it is deterministic for a given pool
/// state.
#[must_use]
pub fn donor_candidates(pool: &TpuPool) -> Vec<TpuId> {
    pool.tpus_by_free_descending(TpuUnits::ZERO)
        .filter(|&tpu| {
            let account = pool.account(tpu);
            !account.load().is_zero() && !account.free_units().is_zero()
        })
        .collect()
}

/// Prices an eviction plan with the real swap-cost model. Receivers absorb
/// the donor's pods in parallel (each TPU has its own USB path), so the
/// move's disruption is the *busiest* receiver's bill: newly transferred
/// parameter bytes at swap bandwidth, plus the Edge TPU co-compile of its
/// post-move resident set, plus the first-invocation stream of whatever
/// that set leaves uncached. A plan that loads no new bytes anywhere (all
/// models already resident on every receiver) is free — only LBS weights
/// change.
///
/// # Panics
///
/// Panics if a receiver's post-move resident set contains a model the
/// scheduler's catalog does not know (plans are built from the same
/// catalog, so this indicates scheduler corruption).
#[must_use]
pub fn move_cost(plan: &EvictPlan, sched: &ExtendedScheduler, spec: TpuSpec) -> SimDuration {
    let compiler = CoCompiler::new(spec);
    let mut worst = SimDuration::ZERO;
    for (&receiver, &new_bytes) in &plan.newly_loaded {
        let residents = plan
            .residents_after
            .get(&receiver)
            .expect("every receiver with new bytes has a post-move resident set");
        let profiles: Vec<_> = residents
            .iter()
            .map(|model| sched.catalog().expect(model).clone())
            .collect();
        let cache_plan = compiler
            .plan(&profiles)
            .expect("post-move residents are distinct");
        let uncached = cache_plan.total_param_bytes() - cache_plan.cached_bytes();
        let cost = spec.swap_time(new_bytes)
            + compiler.compile_time(&cache_plan)
            + spec.stream_time(uncached);
        if cost > worst {
            worst = cost;
        }
    }
    worst
}

/// Runs one budgeted planning cycle against the scheduler, executing every
/// move that clears all gates and accounting both executions and skips in
/// `stats`. Donors are visited least-loaded first; each donor replans
/// against the pool state its predecessors left behind, so a cycle's moves
/// compose without double-booking receivers.
///
/// `frozen` lists pods that must not migrate this cycle — the runtime
/// passes pods whose stream is mid-swap or not serving, which is the same
/// swap-seq/epoch guard the failure-recovery path uses.
///
/// Gates, in order, with the stat bumped when a donor is skipped:
/// 1. recoverable load ≥ `min_gain` (`skipped_gain`);
/// 2. the rest of the fleet has volume for the donor's load
///    (`skipped_unplaceable` — cheap pre-check before planning);
/// 3. no resident pod is frozen (`skipped_guard`);
/// 4. best-fit receiver planning succeeds (`skipped_unplaceable`);
/// 5. the move fits the cycle's remaining budget (`skipped_budget`);
/// 6. disruption per recovered unit ≤ `max_cost_per_unit` (`skipped_cost`).
pub fn run_cycle(
    sched: &mut ExtendedScheduler,
    frozen: &BTreeSet<PodId>,
    config: &DefragConfig,
    stats: &mut DefragStats,
) -> Vec<ExecutedMove> {
    stats.cycles += 1;
    let spec = TpuSpec::coral_usb();
    let mut executed: Vec<ExecutedMove> = Vec::new();
    let mut budget = config.cycle_budget;
    for donor in donor_candidates(sched.pool()) {
        if executed.len() >= usize::try_from(config.max_moves_per_cycle).expect("u32 fits usize") {
            break;
        }
        let account = sched.pool().account(donor);
        // Earlier moves this cycle may have filled this candidate (it was a
        // best-fit receiver) or the chaos layer may have failed it; a full
        // or unavailable TPU is no longer a donor at all.
        if !account.is_available() || account.load().is_zero() || account.free_units().is_zero() {
            continue;
        }
        let gain = account.load();
        if gain < config.min_gain {
            stats.skipped_gain += 1;
            continue;
        }
        let elsewhere = TpuUnits::from_micro(sched.pool().capacity_summary().total_free_micro)
            .saturating_sub(account.free_units());
        if elsewhere < gain {
            stats.skipped_unplaceable += 1;
            continue;
        }
        if sched
            .pods_using(donor)
            .iter()
            .any(|pod| frozen.contains(pod))
        {
            stats.skipped_guard += 1;
            continue;
        }
        let Ok(plan) = sched.plan_evict(donor) else {
            stats.skipped_unplaceable += 1;
            continue;
        };
        let cost = move_cost(&plan, sched, spec);
        if cost > budget {
            stats.skipped_budget += 1;
            continue;
        }
        // cost / (gain / SCALE) > max_cost_per_unit, cross-multiplied so the
        // comparison is exact in integers.
        if u128::from(cost.as_nanos()) * u128::from(TpuUnits::ONE.as_micro())
            > u128::from(config.max_cost_per_unit.as_nanos()) * u128::from(plan.recovered_micro)
        {
            stats.skipped_cost += 1;
            continue;
        }
        sched.apply_evict(&plan);
        budget = budget.saturating_sub(cost);
        stats.moves += 1;
        stats.pods_migrated += plan.moves.len() as u64;
        stats.units_recovered_micro += plan.recovered_micro;
        stats.disruption_ns += cost.as_nanos();
        executed.push(ExecutedMove { plan, cost });
    }
    executed
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    use microedge_cluster::topology::ClusterBuilder;
    use microedge_models::catalog::Catalog;
    use microedge_orch::lifecycle::Orchestrator;
    use microedge_orch::pod::{PodSpec, ResourceRequest, EXT_MODEL, EXT_TPU_UNITS};

    use crate::config::Features;

    fn setup(tpus: u32) -> (Orchestrator, ExtendedScheduler) {
        let cluster = ClusterBuilder::new().trpis(tpus).vrpis(2).build();
        let sched = ExtendedScheduler::new(&cluster, Catalog::builtin(), Features::all());
        (Orchestrator::new(cluster), sched)
    }

    fn pod(name: &str, units: &str) -> PodSpec {
        PodSpec::builder(name, "coral-pie:latest")
            .resources(ResourceRequest::camera_default())
            .extension(EXT_MODEL, "mobilenet-v1")
            .extension(EXT_TPU_UNITS, units)
            .build()
    }

    /// FirstFit fills t0 and t1 to 0.9 each, leaving t2/t3 idle — both
    /// loaded TPUs are donor candidates and one move fully empties one.
    fn fragmented(tpus: u32) -> (Orchestrator, ExtendedScheduler, Vec<PodId>) {
        let (mut orch, mut sched) = setup(tpus);
        let mut pods = Vec::new();
        for (name, units) in [("a", "0.6"), ("b", "0.3"), ("c", "0.6"), ("d", "0.3")] {
            let d = sched.deploy(&mut orch, pod(name, units)).expect("seed pod");
            pods.push(d.pod());
        }
        (orch, sched, pods)
    }

    #[test]
    fn cycle_empties_a_donor() {
        let (_orch, mut sched, _) = fragmented(4);
        assert!(
            !donor_candidates(sched.pool()).is_empty(),
            "fragmented pool offers donors"
        );
        let mut stats = DefragStats::default();
        let config = DefragConfig {
            max_moves_per_cycle: 1,
            ..DefragConfig::default()
        };
        let moves = run_cycle(&mut sched, &BTreeSet::new(), &config, &mut stats);
        assert_eq!(moves.len(), 1, "one move allowed, one executed");
        let donor = moves[0].plan.donor;
        assert!(
            sched.pool().account(donor).load().is_zero(),
            "executed donor is fully emptied"
        );
        assert_eq!(stats.moves, 1);
        assert_eq!(stats.units_recovered_micro, moves[0].plan.recovered_micro);
        assert!(moves[0].cost > SimDuration::ZERO, "real moves cost time");
    }

    #[test]
    fn frozen_pods_pin_their_donor() {
        let (_orch, mut sched, pods) = fragmented(4);
        let frozen: BTreeSet<PodId> = pods.into_iter().collect();
        let mut stats = DefragStats::default();
        let moves = run_cycle(&mut sched, &frozen, &DefragConfig::default(), &mut stats);
        assert!(moves.is_empty(), "every donor hosts a frozen pod");
        assert!(stats.skipped_guard > 0);
        assert_eq!(stats.moves, 0);
    }

    #[test]
    fn zero_budget_blocks_every_move() {
        let (_orch, mut sched, _) = fragmented(4);
        let mut stats = DefragStats::default();
        let config = DefragConfig {
            cycle_budget: SimDuration::ZERO,
            ..DefragConfig::default()
        };
        let moves = run_cycle(&mut sched, &BTreeSet::new(), &config, &mut stats);
        assert!(moves.is_empty());
        assert!(stats.skipped_budget > 0, "budget gate fired");
    }

    #[test]
    fn cost_gate_rejects_expensive_moves() {
        let (_orch, mut sched, _) = fragmented(4);
        let mut stats = DefragStats::default();
        let config = DefragConfig {
            max_cost_per_unit: SimDuration::from_nanos(1),
            ..DefragConfig::default()
        };
        let moves = run_cycle(&mut sched, &BTreeSet::new(), &config, &mut stats);
        assert!(moves.is_empty());
        assert!(stats.skipped_cost > 0, "exchange-rate gate fired");
    }

    #[test]
    fn conservation_across_a_cycle() {
        let (mut orch, mut sched) = setup(6);
        for (i, units) in ["0.6", "0.3", "0.6", "0.3", "0.5", "0.2"]
            .iter()
            .enumerate()
        {
            sched
                .deploy(&mut orch, pod(&format!("p{i}"), units))
                .expect("seed pod");
        }
        let before: TpuUnits = sched.pool().accounts().iter().map(|a| a.load()).sum();
        let mut stats = DefragStats::default();
        let moves = run_cycle(
            &mut sched,
            &BTreeSet::new(),
            &DefragConfig::default(),
            &mut stats,
        );
        assert!(!moves.is_empty(), "churned pool yields at least one move");
        let after: TpuUnits = sched.pool().accounts().iter().map(|a| a.load()).sum();
        assert_eq!(before, after, "defrag conserves total assigned units");
    }

    #[test]
    fn move_cost_is_free_when_no_bytes_move() {
        let (_orch, sched) = setup(2);
        let plan = EvictPlan {
            donor: TpuId(0),
            recovered_micro: 300_000,
            moves: Vec::new(),
            newly_loaded: BTreeMap::new(),
            residents_after: BTreeMap::new(),
        };
        assert_eq!(
            move_cost(&plan, &sched, TpuSpec::coral_usb()),
            SimDuration::ZERO
        );
    }

    #[test]
    fn donors_are_partially_loaded_only() {
        let (mut orch, mut sched) = setup(3);
        // t0 full (1.0), t1 partial (0.4), t2 idle.
        sched.deploy(&mut orch, pod("full", "1.0")).expect("pod");
        sched.deploy(&mut orch, pod("part", "0.4")).expect("pod");
        let donors = donor_candidates(sched.pool());
        assert_eq!(donors.len(), 1, "only the partial TPU qualifies");
        let account = sched.pool().account(donors[0]);
        assert!(!account.load().is_zero());
        assert!(!account.free_units().is_zero());
    }
}
