//! The extended scheduler (paper §3.1, §4) and the reclamation component.
//!
//! The deployment workflow mirrors the paper's control-plane steps:
//!
//! 1. the client submits a pod spec (Yaml) carrying the two MicroEdge
//!    knobs — `Model` and `TPU Units`;
//! 2. K3s (the [`Orchestrator`]) handles CPU/memory and produces candidate
//!    nodes; the extended scheduler allocates TPU resources via the
//!    admission policy (Algorithm 1);
//! 3. on success the pod is bound and the models are loaded (co-compiled)
//!    on the chosen TPUs;
//! 4. the pod's LBS is seeded with the partitioning weights;
//! 5. the reclamation component later returns the TPU units when the pod
//!    terminates, dropping model references for lazy eviction.
//!
//! Admission is a **one-time action**: the data plane never consults the
//! control plane again for the lifetime of the pod.
//!
//! ## Multi-model pipelines
//!
//! The paper's §8 lists "data plane optimization for pipelines that involve
//! multiple models" as future work; this implementation supports it
//! natively. A pod may request a *vector* of `(model, units)` stages by
//! comma-separating both extension fields:
//!
//! ```yaml
//! extensions:
//!   microedge.io/model: "ssd-mobilenet-v2,mobilenet-v1"
//!   microedge.io/tpu-units: "0.35,0.215"
//! ```
//!
//! Each stage is admitted under Algorithm 1 in order (with rollback if a
//! later stage cannot be placed) and receives its own load-balancer
//! weights.

use std::collections::BTreeMap;
use std::fmt;

use microedge_cluster::topology::Cluster;
use microedge_models::catalog::Catalog;
use microedge_models::profile::ModelId;
use microedge_orch::lifecycle::{OrchError, Orchestrator};
use microedge_orch::pod::{PodId, PodPhase, PodSpec, EXT_MODEL, EXT_TPU_UNITS};
use microedge_tpu::device::TpuId;
use microedge_tpu::spec::TpuSpec;

use crate::admission::{AdmissionPolicy, BestFit, FirstFit, PlanBuffer};
use crate::config::{DataPlaneConfig, Features};
use crate::lbs::LbService;
use crate::pool::{Allocation, TpuPool};
use crate::units::TpuUnits;

/// One stage of a pod's TPU request, parsed from the spec's extension
/// fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpuRequest {
    model: ModelId,
    units: TpuUnits,
}

impl TpuRequest {
    /// Creates a request directly.
    #[must_use]
    pub fn new(model: ModelId, units: TpuUnits) -> Self {
        TpuRequest { model, units }
    }

    /// The requested model.
    #[must_use]
    pub fn model(&self) -> &ModelId {
        &self.model
    }

    /// The requested fractional TPU amount.
    #[must_use]
    pub fn units(&self) -> TpuUnits {
        self.units
    }

    /// Extracts the TPU request stages from a pod spec's extensions.
    /// Returns `Ok(empty)` for pods with no TPU needs. Both fields accept
    /// comma-separated lists of equal length (multi-model pipelines).
    ///
    /// # Errors
    ///
    /// [`DeployError::MalformedRequest`] when only one of the two knobs is
    /// present, the list lengths differ, or a units value does not parse.
    pub fn from_spec(spec: &PodSpec) -> Result<Vec<TpuRequest>, DeployError> {
        match (spec.extension(EXT_MODEL), spec.extension(EXT_TPU_UNITS)) {
            (None, None) => Ok(Vec::new()),
            (Some(models), Some(raw_units)) => {
                let model_list: Vec<&str> = models.split(',').map(str::trim).collect();
                let unit_list: Vec<&str> = raw_units.split(',').map(str::trim).collect();
                if model_list.len() != unit_list.len() {
                    return Err(DeployError::MalformedRequest(format!(
                        "{} models but {} units values",
                        model_list.len(),
                        unit_list.len()
                    )));
                }
                model_list
                    .iter()
                    .zip(&unit_list)
                    .map(|(model, raw)| {
                        if model.is_empty() {
                            return Err(DeployError::MalformedRequest(
                                "empty model name in list".to_owned(),
                            ));
                        }
                        let parsed: f64 = raw.parse().map_err(|_| {
                            DeployError::MalformedRequest(format!(
                                "tpu-units `{raw}` is not a number"
                            ))
                        })?;
                        if !parsed.is_finite() || parsed <= 0.0 {
                            return Err(DeployError::MalformedRequest(format!(
                                "tpu-units must be positive, got {raw}"
                            )));
                        }
                        Ok(TpuRequest::new(
                            ModelId::new(model),
                            TpuUnits::from_f64(parsed),
                        ))
                    })
                    .collect()
            }
            (Some(_), None) => Err(DeployError::MalformedRequest(
                "model specified without tpu-units".to_owned(),
            )),
            (None, Some(_)) => Err(DeployError::MalformedRequest(
                "tpu-units specified without model".to_owned(),
            )),
        }
    }
}

/// Why a deployment failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployError {
    /// K3s-level failure (CPU/memory, selectors, anti-affinity, naming).
    Orch(OrchError),
    /// Admission control could not satisfy the TPU request — the pod
    /// creation request is rejected (paper §4.2).
    InsufficientTpu,
    /// The requested model is not in the catalog.
    UnknownModel(ModelId),
    /// The extension fields were inconsistent.
    MalformedRequest(String),
    /// The referenced stream does not exist (or was already removed).
    UnknownStream(u64),
    /// The referenced stream exists but is not in a state that permits the
    /// operation (e.g. restarting a stream that is still active).
    InvalidStreamState(u64, &'static str),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::Orch(e) => write!(f, "orchestrator: {e}"),
            DeployError::InsufficientTpu => f.write_str("insufficient TPU resources"),
            DeployError::UnknownModel(m) => write!(f, "unknown model {m}"),
            DeployError::MalformedRequest(msg) => write!(f, "malformed request: {msg}"),
            DeployError::UnknownStream(id) => write!(f, "unknown stream {id}"),
            DeployError::InvalidStreamState(id, state) => {
                write!(f, "stream {id} is {state}")
            }
        }
    }
}

impl std::error::Error for DeployError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeployError::Orch(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<OrchError> for DeployError {
    fn from(e: OrchError) -> Self {
        DeployError::Orch(e)
    }
}

/// One pipeline stage's placement: the model and its TPU allocations.
pub type StagePlacement = (ModelId, Vec<Allocation>);

/// The TPU resources granted to one pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageGrant {
    model: ModelId,
    allocations: Vec<Allocation>,
    newly_loaded: Vec<TpuId>,
}

impl StageGrant {
    /// The stage's model.
    #[must_use]
    pub fn model(&self) -> &ModelId {
        &self.model
    }

    /// The stage's TPU allocations.
    #[must_use]
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocations
    }

    /// TPUs on which the model was newly loaded (co-compilations).
    #[must_use]
    pub fn newly_loaded(&self) -> &[TpuId] {
        &self.newly_loaded
    }

    /// The LBS configuration for this stage.
    ///
    /// # Panics
    ///
    /// Panics if the stage has no allocations (cannot happen for grants
    /// produced by the scheduler).
    #[must_use]
    pub fn lbs(&self) -> LbService {
        LbService::from_allocations(&self.allocations)
    }
}

/// The result of a successful deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deployment {
    pod: PodId,
    stages: Vec<StageGrant>,
    control_rpcs: u32,
}

impl Deployment {
    /// The created pod.
    #[must_use]
    pub fn pod(&self) -> PodId {
        self.pod
    }

    /// Grants per pipeline stage, in request order (empty for TPU-less
    /// pods; exactly one for ordinary single-model pods).
    #[must_use]
    pub fn stages(&self) -> &[StageGrant] {
        &self.stages
    }

    /// The first stage's allocations — the whole allocation set for
    /// single-model pods (empty for TPU-less pods).
    #[must_use]
    pub fn allocations(&self) -> &[Allocation] {
        self.stages.first().map_or(&[], |s| s.allocations())
    }

    /// All TPUs on which any stage's model was newly loaded.
    #[must_use]
    pub fn newly_loaded(&self) -> Vec<TpuId> {
        let mut all: Vec<TpuId> = self
            .stages
            .iter()
            .flat_map(|s| s.newly_loaded().iter().copied())
            .collect();
        all.sort();
        all.dedup();
        all
    }

    /// `true` when any co-compilation was triggered.
    #[must_use]
    pub fn cocompiled(&self) -> bool {
        self.stages.iter().any(|s| !s.newly_loaded().is_empty())
    }

    /// Extra control-plane RPCs performed over the native launch path
    /// (model `Load` calls plus the LBS configuration push) — the source of
    /// the Fig. 7a overhead.
    #[must_use]
    pub fn control_rpcs(&self) -> u32 {
        self.control_rpcs
    }

    /// The LBS configuration for the first stage.
    ///
    /// # Panics
    ///
    /// Panics if the deployment has no TPU allocations.
    #[must_use]
    pub fn lbs(&self) -> LbService {
        self.stages
            .first()
            .expect("deployment has at least one stage")
            .lbs()
    }
}

#[derive(Debug, Clone)]
struct PodAssignment {
    entries: Vec<StagePlacement>,
    /// Full-rate per-stage demand, before any degradation scaling.
    full: Vec<(ModelId, TpuUnits)>,
    /// Current degradation denominator (1 = full rate).
    den: u32,
}

impl PodAssignment {
    /// Requests reproducing the pod's demand at denominator `den`.
    fn requests_at(&self, den: u32) -> Vec<TpuRequest> {
        self.full
            .iter()
            .map(|(model, units)| TpuRequest::new(model.clone(), scale_units(*units, den)))
            .collect()
    }
}

/// Divides a stage demand by a degradation denominator, keeping at least
/// one micro-unit so a degraded stage never becomes free.
fn scale_units(units: TpuUnits, den: u32) -> TpuUnits {
    if den <= 1 {
        units
    } else {
        TpuUnits::from_micro((units.as_micro() / u64::from(den)).max(1))
    }
}

/// MicroEdge's extension of the K3s control plane.
pub struct ExtendedScheduler {
    pool: TpuPool,
    catalog: Catalog,
    features: Features,
    dp: DataPlaneConfig,
    policy: Box<dyn AdmissionPolicy>,
    assignments: BTreeMap<PodId, PodAssignment>,
    /// Reused across every admission decision (zero-alloc planning).
    plan_buffer: PlanBuffer,
}

impl fmt::Debug for ExtendedScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExtendedScheduler")
            .field("pool", &self.pool)
            .field("features", &self.features)
            .field("policy", &self.policy.name())
            .field("assignments", &self.assignments.len())
            .finish()
    }
}

impl ExtendedScheduler {
    /// Creates a scheduler over the TPUs of `cluster` with an explicit
    /// admission policy.
    #[must_use]
    pub fn with_policy(
        cluster: &Cluster,
        catalog: Catalog,
        features: Features,
        policy: Box<dyn AdmissionPolicy>,
    ) -> Self {
        ExtendedScheduler {
            pool: TpuPool::from_cluster(cluster, TpuSpec::coral_usb()),
            catalog,
            features,
            dp: DataPlaneConfig::calibrated(),
            policy,
            assignments: BTreeMap::new(),
            plan_buffer: PlanBuffer::new(),
        }
    }

    /// Creates the shipped configuration: First-Fit admission.
    #[must_use]
    pub fn new(cluster: &Cluster, catalog: Catalog, features: Features) -> Self {
        Self::with_policy(cluster, catalog, features, Box::new(FirstFit::new()))
    }

    /// The scheduler-side TPU fleet state.
    #[must_use]
    pub fn pool(&self) -> &TpuPool {
        &self.pool
    }

    /// The model catalog the scheduler resolves requests against.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The enabled control-plane features.
    #[must_use]
    pub fn features(&self) -> Features {
        self.features
    }

    /// The data-plane calibration used for profiling helpers.
    #[must_use]
    pub fn data_plane(&self) -> DataPlaneConfig {
        self.dp
    }

    /// Plans every stage against a scratch copy of the pool, committing
    /// stage-by-stage so later stages see earlier grants. Returns the
    /// per-stage plans without touching real state.
    ///
    /// Single-stage requests — every plain camera pod — plan directly
    /// against the live pool: planning never mutates it, so no scratch is
    /// needed, and cloning a multi-thousand-TPU pool per admission is what
    /// dominated large fleet sweeps.
    fn plan_stages(&mut self, requests: &[TpuRequest]) -> Result<Vec<StagePlacement>, DeployError> {
        if let [request] = requests {
            let profile = self
                .catalog
                .get(request.model())
                .ok_or_else(|| DeployError::UnknownModel(request.model().clone()))?;
            if !self.policy.plan_into(
                &self.pool,
                profile,
                request.units(),
                self.features,
                &mut self.plan_buffer,
            ) {
                return Err(DeployError::InsufficientTpu);
            }
            return Ok(vec![(
                request.model().clone(),
                self.plan_buffer.allocations().to_vec(),
            )]);
        }
        let mut scratch = self.pool.clone();
        let mut plans = Vec::with_capacity(requests.len());
        for request in requests {
            let profile = self
                .catalog
                .get(request.model())
                .ok_or_else(|| DeployError::UnknownModel(request.model().clone()))?
                .clone();
            if !self.policy.plan_into(
                &scratch,
                &profile,
                request.units(),
                self.features,
                &mut self.plan_buffer,
            ) {
                return Err(DeployError::InsufficientTpu);
            }
            let allocations = self.plan_buffer.allocations().to_vec();
            scratch.commit(&profile, &allocations);
            plans.push((request.model().clone(), allocations));
        }
        Ok(plans)
    }

    /// Deploys an application pod: TPU admission first (all stages, with
    /// rollback), then the K3s bind.
    ///
    /// # Errors
    ///
    /// See [`DeployError`]; on any error no state is changed (the pod is
    /// not created and no TPU units are reserved).
    pub fn deploy(
        &mut self,
        orch: &mut Orchestrator,
        spec: PodSpec,
    ) -> Result<Deployment, DeployError> {
        self.deploy_scaled(orch, spec, 1)
    }

    /// Deploys like [`ExtendedScheduler::deploy`], but admits every stage at
    /// `1/den` of its declared TPU demand — the graceful-degradation entry
    /// point. The full-rate demand is remembered so the pod can later be
    /// [rescaled](ExtendedScheduler::rescale) back up (or further down).
    ///
    /// # Errors
    ///
    /// See [`DeployError`]; on any error no state is changed.
    pub fn deploy_scaled(
        &mut self,
        orch: &mut Orchestrator,
        spec: PodSpec,
        den: u32,
    ) -> Result<Deployment, DeployError> {
        let full_requests = TpuRequest::from_spec(&spec)?;
        if full_requests.is_empty() {
            // No TPU needs — the native K3s path.
            let pod = orch.create_pod(spec)?;
            return Ok(Deployment {
                pod,
                stages: Vec::new(),
                control_rpcs: 0,
            });
        }
        let full: Vec<(ModelId, TpuUnits)> = full_requests
            .iter()
            .map(|r| (r.model().clone(), r.units()))
            .collect();
        let requests: Vec<TpuRequest> = full_requests
            .iter()
            .map(|r| TpuRequest::new(r.model().clone(), scale_units(r.units(), den)))
            .collect();
        let plans = self.plan_stages(&requests)?;

        // Bind through K3s before committing TPU state, so an orchestration
        // failure leaves the pool untouched.
        let pod = orch.create_pod(spec)?;
        let mut stages = Vec::with_capacity(plans.len());
        let mut load_rpcs = 0;
        for (model, allocations) in &plans {
            let profile = self.catalog.expect(model).clone();
            let newly_loaded = self.pool.commit(&profile, allocations);
            load_rpcs += u32::try_from(newly_loaded.len()).expect("loaded-model count fits u32");
            stages.push(StageGrant {
                model: model.clone(),
                allocations: allocations.clone(),
                newly_loaded,
            });
        }
        self.assignments.insert(
            pod,
            PodAssignment {
                entries: plans,
                full,
                den,
            },
        );
        Ok(Deployment {
            pod,
            stages,
            // One Load RPC per newly loaded model instance, plus one LBS
            // configuration push for the pod.
            control_rpcs: load_rpcs + 1,
        })
    }

    /// Deletes a pod and immediately returns its TPU units.
    ///
    /// # Errors
    ///
    /// Propagates orchestrator errors (e.g. unknown pod).
    pub fn teardown(&mut self, orch: &mut Orchestrator, pod: PodId) -> Result<(), DeployError> {
        orch.delete_pod(pod)?;
        self.release_assignment(pod);
        Ok(())
    }

    /// The reclamation component (paper §3.1 step ⑤): polls pod status and
    /// returns the TPU units of every terminated pod that still holds an
    /// assignment. Returns the pods reclaimed.
    pub fn reclaim_terminated(&mut self, orch: &Orchestrator) -> Vec<PodId> {
        let dead: Vec<PodId> = self
            .assignments
            .keys()
            .filter(|&&pod| orch.phase(pod) == Some(PodPhase::Terminated))
            .copied()
            .collect();
        for &pod in &dead {
            self.release_assignment(pod);
        }
        dead
    }

    /// The models that should be resident on `tpu`, in co-compilation
    /// priority order — what the data plane loads into the device.
    #[must_use]
    pub fn resident_models(&self, tpu: TpuId) -> Vec<ModelId> {
        self.pool.account(tpu).live_models()
    }

    /// Allocations currently held by `pod` across all stages (flattened),
    /// if any.
    #[must_use]
    pub fn assignment(&self, pod: PodId) -> Option<Vec<Allocation>> {
        self.assignments.get(&pod).map(|a| {
            a.entries
                .iter()
                .flat_map(|(_, allocs)| allocs.iter().copied())
                .collect()
        })
    }

    /// Per-stage assignment of `pod`, if any.
    #[must_use]
    pub fn stage_assignment(&self, pod: PodId) -> Option<&[StagePlacement]> {
        self.assignments.get(&pod).map(|a| a.entries.as_slice())
    }

    /// Fails a TPU and re-admits every pod that was using it, in pod order.
    /// Pods whose demand no longer fits anywhere are returned in the `lost`
    /// list and keep running **without** TPU service (their streams must be
    /// torn down by the caller).
    ///
    /// This implements the "support for failure recovery" extension the
    /// paper lists as future work (§8).
    ///
    /// A pod that already terminated but has not yet been reclaimed (the
    /// reclamation component is a poller) is re-placed like any other —
    /// mirroring the real system, where the scheduler cannot distinguish a
    /// dead pod from a live one until the next poll; the next
    /// [`ExtendedScheduler::reclaim_terminated`] frees it.
    pub fn handle_tpu_failure(&mut self, tpu: TpuId) -> FailureRecovery {
        self.pool.fail(tpu);
        let affected = self.pods_using(tpu);
        let mut recovered = Vec::new();
        let mut lost = Vec::new();
        for pod in affected {
            let assignment = self
                .assignments
                .remove(&pod)
                .expect("affected pod has an assignment");
            for (model, allocs) in &assignment.entries {
                self.pool.release(model, allocs);
            }
            let requests = assignment.requests_at(assignment.den);
            match self.plan_stages(&requests) {
                Ok(plans) => {
                    // Model loads on distinct TPUs proceed in parallel; the
                    // swap-in latency is bounded by the busiest device.
                    let mut per_tpu: BTreeMap<TpuId, u64> = BTreeMap::new();
                    for (model, allocs) in &plans {
                        let profile = self.catalog.expect(model).clone();
                        for loaded in self.pool.commit(&profile, allocs) {
                            *per_tpu.entry(loaded).or_insert(0) += profile.param_bytes();
                        }
                    }
                    let swap_bytes = per_tpu.values().copied().max().unwrap_or(0);
                    self.assignments.insert(
                        pod,
                        PodAssignment {
                            entries: plans.clone(),
                            full: assignment.full,
                            den: assignment.den,
                        },
                    );
                    recovered.push(RecoveredPod {
                        pod,
                        plans,
                        swap_bytes,
                    });
                }
                Err(_) => lost.push(pod),
            }
        }
        FailureRecovery { recovered, lost }
    }

    /// Fails a TPU *without* attempting recovery — the no-heal baseline.
    /// Every pod that held an allocation on the TPU has its entire
    /// assignment released and is returned (in pod order) for the caller to
    /// tear down.
    pub fn fail_tpu_releasing(&mut self, tpu: TpuId) -> Vec<PodId> {
        self.pool.fail(tpu);
        let affected = self.pods_using(tpu);
        for &pod in &affected {
            self.release_assignment(pod);
        }
        affected
    }

    /// Returns a previously failed TPU to service (idempotent).
    pub fn restore_tpu(&mut self, tpu: TpuId) {
        self.pool.restore(tpu);
    }

    /// The degradation denominator `pod` is currently admitted at (1 =
    /// full rate), if it holds an assignment.
    #[must_use]
    pub fn assignment_denominator(&self, pod: PodId) -> Option<u32> {
        self.assignments.get(&pod).map(|a| a.den)
    }

    /// Re-admits `pod` at `1/new_den` of its full-rate demand: the current
    /// allocations are released, every stage is re-planned at the new
    /// scale, and the plans are committed. Returns the new per-stage
    /// placements.
    ///
    /// # Errors
    ///
    /// [`DeployError::Orch`] with [`OrchError::UnknownPod`] when the pod
    /// holds no assignment; [`DeployError::InsufficientTpu`] when the new
    /// scale does not fit — in that case the original assignment is
    /// restored untouched.
    pub fn rescale(
        &mut self,
        pod: PodId,
        new_den: u32,
    ) -> Result<Vec<StagePlacement>, DeployError> {
        let assignment = self
            .assignments
            .remove(&pod)
            .ok_or(DeployError::Orch(OrchError::UnknownPod(pod)))?;
        for (model, allocs) in &assignment.entries {
            self.pool.release(model, allocs);
        }
        let requests = assignment.requests_at(new_den);
        match self.plan_stages(&requests) {
            Ok(plans) => {
                for (model, allocs) in &plans {
                    let profile = self.catalog.expect(model).clone();
                    self.pool.commit(&profile, allocs);
                }
                self.assignments.insert(
                    pod,
                    PodAssignment {
                        entries: plans.clone(),
                        full: assignment.full,
                        den: new_den,
                    },
                );
                Ok(plans)
            }
            Err(e) => {
                // Roll back: recommit the original allocations.
                for (model, allocs) in &assignment.entries {
                    let profile = self.catalog.expect(model).clone();
                    self.pool.commit(&profile, allocs);
                }
                self.assignments.insert(pod, assignment);
                Err(e)
            }
        }
    }

    /// Drains a TPU for maintenance: it stops accepting new allocations and
    /// every pod currently using it is **live-migrated** — re-planned on
    /// the remaining fleet and committed — without ever terminating a pod.
    /// Returns the migrated pods with their new per-stage placements.
    ///
    /// # Errors
    ///
    /// [`DeployError::InsufficientTpu`] when some pod cannot be re-placed;
    /// in that case *nothing* changes: already-migrated pods are rolled
    /// back and the TPU is returned to service.
    pub fn drain_tpu(
        &mut self,
        tpu: TpuId,
    ) -> Result<Vec<(PodId, Vec<StagePlacement>)>, DeployError> {
        self.pool.fail(tpu);
        let affected = self.pods_using(tpu);
        let mut migrated: Vec<(PodId, PodAssignment, Vec<StagePlacement>)> = Vec::new();
        for pod in affected {
            let original = self
                .assignments
                .remove(&pod)
                .expect("affected pod has an assignment");
            for (model, allocs) in &original.entries {
                self.pool.release(model, allocs);
            }
            let requests = original.requests_at(original.den);
            match self.plan_stages(&requests) {
                Ok(plans) => {
                    for (model, allocs) in &plans {
                        let profile = self.catalog.expect(model).clone();
                        self.pool.commit(&profile, allocs);
                    }
                    self.assignments.insert(
                        pod,
                        PodAssignment {
                            entries: plans.clone(),
                            full: original.full.clone(),
                            den: original.den,
                        },
                    );
                    migrated.push((pod, original, plans));
                }
                Err(_) => {
                    // Abort: undo this pod and every earlier migration.
                    for (model, allocs) in &original.entries {
                        let profile = self.catalog.expect(model).clone();
                        self.pool.commit(&profile, allocs);
                    }
                    self.assignments.insert(pod, original);
                    for (mig_pod, old_assignment, new_entries) in migrated.drain(..).rev() {
                        for (model, allocs) in &new_entries {
                            self.pool.release(model, allocs);
                        }
                        for (model, allocs) in &old_assignment.entries {
                            let profile = self.catalog.expect(model).clone();
                            self.pool.commit(&profile, allocs);
                        }
                        self.assignments.insert(mig_pod, old_assignment);
                    }
                    self.pool.restore(tpu);
                    return Err(DeployError::InsufficientTpu);
                }
            }
        }
        Ok(migrated
            .into_iter()
            .map(|(pod, _, plans)| (pod, plans))
            .collect())
    }

    fn release_assignment(&mut self, pod: PodId) {
        if let Some(assignment) = self.assignments.remove(&pod) {
            for (model, allocs) in &assignment.entries {
                self.pool.release(model, allocs);
            }
        }
    }

    /// Pods holding at least one allocation on `tpu`, in pod-id order.
    #[must_use]
    pub fn pods_using(&self, tpu: TpuId) -> Vec<PodId> {
        self.assignments
            .iter()
            .filter(|(_, a)| {
                a.entries
                    .iter()
                    .any(|(_, allocs)| allocs.iter().any(|al| al.tpu() == tpu))
            })
            .map(|(&pod, _)| pod)
            .collect()
    }

    /// Plans the complete eviction of `tpu` for the online defragmenter —
    /// **without touching any state**. Every pod with an allocation on the
    /// donor is re-planned on a scratch copy of the pool in pod-id order,
    /// with the donor marked unavailable so nothing lands back on it, using
    /// **Best-Fit** receivers off the capacity index (donors shed into the
    /// tightest holes, which is what compacts the pool) regardless of the
    /// scheduler's admission policy.
    ///
    /// The returned [`EvictPlan`] carries everything the defragmenter's
    /// cost model needs: per-pod new placements and swap bytes, per-receiver
    /// newly-loaded bytes, and each receiver's post-move resident model set
    /// (for the co-compile transition cost). Execute it with
    /// [`ExtendedScheduler::apply_evict`] *before any other pool mutation*,
    /// or drop it — planning is free.
    ///
    /// # Errors
    ///
    /// [`DeployError::InsufficientTpu`] when some pod on the donor cannot be
    /// re-placed on the rest of the fleet; [`DeployError::UnknownModel`] if
    /// an assignment references a model missing from the catalog.
    pub fn plan_evict(&self, tpu: TpuId) -> Result<EvictPlan, DeployError> {
        let recovered_micro = self.pool.account(tpu).load().as_micro();
        let mut scratch = self.pool.clone();
        scratch.fail(tpu);
        let mut policy = BestFit::new();
        let mut buffer = PlanBuffer::new();
        let mut moves = Vec::new();
        let mut newly_loaded: BTreeMap<TpuId, u64> = BTreeMap::new();
        for pod in self.pods_using(tpu) {
            let assignment = &self.assignments[&pod];
            for (model, allocs) in &assignment.entries {
                scratch.release(model, allocs);
            }
            let requests = assignment.requests_at(assignment.den);
            let mut plans = Vec::with_capacity(requests.len());
            let mut per_tpu: BTreeMap<TpuId, u64> = BTreeMap::new();
            for request in &requests {
                let profile = self
                    .catalog
                    .get(request.model())
                    .ok_or_else(|| DeployError::UnknownModel(request.model().clone()))?
                    .clone();
                if !policy.plan_into(
                    &scratch,
                    &profile,
                    request.units(),
                    self.features,
                    &mut buffer,
                ) {
                    return Err(DeployError::InsufficientTpu);
                }
                let allocations = buffer.allocations().to_vec();
                for loaded in scratch.commit(&profile, &allocations) {
                    *per_tpu.entry(loaded).or_insert(0) += profile.param_bytes();
                    *newly_loaded.entry(loaded).or_insert(0) += profile.param_bytes();
                }
                plans.push((request.model().clone(), allocations));
            }
            // Loads on distinct TPUs proceed in parallel; this pod's swap-in
            // window is bounded by its busiest destination (the same
            // convention as `handle_tpu_failure`).
            let swap_bytes = per_tpu.values().copied().max().unwrap_or(0);
            moves.push(PodMove {
                pod,
                plans,
                swap_bytes,
            });
        }
        let residents_after = newly_loaded
            .keys()
            .map(|&receiver| (receiver, scratch.account(receiver).live_models()))
            .collect();
        Ok(EvictPlan {
            donor: tpu,
            recovered_micro,
            moves,
            newly_loaded,
            residents_after,
        })
    }

    /// Executes an [`EvictPlan`]: every planned pod releases its old
    /// allocations and commits the new ones, atomically from the pool's
    /// point of view (the plan was validated against this exact pool
    /// state). The donor is never failed — it simply ends the call empty,
    /// one whole contiguous slot returned to the capacity index.
    ///
    /// # Panics
    ///
    /// Panics if the pool changed since [`ExtendedScheduler::plan_evict`]
    /// produced the plan (a planned allocation no longer fits), or if a
    /// planned pod no longer holds an assignment.
    pub fn apply_evict(&mut self, plan: &EvictPlan) {
        for mv in &plan.moves {
            let old = self
                .assignments
                .remove(&mv.pod)
                .expect("evicted pod holds an assignment");
            for (model, allocs) in &old.entries {
                self.pool.release(model, allocs);
            }
            for (model, allocs) in &mv.plans {
                let profile = self.catalog.expect(model).clone();
                self.pool.commit(&profile, allocs);
            }
            self.assignments.insert(
                mv.pod,
                PodAssignment {
                    entries: mv.plans.clone(),
                    full: old.full,
                    den: old.den,
                },
            );
        }
        debug_assert!(
            self.pool.account(plan.donor).load().is_zero(),
            "donor still carries load after eviction"
        );
    }
}

/// One pod's move inside an [`EvictPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PodMove {
    /// The migrating pod.
    pub pod: PodId,
    /// Its new per-stage allocations (none on the donor).
    pub plans: Vec<StagePlacement>,
    /// Model bytes that must be (re)loaded on this pod's busiest
    /// destination TPU — the swap-in component of its migration window.
    /// Zero when every destination already had the models resident.
    pub swap_bytes: u64,
}

/// A validated, not-yet-executed eviction of one donor TPU, produced by
/// [`ExtendedScheduler::plan_evict`] and executed by
/// [`ExtendedScheduler::apply_evict`]. Everything the defragmenter's
/// swap-cost model consumes is precomputed here, so the accept/reject
/// decision never touches live state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictPlan {
    /// The TPU being emptied.
    pub donor: TpuId,
    /// The donor's load at planning time — the contiguous micro-units the
    /// move recovers (the donor ends as one whole free slot).
    pub recovered_micro: u64,
    /// Per-pod moves, in pod-id order.
    pub moves: Vec<PodMove>,
    /// Parameter bytes newly loaded per receiver TPU, summed across moves —
    /// the `TpuSpec::swap_time` input of the cost model.
    pub newly_loaded: BTreeMap<TpuId, u64>,
    /// Each byte-receiving TPU's live model set *after* the eviction, in
    /// co-compilation priority order — the `tpu::cocompile` input of the
    /// transition cost.
    pub residents_after: BTreeMap<TpuId, Vec<ModelId>>,
}

/// One pod re-placed by [`ExtendedScheduler::handle_tpu_failure`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredPod {
    /// The surviving pod.
    pub pod: PodId,
    /// Its new per-stage allocations.
    pub plans: Vec<StagePlacement>,
    /// Model bytes that must be (re)loaded on the busiest destination TPU
    /// before the pod serves again — the swap-in component of recovery
    /// latency. Zero when every destination already had the models
    /// resident.
    pub swap_bytes: u64,
}

/// The outcome of [`ExtendedScheduler::handle_tpu_failure`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureRecovery {
    /// Pods re-placed on surviving TPUs, with their new per-stage
    /// allocations.
    pub recovered: Vec<RecoveredPod>,
    /// Pods whose demand no longer fits anywhere.
    pub lost: Vec<PodId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use microedge_cluster::topology::ClusterBuilder;
    use microedge_orch::pod::ResourceRequest;

    fn setup(trpis: u32, vrpis: u32, features: Features) -> (Orchestrator, ExtendedScheduler) {
        let cluster = ClusterBuilder::new().trpis(trpis).vrpis(vrpis).build();
        let sched = ExtendedScheduler::new(&cluster, Catalog::builtin(), features);
        (Orchestrator::new(cluster), sched)
    }

    fn coral_pie_spec(name: &str) -> PodSpec {
        PodSpec::builder(name, "coral-pie:latest")
            .resources(ResourceRequest::camera_default())
            .extension(EXT_MODEL, "ssd-mobilenet-v2")
            .extension(EXT_TPU_UNITS, "0.35")
            .build()
    }

    #[test]
    fn deploy_allocates_units_and_loads_model() {
        let (mut orch, mut sched) = setup(2, 4, Features::all());
        let d = sched.deploy(&mut orch, coral_pie_spec("cam-0")).unwrap();
        assert_eq!(d.stages().len(), 1);
        assert_eq!(d.allocations().len(), 1);
        assert!(d.cocompiled(), "first deployment loads the model");
        assert_eq!(d.control_rpcs(), 2, "one Load + one LBS push");
        assert_eq!(
            sched.pool().account(d.allocations()[0].tpu()).load(),
            TpuUnits::from_f64(0.35)
        );

        let d2 = sched.deploy(&mut orch, coral_pie_spec("cam-1")).unwrap();
        assert!(!d2.cocompiled(), "model already resident");
        assert_eq!(d2.control_rpcs(), 1, "LBS push only");
    }

    #[test]
    fn deploy_without_tpu_extensions_uses_native_path() {
        let (mut orch, mut sched) = setup(1, 2, Features::all());
        let plain = PodSpec::builder("web", "nginx").build();
        let d = sched.deploy(&mut orch, plain).unwrap();
        assert!(d.stages().is_empty());
        assert!(d.allocations().is_empty());
        assert_eq!(d.control_rpcs(), 0);
        assert!(sched.assignment(d.pod()).is_none());
    }

    #[test]
    fn rejection_leaves_no_state_behind() {
        let (mut orch, mut sched) = setup(1, 2, Features::all());
        // Fill the single TPU.
        sched.deploy(&mut orch, coral_pie_spec("a")).unwrap();
        sched.deploy(&mut orch, coral_pie_spec("b")).unwrap();
        let before_pods = orch.running_pods().len();
        let before_load = sched.pool().account(TpuId(0)).load();
        // 0.35 more does not fit 0.70 + partitioning has nowhere to go.
        let err = sched.deploy(&mut orch, coral_pie_spec("c")).unwrap_err();
        assert_eq!(err, DeployError::InsufficientTpu);
        assert_eq!(orch.running_pods().len(), before_pods, "no pod created");
        assert_eq!(sched.pool().account(TpuId(0)).load(), before_load);
    }

    #[test]
    fn teardown_returns_units() {
        let (mut orch, mut sched) = setup(1, 2, Features::all());
        let d = sched.deploy(&mut orch, coral_pie_spec("a")).unwrap();
        sched.teardown(&mut orch, d.pod()).unwrap();
        assert_eq!(sched.pool().account(TpuId(0)).load(), TpuUnits::ZERO);
        assert!(sched.assignment(d.pod()).is_none());
    }

    #[test]
    fn reclamation_polls_terminated_pods() {
        let (mut orch, mut sched) = setup(1, 2, Features::all());
        let d = sched.deploy(&mut orch, coral_pie_spec("a")).unwrap();
        // The pod dies without going through the scheduler (crash).
        orch.delete_pod(d.pod()).unwrap();
        assert_eq!(
            sched.pool().account(TpuId(0)).load(),
            TpuUnits::from_f64(0.35),
            "units still held before reclamation runs"
        );
        let reclaimed = sched.reclaim_terminated(&orch);
        assert_eq!(reclaimed, vec![d.pod()]);
        assert_eq!(sched.pool().account(TpuId(0)).load(), TpuUnits::ZERO);
        // Idempotent.
        assert!(sched.reclaim_terminated(&orch).is_empty());
    }

    #[test]
    fn unknown_model_is_rejected() {
        let (mut orch, mut sched) = setup(1, 2, Features::all());
        let spec = PodSpec::builder("x", "i")
            .extension(EXT_MODEL, "no-such-model")
            .extension(EXT_TPU_UNITS, "0.1")
            .build();
        let err = sched.deploy(&mut orch, spec).unwrap_err();
        assert_eq!(
            err,
            DeployError::UnknownModel(ModelId::new("no-such-model"))
        );
    }

    #[test]
    fn malformed_requests_are_rejected() {
        let (mut orch, mut sched) = setup(1, 2, Features::all());
        for (model, units, needle) in [
            (Some("unet-v2"), None, "without tpu-units"),
            (None, Some("0.5"), "without model"),
            (Some("unet-v2"), Some("abc"), "not a number"),
            (Some("unet-v2"), Some("-1"), "positive"),
            (Some("unet-v2,mobilenet-v1"), Some("0.5"), "units values"),
            (Some("unet-v2,"), Some("0.5,0.2"), "empty model"),
        ] {
            let mut b = PodSpec::builder("x", "i");
            if let Some(m) = model {
                b = b.extension(EXT_MODEL, m);
            }
            if let Some(u) = units {
                b = b.extension(EXT_TPU_UNITS, u);
            }
            let err = sched.deploy(&mut orch, b.build()).unwrap_err();
            match err {
                DeployError::MalformedRequest(msg) => {
                    assert!(msg.contains(needle), "{msg} !~ {needle}")
                }
                other => panic!("expected malformed request, got {other}"),
            }
        }
    }

    #[test]
    fn bodypix_partitions_across_two_tpus() {
        let (mut orch, mut sched) = setup(2, 2, Features::all());
        let spec = PodSpec::builder("seg", "bodypix")
            .extension(EXT_MODEL, "bodypix-mobilenet-v1")
            .extension(EXT_TPU_UNITS, "1.2")
            .build();
        let d = sched.deploy(&mut orch, spec).unwrap();
        assert_eq!(d.allocations().len(), 2);
        let total: TpuUnits = d.allocations().iter().map(Allocation::units).sum();
        assert_eq!(total, TpuUnits::from_f64(1.2));
        let lbs = d.lbs();
        assert_eq!(lbs.target_count(), 2);
    }

    #[test]
    fn pipeline_deploys_every_stage() {
        let (mut orch, mut sched) = setup(1, 2, Features::all());
        let spec = PodSpec::builder("pipe", "i")
            .extension(EXT_MODEL, "mobilenet-v1, unet-v2")
            .extension(EXT_TPU_UNITS, "0.215, 0.675")
            .build();
        let d = sched.deploy(&mut orch, spec).unwrap();
        assert_eq!(d.stages().len(), 2);
        assert_eq!(d.stages()[0].model().as_str(), "mobilenet-v1");
        assert_eq!(d.stages()[1].model().as_str(), "unet-v2");
        assert!(d.cocompiled());
        // Both stages landed on the single TPU: load = 0.89.
        assert_eq!(
            sched.pool().account(TpuId(0)).load(),
            TpuUnits::from_f64(0.89)
        );
        // Two Load RPCs + one LBS push.
        assert_eq!(d.control_rpcs(), 3);
        assert_eq!(d.newly_loaded(), vec![TpuId(0)]);
    }

    #[test]
    fn pipeline_rolls_back_when_a_later_stage_fails() {
        let (mut orch, mut sched) = setup(1, 2, Features::all());
        // Stage 1 fits; stage 2 (0.9 units after 0.215) does not.
        let spec = PodSpec::builder("pipe", "i")
            .extension(EXT_MODEL, "mobilenet-v1,unet-v2")
            .extension(EXT_TPU_UNITS, "0.215,0.9")
            .build();
        let err = sched.deploy(&mut orch, spec).unwrap_err();
        assert_eq!(err, DeployError::InsufficientTpu);
        assert_eq!(sched.pool().account(TpuId(0)).load(), TpuUnits::ZERO);
        assert!(sched.pool().account(TpuId(0)).live_models().is_empty());
        assert!(orch.running_pods().is_empty());
    }

    #[test]
    fn pipeline_teardown_releases_every_stage() {
        let (mut orch, mut sched) = setup(2, 2, Features::all());
        let spec = PodSpec::builder("pipe", "i")
            .extension(EXT_MODEL, "ssd-mobilenet-v2,mobilenet-v1")
            .extension(EXT_TPU_UNITS, "0.35,0.215")
            .build();
        let d = sched.deploy(&mut orch, spec).unwrap();
        assert_eq!(d.stages().len(), 2);
        assert_eq!(sched.stage_assignment(d.pod()).unwrap().len(), 2);
        sched.teardown(&mut orch, d.pod()).unwrap();
        assert_eq!(sched.pool().total_free_units(), TpuUnits::from_f64(2.0));
    }

    #[test]
    fn failure_recovery_moves_pods() {
        let (mut orch, mut sched) = setup(2, 2, Features::all());
        let d = sched.deploy(&mut orch, coral_pie_spec("a")).unwrap();
        let original_tpu = d.allocations()[0].tpu();
        let outcome = sched.handle_tpu_failure(original_tpu);
        assert_eq!(outcome.recovered.len(), 1);
        assert!(outcome.lost.is_empty());
        let recovered = &outcome.recovered[0];
        assert_eq!(recovered.pod, d.pod());
        assert!(
            recovered.swap_bytes > 0,
            "the model must be loaded on the fresh TPU"
        );
        let new_allocs = &recovered.plans[0].1;
        assert_ne!(new_allocs[0].tpu(), original_tpu);
        assert_eq!(
            sched.pool().account(new_allocs[0].tpu()).load(),
            TpuUnits::from_f64(0.35)
        );
    }

    #[test]
    fn failure_recovery_reports_lost_pods() {
        let (mut orch, mut sched) = setup(1, 2, Features::all());
        let d = sched.deploy(&mut orch, coral_pie_spec("a")).unwrap();
        let outcome = sched.handle_tpu_failure(TpuId(0));
        assert!(outcome.recovered.is_empty());
        assert_eq!(outcome.lost, vec![d.pod()]);
        assert_eq!(sched.pool().account(TpuId(0)).load(), TpuUnits::ZERO);
    }

    #[test]
    fn deploy_scaled_halves_demand_and_rescale_restores_it() {
        let (mut orch, mut sched) = setup(1, 2, Features::all());
        let d = sched
            .deploy_scaled(&mut orch, coral_pie_spec("a"), 2)
            .unwrap();
        assert_eq!(sched.assignment_denominator(d.pod()), Some(2));
        assert_eq!(
            sched.pool().account(TpuId(0)).load(),
            TpuUnits::from_micro(175_000),
            "admitted at half of 0.35 units"
        );
        let plans = sched.rescale(d.pod(), 1).unwrap();
        assert_eq!(sched.assignment_denominator(d.pod()), Some(1));
        let total: TpuUnits = plans[0].1.iter().map(Allocation::units).sum();
        assert_eq!(total, TpuUnits::from_f64(0.35));
    }

    #[test]
    fn rescale_rolls_back_when_the_new_scale_does_not_fit() {
        let (mut orch, mut sched) = setup(1, 2, Features::all());
        let a = sched
            .deploy_scaled(&mut orch, coral_pie_spec("a"), 2)
            .unwrap();
        // Fill the remainder so upscaling `a` cannot fit.
        sched.deploy(&mut orch, coral_pie_spec("b")).unwrap();
        sched.deploy(&mut orch, coral_pie_spec("c")).unwrap();
        let load_before = sched.pool().account(TpuId(0)).load();
        let err = sched.rescale(a.pod(), 1).unwrap_err();
        assert_eq!(err, DeployError::InsufficientTpu);
        assert_eq!(sched.pool().account(TpuId(0)).load(), load_before);
        assert_eq!(sched.assignment_denominator(a.pod()), Some(2));
    }

    #[test]
    fn rescale_unknown_pod_is_a_typed_error() {
        let (_, mut sched) = setup(1, 2, Features::all());
        let err = sched.rescale(PodId(999), 1).unwrap_err();
        assert!(matches!(err, DeployError::Orch(OrchError::UnknownPod(_))));
    }

    #[test]
    fn fail_tpu_releasing_frees_units_without_replanning() {
        let (mut orch, mut sched) = setup(2, 2, Features::all());
        let a = sched.deploy(&mut orch, coral_pie_spec("a")).unwrap();
        let tpu = a.allocations()[0].tpu();
        let displaced = sched.fail_tpu_releasing(tpu);
        assert_eq!(displaced, vec![a.pod()]);
        assert!(sched.assignment(a.pod()).is_none(), "not re-placed");
        assert_eq!(sched.pool().account(tpu).load(), TpuUnits::ZERO);
        // Restore is idempotent and returns the TPU to service.
        sched.restore_tpu(tpu);
        sched.restore_tpu(tpu);
        assert!(sched.pool().account(tpu).is_available());
    }

    #[test]
    fn recovery_preserves_degradation_denominator() {
        let (mut orch, mut sched) = setup(2, 2, Features::all());
        let d = sched
            .deploy_scaled(&mut orch, coral_pie_spec("a"), 2)
            .unwrap();
        let tpu = d.allocations()[0].tpu();
        let outcome = sched.handle_tpu_failure(tpu);
        assert_eq!(outcome.recovered.len(), 1);
        assert_eq!(sched.assignment_denominator(d.pod()), Some(2));
        let total: TpuUnits = outcome.recovered[0].plans[0]
            .1
            .iter()
            .map(Allocation::units)
            .sum();
        assert_eq!(total, TpuUnits::from_micro(175_000));
    }

    #[test]
    fn resident_models_in_priority_order() {
        let (mut orch, mut sched) = setup(1, 2, Features::all());
        // MobileNet V1 (3.5 MiB) and UNet V2 (2.3 MiB) co-fit the 6.9 MiB
        // parameter budget.
        let pod = |name: &str, model: &str, units: &str| {
            PodSpec::builder(name, "i")
                .extension(EXT_MODEL, model)
                .extension(EXT_TPU_UNITS, units)
                .build()
        };
        sched
            .deploy(&mut orch, pod("a", "mobilenet-v1", "0.215"))
            .unwrap();
        sched
            .deploy(&mut orch, pod("b", "unet-v2", "0.675"))
            .unwrap();
        assert_eq!(
            sched.resident_models(TpuId(0)),
            vec![ModelId::new("mobilenet-v1"), ModelId::new("unet-v2")]
        );
    }

    #[test]
    fn tpu_request_accessors_and_parsing() {
        let r = TpuRequest::new(ModelId::new("m"), TpuUnits::from_f64(0.5));
        assert_eq!(r.model().as_str(), "m");
        assert_eq!(r.units(), TpuUnits::from_f64(0.5));

        let spec = PodSpec::builder("x", "i")
            .extension(EXT_MODEL, "a,b")
            .extension(EXT_TPU_UNITS, "0.1,0.2")
            .build();
        let parsed = TpuRequest::from_spec(&spec).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].model().as_str(), "b");
        assert_eq!(parsed[1].units(), TpuUnits::from_f64(0.2));
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let e = DeployError::Orch(OrchError::NoFeasibleNode);
        assert!(e.to_string().contains("orchestrator"));
        assert!(e.source().is_some());
        assert!(DeployError::InsufficientTpu.source().is_none());
    }

    #[test]
    fn debug_impl_mentions_policy() {
        let (_, sched) = setup(1, 1, Features::all());
        let dbg = format!("{sched:?}");
        assert!(dbg.contains("first-fit"));
    }

    #[test]
    fn drain_migrates_pods_without_terminating_them() {
        let (mut orch, mut sched) = setup(2, 4, Features::all());
        let a = sched.deploy(&mut orch, coral_pie_spec("a")).unwrap();
        let b = sched.deploy(&mut orch, coral_pie_spec("b")).unwrap();
        let source = a.allocations()[0].tpu();
        assert_eq!(b.allocations()[0].tpu(), source, "both share the first TPU");

        let migrated = sched.drain_tpu(source).unwrap();
        assert_eq!(migrated.len(), 2);
        // Pods still running, all load on the other TPU.
        assert_eq!(orch.running_pods().len(), 2);
        assert_eq!(sched.pool().account(source).load(), TpuUnits::ZERO);
        let other = migrated[0].1[0].1[0].tpu();
        assert_ne!(other, source);
        assert_eq!(sched.pool().account(other).load(), TpuUnits::from_f64(0.7));
    }

    #[test]
    fn drain_aborts_atomically_when_capacity_is_insufficient() {
        let (mut orch, mut sched) = setup(2, 4, Features::all());
        // Fill both TPUs so nothing can move.
        for i in 0..5 {
            sched
                .deploy(&mut orch, coral_pie_spec(&format!("cam-{i}")))
                .unwrap();
        }
        let loads_before: Vec<TpuUnits> =
            sched.pool().accounts().iter().map(|a| a.load()).collect();
        let err = sched.drain_tpu(TpuId(0)).unwrap_err();
        assert_eq!(err, DeployError::InsufficientTpu);
        // Nothing changed, and the TPU is back in service.
        let loads_after: Vec<TpuUnits> = sched.pool().accounts().iter().map(|a| a.load()).collect();
        assert_eq!(loads_before, loads_after);
        assert!(sched.pool().account(TpuId(0)).is_available());
    }
}
