//! Sharded single-replay parallelism: one deterministic simulation spanning
//! many per-cluster [`World`] shards.
//!
//! A [`ShardedWorld`] owns one `World` per cluster shard — each with its own
//! event queue, stream slab, TPU pool, and telemetry sketches — and advances
//! all of them in lock-step **epochs**. Within an epoch, shards share no
//! state and run concurrently on the deterministic worker pool
//! ([`microedge_sim::par`]); all cross-shard traffic is exchanged only at
//! the epoch barrier, serially, in a canonical order. That makes the replay
//! bit-identical at any `MICROEDGE_WORKERS` value:
//!
//! 1. **Partition.** Each shard drains its queue through
//!    `EventQueue::pop_due(barrier)` (inclusive), so every event is handled
//!    in exactly one epoch regardless of who else is running.
//! 2. **Align.** After the parallel step, every shard's clock is advanced
//!    to the barrier (`World::advance_to`), so barrier-time deliveries are
//!    legal on all shards.
//! 3. **Exchange.** Outbound frame exports are collected shard-by-shard and
//!    sorted by `(time, source shard, stream id)` — a total order over
//!    messages that does not depend on thread interleaving — then delivered
//!    to the destination shards' queues. Control-plane commands
//!    ([`WorldCommand`]) are released from a global mailbox to their owning
//!    shard the same way, keyed by `(time, submission seq)`.
//!
//! Determinism therefore needs no synchronisation beyond the barrier: the
//! worker pool only decides *when* a shard's epoch runs, never *what* it
//! observes. The per-shard results merge into one fleet-level
//! [`RunResults`] via [`RunResults::merge_shards`] (sketch merges + integer
//! sums), and a single-shard `ShardedWorld` is byte-identical to the plain
//! `World` it wraps — the differential oracle `tests/sharded_determinism.rs`
//! pins down.
//!
//! # Examples
//!
//! ```
//! use microedge_cluster::topology::ClusterBuilder;
//! use microedge_core::config::Features;
//! use microedge_core::runtime::StreamSpec;
//! use microedge_core::shard::ShardedWorld;
//! use microedge_sim::time::SimTime;
//!
//! let clusters = (0..2).map(|_| ClusterBuilder::new().trpis(1).vrpis(2).build());
//! let mut sharded = ShardedWorld::new(clusters, Features::all());
//! for shard in 0..2 {
//!     let spec = StreamSpec::builder(&format!("cam-{shard}"), "ssd-mobilenet-v2")
//!         .frame_limit(30)
//!         .export_completions(true)
//!         .build();
//!     sharded.admit_stream(shard, spec).unwrap();
//! }
//! let results = sharded.run_to_completion(SimTime::from_secs(10));
//! assert_eq!(results.reports().len(), 2);
//! // Each shard's exports were ingested by its neighbour.
//! assert_eq!(results.remote_ingest().count(), 60);
//! ```

use microedge_cluster::topology::Cluster;
use microedge_sim::par;
use microedge_sim::time::{SimDuration, SimTime};

use crate::config::Features;
use crate::faults::{ChaosConfig, FaultSchedule};
use crate::runtime::{FrameExport, RunResults, StreamId, StreamSpec, World, WorldCommand};
use crate::scheduler::DeployError;

/// A stream id qualified by its owning shard — the stable identity
/// cross-shard messages and merged results are keyed by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct GlobalStreamId {
    /// Index of the owning shard.
    pub shard: u32,
    /// The shard-local id.
    pub local: StreamId,
}

impl GlobalStreamId {
    /// The packed id merged [`RunResults`] are keyed by.
    #[must_use]
    pub fn packed(self) -> StreamId {
        self.local.with_shard(self.shard)
    }
}

/// A control-plane command waiting in the global mailbox.
#[derive(Debug, Clone)]
struct PendingCommand {
    at: SimTime,
    /// Submission order: the tie-breaker for commands at the same instant.
    seq: u64,
    shard: u32,
    cmd: WorldCommand,
}

/// The default epoch length: half a second of simulated time. Long enough
/// that barrier overhead vanishes against millions of events per epoch,
/// short enough that cross-shard latency (messages ride at earliest the
/// next barrier) stays below a frame interval at 1 FPS.
pub const DEFAULT_EPOCH: SimDuration = SimDuration::from_millis(500);

/// A deterministic multi-cluster simulation: per-cluster [`World`] shards
/// advanced in lock-step epochs with barrier-exchanged cross-shard traffic.
/// See the [module docs](self) for the determinism argument.
#[derive(Debug)]
pub struct ShardedWorld {
    shards: Vec<World>,
    epoch: SimDuration,
    /// The last completed barrier (all shard clocks are aligned to it
    /// between epochs).
    now: SimTime,
    /// Commands not yet released to their owning shard.
    mailbox: Vec<PendingCommand>,
    next_seq: u64,
    exports_routed: u64,
}

impl ShardedWorld {
    /// Builds one shard per cluster with the built-in catalog and shipped
    /// policy (the same defaults as [`World::new`]) and the
    /// [`DEFAULT_EPOCH`] barrier interval.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is empty or any cluster has no TPUs.
    #[must_use]
    pub fn new(clusters: impl IntoIterator<Item = Cluster>, features: Features) -> Self {
        let shards: Vec<World> = clusters
            .into_iter()
            .map(|c| World::new(c, features))
            .collect();
        assert!(
            !shards.is_empty(),
            "a sharded world needs at least one shard"
        );
        ShardedWorld {
            shards,
            epoch: DEFAULT_EPOCH,
            now: SimTime::ZERO,
            mailbox: Vec::new(),
            next_seq: 0,
            exports_routed: 0,
        }
    }

    /// Overrides the epoch length (barrier interval).
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is zero.
    #[must_use]
    pub fn with_epoch(mut self, epoch: SimDuration) -> Self {
        assert!(epoch > SimDuration::ZERO, "epoch must be positive");
        self.epoch = epoch;
        self
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The last completed epoch barrier.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Cross-shard frame exports delivered so far.
    #[must_use]
    pub fn exports_routed(&self) -> u64 {
        self.exports_routed
    }

    /// Direct access to a shard (read-only; pre-run setup beyond admission
    /// goes through [`ShardedWorld::shard_mut`]).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn shard(&self, shard: u32) -> &World {
        &self.shards[shard as usize]
    }

    /// Mutable access to a shard for pre-run configuration (data-plane
    /// overrides, direct fault scheduling). Mid-run mutation must go
    /// through the command mailbox instead, or determinism is forfeit.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_mut(&mut self, shard: u32) -> &mut World {
        &mut self.shards[shard as usize]
    }

    /// Admits a stream on `shard` at the shard's current clock (normally
    /// before the first epoch; mid-run admissions ride the mailbox via
    /// [`WorldCommand::Admit`]).
    ///
    /// # Errors
    ///
    /// See [`World::admit_stream`].
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn admit_stream(
        &mut self,
        shard: u32,
        spec: StreamSpec,
    ) -> Result<GlobalStreamId, DeployError> {
        let local = self.shards[shard as usize].admit_stream(spec)?;
        Ok(GlobalStreamId { shard, local })
    }

    /// Arms chaos mode on every shard (fault detection, self-healing).
    pub fn enable_chaos(&mut self, config: ChaosConfig) {
        for shard in &mut self.shards {
            shard.enable_chaos(config);
        }
    }

    /// Submits a control-plane command for `shard`, to fire at `at`. The
    /// command waits in the global mailbox and is released to the shard at
    /// the epoch barrier covering its timestamp; commands at the same
    /// instant fire in submission order.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the last completed barrier.
    pub fn schedule_command(&mut self, at: SimTime, shard: u32, cmd: WorldCommand) {
        assert!(
            at >= self.now,
            "cannot schedule a command at {at} behind the barrier {now}",
            now = self.now
        );
        assert!(
            (shard as usize) < self.shards.len(),
            "shard {shard} out of range"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.mailbox.push(PendingCommand {
            at,
            seq,
            shard,
            cmd,
        });
    }

    /// Schedules a fault trace for `shard` through the command mailbox
    /// (arming chaos mode on that shard with the default config first, as
    /// [`World::inject_faults`] does).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn inject_faults(&mut self, shard: u32, schedule: &FaultSchedule) {
        if !self.shards[shard as usize].chaos_enabled() {
            self.shards[shard as usize].enable_chaos(ChaosConfig::default());
        }
        for ev in schedule.events() {
            if ev.at < self.now {
                continue;
            }
            self.schedule_command(ev.at, shard, WorldCommand::Fault(ev.kind));
        }
    }

    /// Runs epochs until every queue and the mailbox drain (or `deadline`
    /// is reached), then merges the per-shard results. Worker count comes
    /// from `MICROEDGE_WORKERS` / available parallelism, and — the whole
    /// point — does not affect the results, byte for byte.
    #[must_use]
    pub fn run_to_completion(self, deadline: SimTime) -> RunResults {
        let workers = par::worker_count(self.shards.len());
        self.run_with_workers(deadline, workers)
    }

    /// [`ShardedWorld::run_to_completion`] with an explicit worker count
    /// (the determinism tests pin 1/2/8 explicitly).
    ///
    /// # Panics
    ///
    /// Panics if `deadline` precedes the last completed barrier.
    #[must_use]
    pub fn run_with_workers(mut self, deadline: SimTime, workers: usize) -> RunResults {
        assert!(deadline >= self.now, "deadline behind the barrier");
        // Release order within a barrier is (time, submission seq).
        self.mailbox.sort_by_key(|p| (p.at, p.seq));
        let mailbox = std::mem::take(&mut self.mailbox);
        let mut released = 0;
        while self.now < deadline {
            let barrier = self
                .now
                .checked_add(self.epoch)
                .unwrap_or(deadline)
                .min(deadline);
            // 1. Release due commands to their owning shards. Serial and
            //    sorted, so per-shard queue insertion order (and thus event
            //    seq numbers) is identical at any worker count.
            while released < mailbox.len() && mailbox[released].at <= barrier {
                let p = &mailbox[released];
                self.shards[p.shard as usize].schedule_command(p.at, p.cmd.clone());
                released += 1;
            }
            // 2. Run every shard to the barrier in parallel. Shards share
            //    nothing, so workers only decide scheduling, not behaviour.
            self.shards = par::par_map_with_workers(
                std::mem::take(&mut self.shards),
                workers,
                move |_, mut shard| {
                    shard.run_until(barrier);
                    shard
                },
            );
            // 3. Barrier: align clocks, then exchange messages in a
            //    canonical (time, source shard, stream) order.
            let mut msgs: Vec<(u32, FrameExport)> = Vec::new();
            for (i, shard) in self.shards.iter_mut().enumerate() {
                shard.advance_to(barrier);
                let src = u32::try_from(i).expect("shard count fits u32");
                msgs.extend(shard.take_outbox().into_iter().map(|e| (src, e)));
            }
            msgs.sort_by_key(|(src, e)| (e.at, *src, e.stream));
            let k = u32::try_from(self.shards.len()).expect("shard count fits u32");
            for (src, e) in msgs {
                // Ring routing: each shard announces completions to its
                // successor (the aggregation peer). Exports complete inside
                // the epoch but their record instant can overhang the
                // barrier (client post-processing); deliver at that instant,
                // never before the barrier the receiver sits at.
                let dest = (src + 1) % k;
                self.shards[dest as usize].schedule_ingest(e.at.max(barrier), e.latency);
                self.exports_routed += 1;
            }
            self.now = barrier;
            if released >= mailbox.len() && self.shards.iter().all(|s| s.pending_events() == 0) {
                break;
            }
        }
        let end = self.now.max(SimTime::from_nanos(1));
        let parts: Vec<RunResults> = self
            .shards
            .into_iter()
            .map(|shard| shard.finish(end))
            .collect();
        RunResults::merge_shards(parts)
    }
}

#[cfg(test)]
mod tests {
    use microedge_cluster::topology::ClusterBuilder;

    use super::*;

    fn cluster(trpis: u32) -> Cluster {
        ClusterBuilder::new().trpis(trpis).vrpis(4).build()
    }

    fn spec(name: &str, frames: u64) -> StreamSpec {
        StreamSpec::builder(name, "ssd-mobilenet-v2")
            .frame_limit(frames)
            .build()
    }

    #[test]
    fn shards_run_independently_and_merge() {
        let mut sw = ShardedWorld::new((0..3).map(|_| cluster(1)), Features::all());
        for shard in 0..3 {
            sw.admit_stream(shard, spec(&format!("cam-{shard}"), 45))
                .unwrap();
        }
        let results = sw.run_to_completion(SimTime::from_secs(30));
        assert_eq!(results.reports().len(), 3);
        assert!(results.all_met_fps());
        // Ids are remapped per shard.
        for shard in 0..3u32 {
            let id = StreamId(0).with_shard(shard);
            assert_eq!(results.report(id).unwrap().completed(), 45);
        }
        assert_eq!(results.used_tpus(), 3);
    }

    #[test]
    fn exports_ring_route_to_the_next_shard() {
        let mut sw = ShardedWorld::new((0..2).map(|_| cluster(1)), Features::all());
        sw.admit_stream(
            0,
            StreamSpec::builder("exporter", "ssd-mobilenet-v2")
                .frame_limit(30)
                .export_completions(true)
                .build(),
        )
        .unwrap();
        sw.admit_stream(1, spec("quiet", 30)).unwrap();
        let exported = {
            let results = sw.run_to_completion(SimTime::from_secs(10));
            results.remote_ingest().count()
        };
        // Every completion of the export-flagged stream (and only those)
        // crossed the barrier into shard 1's ingest sketch.
        assert_eq!(exported, 30);
    }

    #[test]
    fn commands_fire_at_their_instant_in_submission_order() {
        let mut sw = ShardedWorld::new(vec![cluster(1)], Features::all());
        let cam = sw.admit_stream(0, spec("cam", 1_000)).unwrap();
        // Removing twice at the same instant: the first wins, the second
        // fails and is counted.
        let at = SimTime::from_secs(2);
        sw.schedule_command(at, 0, WorldCommand::Remove(cam.local));
        sw.schedule_command(at, 0, WorldCommand::Remove(cam.local));
        let results = sw.run_to_completion(SimTime::from_secs(60));
        assert_eq!(results.commands_failed(), 1);
        // ~2 s at 15 FPS: far fewer than 1 000 frames completed.
        let completed = results.report(cam.packed()).unwrap().completed();
        assert!((25..40).contains(&completed), "completed {completed}");
    }

    #[test]
    fn mid_run_admission_rides_the_mailbox() {
        let mut sw = ShardedWorld::new(vec![cluster(1)], Features::all());
        sw.schedule_command(
            SimTime::from_secs(1),
            0,
            WorldCommand::Admit(Box::new(spec("late", 15))),
        );
        let results = sw.run_to_completion(SimTime::from_secs(30));
        assert_eq!(results.commands_failed(), 0);
        assert_eq!(results.reports().len(), 1);
        assert_eq!(results.reports()[0].completed(), 15);
    }

    #[test]
    fn single_shard_matches_plain_world() {
        // The differential oracle in miniature: a 1-shard sharded world is
        // byte-identical to the plain World it wraps.
        let build = || {
            let mut w = World::new(cluster(2), Features::all());
            for i in 0..4 {
                w.admit_stream(spec(&format!("cam-{i}"), 60)).unwrap();
            }
            w
        };
        let deadline = SimTime::from_secs(30);
        let mut sw = ShardedWorld::new(vec![cluster(2)], Features::all());
        for i in 0..4 {
            sw.admit_stream(0, spec(&format!("cam-{i}"), 60)).unwrap();
        }
        let sharded = sw.run_to_completion(deadline);
        let mut plain = build();
        plain.run_until(deadline);
        let oracle = plain.finish(sharded.end());
        assert_eq!(format!("{oracle:?}"), format!("{sharded:?}"));
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let build = || {
            let mut sw = ShardedWorld::new((0..4).map(|_| cluster(1)), Features::all());
            for shard in 0..4 {
                sw.admit_stream(
                    shard,
                    StreamSpec::builder(&format!("cam-{shard}"), "ssd-mobilenet-v2")
                        .frame_limit(40)
                        .export_completions(shard.is_multiple_of(2))
                        .build(),
                )
                .unwrap();
            }
            sw
        };
        let deadline = SimTime::from_secs(20);
        let serial = format!("{:?}", build().run_with_workers(deadline, 1));
        for workers in [2, 8] {
            let parallel = format!("{:?}", build().run_with_workers(deadline, workers));
            assert_eq!(serial, parallel, "diverged at {workers} workers");
        }
    }

    #[test]
    #[should_panic(expected = "behind the barrier")]
    fn commands_cannot_be_scheduled_in_the_past() {
        let mut sw = ShardedWorld::new(vec![cluster(1)], Features::all());
        sw.now = SimTime::from_secs(5);
        sw.schedule_command(SimTime::from_secs(1), 0, WorldCommand::Remove(StreamId(0)));
    }
}
