//! Sharded single-replay parallelism: one deterministic simulation spanning
//! many per-cluster [`World`] shards.
//!
//! A [`ShardedWorld`] owns one `World` per cluster shard — each with its own
//! event queue, stream slab, TPU pool, and telemetry sketches — and advances
//! all of them in lock-step **epochs**. Within an epoch, shards share no
//! state and run concurrently on the deterministic worker pool
//! ([`microedge_sim::par`]); all cross-shard traffic is exchanged only at
//! the epoch barrier, serially, in a canonical order. That makes the replay
//! bit-identical at any `MICROEDGE_WORKERS` value:
//!
//! 1. **Partition.** Each shard drains its queue through
//!    `EventQueue::pop_due(barrier)` (inclusive), so every event is handled
//!    in exactly one epoch regardless of who else is running.
//! 2. **Align.** After the parallel step, every shard's clock is advanced
//!    to the barrier (`World::advance_to`), so barrier-time deliveries are
//!    legal on all shards.
//! 3. **Exchange.** Outbound frame exports are collected shard-by-shard and
//!    sorted by `(time, source shard, stream id)` — a total order over
//!    messages that does not depend on thread interleaving — then delivered
//!    to the destination shards' queues. Control-plane commands
//!    ([`WorldCommand`]) are released from a global mailbox to their owning
//!    shard the same way, keyed by `(time, submission seq)`.
//!
//! Determinism therefore needs no synchronisation beyond the barrier: the
//! worker pool only decides *when* a shard's epoch runs, never *what* it
//! observes. The per-shard results merge into one fleet-level
//! [`RunResults`] via [`RunResults::merge_shards`] (sketch merges + integer
//! sums), and a single-shard `ShardedWorld` is byte-identical to the plain
//! `World` it wraps — the differential oracle `tests/sharded_determinism.rs`
//! pins down.
//!
//! # Examples
//!
//! ```
//! use microedge_cluster::topology::ClusterBuilder;
//! use microedge_core::config::Features;
//! use microedge_core::runtime::StreamSpec;
//! use microedge_core::shard::ShardedWorld;
//! use microedge_sim::time::SimTime;
//!
//! let clusters = (0..2).map(|_| ClusterBuilder::new().trpis(1).vrpis(2).build());
//! let mut sharded = ShardedWorld::new(clusters, Features::all());
//! for shard in 0..2 {
//!     let spec = StreamSpec::builder(&format!("cam-{shard}"), "ssd-mobilenet-v2")
//!         .frame_limit(30)
//!         .export_completions(true)
//!         .build();
//!     sharded.admit_stream(shard, spec).unwrap();
//! }
//! let results = sharded.run_to_completion(SimTime::from_secs(10));
//! assert_eq!(results.reports().len(), 2);
//! // Each shard's exports were ingested by its neighbour.
//! assert_eq!(results.remote_ingest().count(), 60);
//! ```

use std::collections::BTreeMap;

use microedge_cluster::topology::Cluster;
use microedge_metrics::recovery::{AvailabilityTracker, RecoveryBreakdown, RecoveryRecorder};
use microedge_sim::par;
use microedge_sim::rng::splitmix64;
use microedge_sim::time::{SimDuration, SimTime};

use crate::config::Features;
use crate::defrag::DefragConfig;
use crate::faults::{ChaosConfig, DetectionModel, FaultSchedule, HealPolicy};
use crate::fleet::{ClusterId, ClusterSummary, FrontDoor, PlacementStats};
use crate::net::{NetConfig, NetReport, Transport};
use crate::runtime::{FrameExport, RunResults, StreamId, StreamSpec, World, WorldCommand};
use crate::scheduler::DeployError;

/// A stream id qualified by its owning shard — the stable identity
/// cross-shard messages and merged results are keyed by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct GlobalStreamId {
    /// Index of the owning shard.
    pub shard: u32,
    /// The shard-local id.
    pub local: StreamId,
}

impl GlobalStreamId {
    /// The packed id merged [`RunResults`] are keyed by.
    #[must_use]
    pub fn packed(self) -> StreamId {
        self.local.with_shard(self.shard)
    }
}

/// A control-plane command waiting in the global mailbox.
#[derive(Debug, Clone)]
struct PendingCommand {
    at: SimTime,
    /// Submission order: the tie-breaker for commands at the same instant.
    seq: u64,
    shard: u32,
    cmd: WorldCommand,
}

/// A fleet-level operation waiting for its instant: resolved through the
/// front door when released, sharing the `(at, seq)` total order with the
/// per-shard command mailbox — an admission submitted before a cluster
/// kill still sees that cluster alive.
#[derive(Debug, Clone)]
enum FleetOp {
    /// Admit a stream wherever the front door places it.
    Admit {
        home_region: u32,
        spec: Box<StreamSpec>,
    },
    /// Whole-cluster failure: drain the cluster's summary and evacuate
    /// every stream it serves.
    Kill(ClusterId),
}

#[derive(Debug, Clone)]
struct PendingFleetOp {
    at: SimTime,
    seq: u64,
    op: FleetOp,
}

/// A displaced stream awaiting global re-placement at an epoch barrier.
#[derive(Debug, Clone)]
struct PendingEvacuee {
    /// Packed global id of the evacuated incarnation.
    origin: StreamId,
    /// Region of the cluster that died — re-placement prefers staying
    /// close to the stream's original locality.
    home_region: u32,
    /// When the cluster died.
    fault_at: SimTime,
    /// The barrier at which the front door learned of the death.
    detected_at: SimTime,
    /// Failed re-placement attempts so far (drives the backoff and the
    /// give-up below).
    attempts: u32,
    /// Earliest barrier of the next attempt.
    next_try: SimTime,
    spec: StreamSpec,
}

/// Re-placement attempts per evacuee before the fleet gives up. With the
/// default [`HealPolicy`] ladder (1/2/4/8… s, ±25%) the budget spans
/// roughly half a minute of simulated retrying.
pub const EVAC_MAX_ATTEMPTS: u32 = 6;

/// Typed terminal outcome of an evacuee the fleet stopped retrying. The
/// stream's outage span stays open, so its `metrics::recovery`
/// availability tracker records it lost, and [`FleetReport::unplaced`]
/// accounts for it alongside the still-waiting evacuees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvacGiveUp {
    /// The retry budget ([`EVAC_MAX_ATTEMPTS`]) ran out with no cluster
    /// able to take the stream.
    AttemptsExhausted {
        /// Attempts made.
        attempts: u32,
    },
    /// The stream's model has no profile: no cluster can ever host it.
    UnknownModel,
}

impl std::fmt::Display for EvacGiveUp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvacGiveUp::AttemptsExhausted { attempts } => {
                write!(f, "gave up after {attempts} re-placement attempts")
            }
            EvacGiveUp::UnknownModel => write!(f, "no cluster can host an unknown model"),
        }
    }
}

/// Deterministic fleet-tier outcome counters of one sharded run — the
/// front door's placement statistics plus the whole-cluster-failure story.
/// Fully determined by the workload, so it participates in byte-compared
/// artifacts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetReport {
    /// Front-door placement counters (home/spill/fallback/rejections).
    pub placement: PlacementStats,
    /// Clusters killed via [`ShardedWorld::kill_cluster`].
    pub clusters_killed: u64,
    /// Streams displaced by cluster deaths.
    pub evacuated: u64,
    /// Evacuees successfully re-admitted on a surviving cluster.
    pub readmitted: u64,
    /// Re-admission attempts the destination cluster refused (the summary
    /// was optimistic); the evacuee retries at a later barrier.
    pub readmit_failures: u64,
    /// Evacuees never re-placed by end of run (counted lost): the
    /// still-waiting plus the abandoned (`gave_up`).
    pub unplaced: u64,
    /// Evacuees abandoned with a typed [`EvacGiveUp`] after exhausting
    /// their retry budget (a subset of `unplaced`).
    pub gave_up: u64,
    /// Global admissions the front door could not place anywhere (or whose
    /// demand could not be estimated).
    pub admit_rejected: u64,
}

/// All fleet-tier state: the front door plus the bookkeeping the sharded
/// replay drives serially at epoch barriers.
#[derive(Debug)]
struct FleetState {
    door: FrontDoor,
    ops: Vec<PendingFleetOp>,
    /// Clusters killed so far — their summaries stay drained (a barrier
    /// refresh would otherwise resurrect them from their idle pools).
    dead: Vec<bool>,
    /// Evacuees the fleet could not re-place yet, FIFO; each carries its
    /// attempt count and jittered-backoff wake-up.
    retry: Vec<PendingEvacuee>,
    /// Backoff ladder between re-placement attempts.
    heal: HealPolicy,
    /// Typed terminal outcomes of abandoned evacuees, in give-up order.
    give_ups: Vec<(StreamId, EvacGiveUp)>,
    /// Open/closed outage spans per evacuated incarnation, by packed id.
    trackers: BTreeMap<StreamId, AvailabilityTracker>,
    /// Fleet-level recovery breakdowns (detection = barrier lag,
    /// rescheduling = barriers spent waiting for capacity).
    recorder: RecoveryRecorder,
    /// Evacuee → re-admitted incarnation, packed ids.
    lineage: Vec<(StreamId, StreamId)>,
    report: FleetReport,
}

/// A control message riding the lossy network: submitted at `at`, it
/// attempts delivery to shard `dest`, retransmitting on loss until the
/// policy's attempt budget runs out.
#[derive(Debug, Clone)]
struct PendingNetCommand {
    /// Submission order — the draw key and the deterministic tie-breaker.
    seq: u64,
    dest: u32,
    /// Wire attempts already made.
    attempts: u32,
    /// Instant of the next attempt.
    next_attempt: SimTime,
    cmd: WorldCommand,
}

/// The network plane of a sharded replay: the message-level [`Transport`]
/// plus the queueing and detector state the barrier loop drives serially —
/// pending control retransmissions, per-link heartbeat bookkeeping, and
/// the bounded-staleness view the front door places against.
#[derive(Debug)]
struct NetPlane {
    transport: Transport,
    detection: DetectionModel,
    staleness_bound: SimDuration,
    /// Control messages awaiting delivery or give-up.
    pending: Vec<PendingNetCommand>,
    /// Last heartbeat instant heard from each cluster.
    last_heard: Vec<SimTime>,
    /// Index of each cluster's next heartbeat tick.
    hb_next: Vec<u64>,
    /// Clusters whose lease has expired at the fleet-level detector.
    suspect: Vec<bool>,
    /// `true` when the open suspicion is a gray failure (the cluster was
    /// alive — only its link was down); these reconcile when heartbeats
    /// resume.
    gray: Vec<bool>,
    suspect_since: Vec<SimTime>,
    /// Live streams on each cluster when its suspicion opened.
    affected: Vec<u64>,
    /// Last barrier whose summary refresh got through, per cluster.
    last_refresh: Vec<SimTime>,
    /// Clusters currently drained for exceeding the staleness bound.
    stale: Vec<bool>,
    report: NetReport,
}

/// Domain separator of summary-refresh telemetry keys (frame exports key
/// by send instant and stream id; refreshes by barrier alone).
const REFRESH_KEY_SALT: u64 = 0x5245_4652_4553_4800;

/// The default epoch length: half a second of simulated time. Long enough
/// that barrier overhead vanishes against millions of events per epoch,
/// short enough that cross-shard latency (messages ride at earliest the
/// next barrier) stays below a frame interval at 1 FPS.
pub const DEFAULT_EPOCH: SimDuration = SimDuration::from_millis(500);

/// A deterministic multi-cluster simulation: per-cluster [`World`] shards
/// advanced in lock-step epochs with barrier-exchanged cross-shard traffic.
/// See the [module docs](self) for the determinism argument.
#[derive(Debug)]
pub struct ShardedWorld {
    shards: Vec<World>,
    epoch: SimDuration,
    /// The last completed barrier (all shard clocks are aligned to it
    /// between epochs).
    now: SimTime,
    /// Commands not yet released to their owning shard.
    mailbox: Vec<PendingCommand>,
    next_seq: u64,
    exports_routed: u64,
    /// The fleet front door and its bookkeeping, armed by
    /// [`ShardedWorld::with_front_door`].
    fleet: Option<Box<FleetState>>,
    /// The lossy-network plane, armed by [`ShardedWorld::with_network`].
    net: Option<Box<NetPlane>>,
}

/// The dense shard-table slot for a `u32` shard id.
fn shard_index(shard: u32) -> usize {
    usize::try_from(shard).expect("u32 shard id fits usize")
}

impl ShardedWorld {
    /// Builds one shard per cluster with the built-in catalog and shipped
    /// policy (the same defaults as [`World::new`]) and the
    /// [`DEFAULT_EPOCH`] barrier interval.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is empty or any cluster has no TPUs.
    #[must_use]
    pub fn new(clusters: impl IntoIterator<Item = Cluster>, features: Features) -> Self {
        let shards: Vec<World> = clusters
            .into_iter()
            .map(|c| World::new(c, features))
            .collect();
        assert!(
            !shards.is_empty(),
            "a sharded world needs at least one shard"
        );
        ShardedWorld {
            shards,
            epoch: DEFAULT_EPOCH,
            now: SimTime::ZERO,
            mailbox: Vec::new(),
            next_seq: 0,
            exports_routed: 0,
            fleet: None,
            net: None,
        }
    }

    /// Arms the federated front door ([`crate::fleet`]) over this fleet:
    /// the clusters are partitioned into `regions` contiguous regions and
    /// global admissions probe the home region first, then up to `spill`
    /// neighbouring regions per side, then the whole fleet. Summaries seed
    /// from the current pools and refresh from each shard's capacity index
    /// at every epoch barrier.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ regions ≤ shard count`.
    #[must_use]
    pub fn with_front_door(mut self, regions: u32, spill: u32) -> Self {
        let summaries: Vec<ClusterSummary> = self
            .shards
            .iter()
            .map(|shard| {
                ClusterSummary::from_pool(
                    shard.scheduler().pool().capacity_summary(),
                    u64::try_from(shard.active_streams()).expect("stream count fits u64"),
                )
            })
            .collect();
        self.fleet = Some(Box::new(FleetState {
            door: FrontDoor::new(summaries, regions, spill),
            ops: Vec::new(),
            dead: vec![false; self.shards.len()],
            retry: Vec::new(),
            heal: HealPolicy::default(),
            give_ups: Vec::new(),
            trackers: BTreeMap::new(),
            recorder: RecoveryRecorder::new(),
            lineage: Vec::new(),
            report: FleetReport::default(),
        }));
        self
    }

    /// Arms the lossy-network plane ([`crate::net`]): every cross-shard
    /// message — frame exports, control commands, fleet admissions — rides
    /// cluster `i`'s uplink (link `i`) under the scheduled
    /// [`crate::net::LinkState`]s, and each cluster heartbeats the fleet
    /// over the same link so lossy/partitioned links starve the lease
    /// detector into false-positive suspicions. Works with or without a
    /// front door; with one, suspicions drain placements and summary
    /// refreshes become best-effort with bounded staleness.
    #[must_use]
    pub fn with_network(mut self, cfg: NetConfig) -> Self {
        let links = self.shards.len();
        self.net = Some(Box::new(NetPlane {
            transport: Transport::new(links, cfg.schedule, cfg.seed, cfg.retransmit),
            detection: cfg.detection,
            staleness_bound: cfg.staleness_bound,
            pending: Vec::new(),
            last_heard: vec![SimTime::ZERO; links],
            hb_next: vec![1; links],
            suspect: vec![false; links],
            gray: vec![false; links],
            suspect_since: vec![SimTime::ZERO; links],
            affected: vec![0; links],
            last_refresh: vec![SimTime::ZERO; links],
            stale: vec![false; links],
            report: NetReport {
                suspicion_ns: vec![0; links],
                ..NetReport::default()
            },
        }));
        self
    }

    /// Overrides the epoch length (barrier interval).
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is zero.
    #[must_use]
    pub fn with_epoch(mut self, epoch: SimDuration) -> Self {
        assert!(epoch > SimDuration::ZERO, "epoch must be positive");
        self.epoch = epoch;
        self
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The last completed epoch barrier.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Cross-shard frame exports delivered so far.
    #[must_use]
    pub fn exports_routed(&self) -> u64 {
        self.exports_routed
    }

    /// Direct access to a shard (read-only; pre-run setup beyond admission
    /// goes through [`ShardedWorld::shard_mut`]).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn shard(&self, shard: u32) -> &World {
        &self.shards[shard_index(shard)]
    }

    /// Mutable access to a shard for pre-run configuration (data-plane
    /// overrides, direct fault scheduling). Mid-run mutation must go
    /// through the command mailbox instead, or determinism is forfeit.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_mut(&mut self, shard: u32) -> &mut World {
        &mut self.shards[shard_index(shard)]
    }

    /// Admits a stream on `shard` at the shard's current clock (normally
    /// before the first epoch; mid-run admissions ride the mailbox via
    /// [`WorldCommand::Admit`]).
    ///
    /// # Errors
    ///
    /// See [`World::admit_stream`].
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn admit_stream(
        &mut self,
        shard: u32,
        spec: StreamSpec,
    ) -> Result<GlobalStreamId, DeployError> {
        let local = self.shards[shard_index(shard)].admit_stream(spec)?;
        Ok(GlobalStreamId { shard, local })
    }

    /// Arms chaos mode on every shard (fault detection, self-healing).
    pub fn enable_chaos(&mut self, config: ChaosConfig) {
        for shard in &mut self.shards {
            shard.enable_chaos(config);
        }
    }

    /// Arms the background defragmenter on every shard. Cycles run at
    /// epoch barriers (every `config.interval_epochs` of them), in the
    /// serial barrier step and in shard order, on each shard's quiescent
    /// local state — so repacking is byte-identical at any worker count.
    pub fn enable_defrag(&mut self, config: DefragConfig) {
        for shard in &mut self.shards {
            shard.enable_defrag(config);
        }
    }

    /// Submits a control-plane command for `shard`, to fire at `at`. The
    /// command waits in the global mailbox and is released to the shard at
    /// the epoch barrier covering its timestamp; commands at the same
    /// instant fire in submission order.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the last completed barrier.
    pub fn schedule_command(&mut self, at: SimTime, shard: u32, cmd: WorldCommand) {
        assert!(
            at >= self.now,
            "cannot schedule a command at {at} behind the barrier {now}",
            now = self.now
        );
        assert!(
            shard_index(shard) < self.shards.len(),
            "shard {shard} out of range"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.mailbox.push(PendingCommand {
            at,
            seq,
            shard,
            cmd,
        });
    }

    /// Schedules a fault trace for `shard` through the command mailbox
    /// (arming chaos mode on that shard with the default config first, as
    /// [`World::inject_faults`] does).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn inject_faults(&mut self, shard: u32, schedule: &FaultSchedule) {
        if !self.shards[shard_index(shard)].chaos_enabled() {
            self.shards[shard_index(shard)].enable_chaos(ChaosConfig::default());
        }
        for ev in schedule.events() {
            if ev.at < self.now {
                continue;
            }
            self.schedule_command(ev.at, shard, WorldCommand::Fault(ev.kind));
        }
    }

    /// Submits a globally-placed admission: when `at` is released the
    /// front door picks a cluster — home region first, then up to `spill`
    /// neighbouring regions, then the whole fleet — and routes the stream
    /// into that shard's mailbox. Shares the `(at, seq)` total order with
    /// [`ShardedWorld::schedule_command`], so an admission submitted
    /// before a [`ShardedWorld::kill_cluster`] at the same instant still
    /// sees the cluster alive.
    ///
    /// # Panics
    ///
    /// Panics without a front door, if `at` precedes the last completed
    /// barrier, or if `home_region` is out of range.
    pub fn admit_global(&mut self, at: SimTime, home_region: u32, spec: StreamSpec) {
        assert!(
            at >= self.now,
            "cannot admit at {at} behind the barrier {now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let fleet = self
            .fleet
            .as_mut()
            .expect("admit_global needs with_front_door");
        assert!(
            home_region < fleet.door.topology().regions(),
            "home region {home_region} out of range"
        );
        fleet.ops.push(PendingFleetOp {
            at,
            seq,
            op: FleetOp::Admit {
                home_region,
                spec: Box::new(spec),
            },
        });
    }

    /// Schedules a whole-cluster failure at `at`: the front door drains
    /// the cluster's summary (no further placements land there) and the
    /// shard evacuates every live stream; evacuees are re-placed on
    /// surviving clusters at the next epoch barrier, with downtime and
    /// recovery breakdowns recorded per stream. Killing an already-dead
    /// cluster is a no-op.
    ///
    /// # Panics
    ///
    /// Panics without a front door, if `at` precedes the last completed
    /// barrier, or if `cluster` is out of range.
    pub fn kill_cluster(&mut self, at: SimTime, cluster: ClusterId) {
        assert!(
            at >= self.now,
            "cannot kill at {at} behind the barrier {now}",
            now = self.now
        );
        assert!(
            (cluster.index()) < self.shards.len(),
            "cluster {id} out of range",
            id = cluster.0
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let fleet = self
            .fleet
            .as_mut()
            .expect("kill_cluster needs with_front_door");
        fleet.ops.push(PendingFleetOp {
            at,
            seq,
            op: FleetOp::Kill(cluster),
        });
    }

    /// Runs epochs until every queue and the mailbox drain (or `deadline`
    /// is reached), then merges the per-shard results. Worker count comes
    /// from `MICROEDGE_WORKERS` / available parallelism, and — the whole
    /// point — does not affect the results, byte for byte.
    #[must_use]
    pub fn run_to_completion(self, deadline: SimTime) -> RunResults {
        let workers = par::worker_count(self.shards.len());
        self.run_with_workers(deadline, workers)
    }

    /// [`ShardedWorld::run_to_completion`] with an explicit worker count
    /// (the determinism tests pin 1/2/8 explicitly).
    ///
    /// # Panics
    ///
    /// Panics if `deadline` precedes the last completed barrier.
    #[must_use]
    pub fn run_with_workers(self, deadline: SimTime, workers: usize) -> RunResults {
        self.run_fleet_with_workers(deadline, workers).0
    }

    /// [`ShardedWorld::run_to_completion`] that also returns the
    /// fleet-tier [`FleetReport`] (all-zero unless a front door was
    /// armed).
    #[must_use]
    pub fn run_fleet_to_completion(self, deadline: SimTime) -> (RunResults, FleetReport) {
        let workers = par::worker_count(self.shards.len());
        self.run_fleet_with_workers(deadline, workers)
    }

    /// [`ShardedWorld::run_fleet_to_completion`] with an explicit worker
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` precedes the last completed barrier.
    #[must_use]
    pub fn run_fleet_with_workers(
        self,
        deadline: SimTime,
        workers: usize,
    ) -> (RunResults, FleetReport) {
        let (results, report, _) = self.run_net_with_workers(deadline, workers);
        (results, report)
    }

    /// [`ShardedWorld::run_fleet_with_workers`] that also returns the
    /// network-tier [`NetReport`] (all-zero unless a network plane was
    /// armed).
    ///
    /// # Panics
    ///
    /// Panics if `deadline` precedes the last completed barrier.
    #[must_use]
    pub fn run_net_with_workers(
        mut self,
        deadline: SimTime,
        workers: usize,
    ) -> (RunResults, FleetReport, NetReport) {
        assert!(deadline >= self.now, "deadline behind the barrier");
        // Release order within a barrier is (time, submission seq) across
        // BOTH queues: direct per-shard commands and fleet ops interleave
        // in one global submission order.
        self.mailbox.sort_by_key(|p| (p.at, p.seq));
        let mailbox = std::mem::take(&mut self.mailbox);
        let mut fleet = self.fleet.take();
        let mut net = self.net.take();
        if let Some(f) = fleet.as_mut() {
            f.ops.sort_by_key(|p| (p.at, p.seq));
        }
        let mut released = 0;
        let mut fleet_released = 0;
        while self.now < deadline {
            let barrier = self
                .now
                .checked_add(self.epoch)
                .unwrap_or(deadline)
                .min(deadline);
            // 0. Advance the link state machines to the epoch's start:
            //    every draw this epoch — control attempts before the run,
            //    exports and heartbeats after — sees the same states.
            if let Some(n) = net.as_mut() {
                n.transport.advance_to(self.now);
            }
            // 1. Release due commands/ops in the global order. Serial and
            //    sorted, so per-shard queue insertion order (and thus event
            //    seq numbers) is identical at any worker count.
            loop {
                let next_direct = mailbox
                    .get(released)
                    .filter(|p| p.at <= barrier)
                    .map(|p| (p.at, p.seq));
                let next_fleet = fleet
                    .as_ref()
                    .and_then(|f| f.ops.get(fleet_released))
                    .filter(|p| p.at <= barrier)
                    .map(|p| (p.at, p.seq));
                let take_direct = match (next_direct, next_fleet) {
                    (None, None) => break,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (Some(d), Some(f)) => d < f,
                };
                if take_direct {
                    let p = &mailbox[released];
                    released += 1;
                    match net.as_mut() {
                        Some(n) => n.submit_control(p.at, p.seq, p.shard, p.cmd.clone()),
                        None => {
                            self.shards[shard_index(p.shard)].schedule_command(p.at, p.cmd.clone())
                        }
                    }
                } else {
                    let f = fleet.as_mut().expect("fleet op implies fleet state");
                    let p = f.ops[fleet_released].clone();
                    fleet_released += 1;
                    release_fleet_op(f, &mut self.shards, net.as_deref_mut(), &p);
                }
            }
            // 1b. Pump the control channel: wire attempts due this epoch
            //     deliver into their shard (possibly delayed past the
            //     barrier), retransmit with capped backoff, or give up.
            if let Some(n) = net.as_mut() {
                n.pump_control(barrier, &mut self.shards);
            }
            // 2. Run every shard to the barrier in parallel. Shards share
            //    nothing, so workers only decide scheduling, not behaviour.
            self.shards = par::par_map_with_workers(
                std::mem::take(&mut self.shards),
                workers,
                move |_, mut shard| {
                    shard.run_until(barrier);
                    shard
                },
            );
            // 3. Barrier: align clocks, then exchange messages in a
            //    canonical (time, source shard, stream) order.
            let mut msgs: Vec<(u32, FrameExport)> = Vec::new();
            for (i, shard) in self.shards.iter_mut().enumerate() {
                shard.advance_to(barrier);
                // With every local event ≤ barrier drained and the clock
                // aligned, the shard is quiescent — the safe instant for
                // the background defragmenter to repack live placements
                // (guard events it schedules land strictly after the
                // barrier). Serial and in shard order: worker-count
                // invariant.
                shard.defrag_epoch();
                let src = u32::try_from(i).expect("shard count fits u32");
                msgs.extend(shard.take_outbox().into_iter().map(|e| (src, e)));
            }
            msgs.sort_by_key(|(src, e)| (e.at, *src, e.stream));
            let k = u32::try_from(self.shards.len()).expect("shard count fits u32");
            for (src, e) in msgs {
                // Ring routing: each shard announces completions to its
                // successor (the aggregation peer). Exports complete inside
                // the epoch but their record instant can overhang the
                // barrier (client post-processing); deliver at that instant,
                // never before the barrier the receiver sits at. Under the
                // network plane the export rides the source's uplink:
                // best-effort — a drop is counted, never retransmitted — and
                // a degraded link's extra delay pushes delivery to a later
                // instant (released at a later barrier, still in the
                // canonical order this serial loop imposes).
                let dest = (src + 1) % k;
                let delivery = match net.as_mut() {
                    Some(n) => {
                        let key = e.at.as_nanos().wrapping_add(splitmix64(e.stream.0));
                        n.transport
                            .send_telemetry(src, key)
                            .map(|t| (e.at + t.extra).max(barrier))
                    }
                    None => Some(e.at.max(barrier)),
                };
                if let Some(at) = delivery {
                    self.shards[shard_index(dest)].schedule_ingest(at, e.latency);
                    self.exports_routed += 1;
                }
            }
            // 3b. Heartbeats: each live cluster beacons the fleet over its
            //     uplink; losses starve the lease detector into (possibly
            //     false-positive) suspicions, resumptions reconcile them.
            if let Some(n) = net.as_mut() {
                n.heartbeats(barrier, &self.shards, fleet.as_deref_mut());
            }
            // 4. Fleet barrier duties: collect evacuees, refresh summaries
            //    from the pools' capacity indexes, re-place the displaced.
            //    Serial and order-canonical, like the exchange above.
            if let Some(f) = fleet.as_mut() {
                exchange_fleet(f, &mut self.shards, net.as_deref_mut(), barrier);
            }
            self.now = barrier;
            let ops_done = fleet.as_ref().is_none_or(|f| {
                // Evacuees that found no home retry at later barriers, but
                // only capacity released by *running* events can unblock
                // them — with every queue empty they can never place.
                fleet_released >= f.ops.len()
            });
            let net_idle = net.as_ref().is_none_or(|n| n.pending.is_empty());
            if released >= mailbox.len()
                && ops_done
                && net_idle
                && self.shards.iter().all(|s| s.pending_events() == 0)
            {
                break;
            }
        }
        let end = self.now.max(SimTime::from_nanos(1));
        let parts: Vec<RunResults> = self
            .shards
            .into_iter()
            .map(|shard| shard.finish(end))
            .collect();
        let mut results = RunResults::merge_shards(parts);
        let report = match fleet {
            Some(f) => finish_fleet(*f, &mut results, end),
            None => FleetReport::default(),
        };
        let net_report = match net {
            Some(n) => n.finish(end),
            None => NetReport::default(),
        };
        (results, report, net_report)
    }
}

impl NetPlane {
    /// Admits a released control command to its destination's uplink, or
    /// sheds it when the link's in-flight window is full (the typed error
    /// is counted; the command simply never reaches the shard).
    fn submit_control(&mut self, at: SimTime, seq: u64, dest: u32, cmd: WorldCommand) {
        if self.transport.submit_control(dest).is_ok() {
            self.pending.push(PendingNetCommand {
                seq,
                dest,
                attempts: 0,
                next_attempt: at,
                cmd,
            });
        }
    }

    /// Resolves every wire attempt due by `barrier`, in deterministic
    /// `(next_attempt, seq)` order: a surviving attempt delivers the
    /// command into its shard (at the attempt instant plus the link's
    /// extra delay — possibly past the barrier, firing next epoch); a lost
    /// attempt backs off and retries, until the budget forces the typed
    /// give-up.
    fn pump_control(&mut self, barrier: SimTime, shards: &mut [World]) {
        if self.pending.is_empty() {
            return;
        }
        self.pending.sort_by_key(|p| (p.next_attempt, p.seq));
        let policy = self.transport.policy();
        let mut still = Vec::new();
        for mut p in std::mem::take(&mut self.pending) {
            let mut resolved = false;
            while p.next_attempt <= barrier {
                p.attempts += 1;
                match self.transport.control_attempt(p.dest, p.seq, p.attempts) {
                    Some(t) => {
                        self.transport.control_delivered(p.dest, t.reordered);
                        shards[shard_index(p.dest)]
                            .schedule_command(p.next_attempt + t.extra, p.cmd.clone());
                        resolved = true;
                        break;
                    }
                    None if p.attempts >= policy.max_attempts => {
                        let _typed = self.transport.control_gave_up(p.dest, p.attempts);
                        resolved = true;
                        break;
                    }
                    None => {
                        p.next_attempt += policy.backoff(p.attempts);
                    }
                }
            }
            if !resolved {
                still.push(p);
            }
        }
        self.pending = still;
    }

    /// Emits every heartbeat tick due by `barrier` (dead clusters stay
    /// silent), then updates the lease detector: a cluster silent past the
    /// lease becomes suspect — a *gray* suspicion if the cluster is in
    /// fact alive, draining its summary so placements avoid it and opening
    /// a suspicion span on its streams; heard-again gray suspects
    /// reconcile, closing the span.
    fn heartbeats(
        &mut self,
        barrier: SimTime,
        shards: &[World],
        mut fleet: Option<&mut FleetState>,
    ) {
        let hb = self.detection.heartbeat;
        if hb.is_zero() {
            return;
        }
        for (link, shard) in shards.iter().enumerate() {
            let l = u32::try_from(link).expect("shard count fits u32");
            let dead = fleet.as_ref().is_some_and(|f| f.dead[link]);
            loop {
                let tick_idx = self.hb_next[link];
                let tick = SimTime::from_nanos(hb.as_nanos().saturating_mul(tick_idx));
                if tick > barrier {
                    break;
                }
                self.hb_next[link] += 1;
                if dead {
                    continue;
                }
                if self.transport.send_heartbeat(l, tick_idx) {
                    self.last_heard[link] = tick;
                }
            }
            let silent = barrier.saturating_since(self.last_heard[link]);
            if !self.suspect[link] && silent > self.detection.lease {
                self.suspect[link] = true;
                self.suspect_since[link] = barrier;
                self.report.detection.detections += 1;
                if dead {
                    // A true positive: the cluster really died. Its outage
                    // accounting already rides the evacuation trackers.
                    self.gray[link] = false;
                    self.affected[link] = 0;
                } else {
                    self.gray[link] = true;
                    self.report.detection.false_positives += 1;
                    let streams =
                        u64::try_from(shard.active_streams()).expect("stream count fits u64");
                    self.affected[link] = streams;
                    self.report.detection.suspected_streams += streams;
                    if let Some(f) = fleet.as_mut() {
                        f.door.drain(ClusterId(l));
                    }
                }
            } else if self.suspect[link]
                && self.gray[link]
                && !dead
                && silent <= self.detection.lease
            {
                self.suspect[link] = false;
                self.gray[link] = false;
                self.report.detection.reconciliations += 1;
                self.report.detection.reconciled_streams += self.affected[link];
                self.affected[link] = 0;
                self.report.suspicion_ns[link] += barrier
                    .saturating_since(self.suspect_since[link])
                    .as_nanos();
                // The summary itself is restored by the next delivered
                // refresh (`exchange_fleet`), which can run this barrier.
            }
        }
    }

    /// Closes still-open gray suspicion spans and freezes the ledgers.
    fn finish(mut self: Box<Self>, end: SimTime) -> NetReport {
        for link in 0..self.suspect.len() {
            if self.suspect[link] && self.gray[link] {
                self.report.suspicion_ns[link] +=
                    end.saturating_since(self.suspect_since[link]).as_nanos();
            }
        }
        self.report.stats = *self.transport.stats();
        self.report
    }
}

/// Resolves one fleet op at its release instant (serial, in the global
/// `(at, seq)` order — deterministic at any worker count).
fn release_fleet_op(
    f: &mut FleetState,
    shards: &mut [World],
    net: Option<&mut NetPlane>,
    p: &PendingFleetOp,
) {
    match &p.op {
        FleetOp::Admit { home_region, spec } => {
            // Shard 0 hosts the profiling service: every cluster shares
            // the model catalog, so any shard's estimate is the fleet's.
            let demand = match shards[0].estimate_demand(spec) {
                Ok(d) => d,
                Err(_) => {
                    f.report.admit_rejected += 1;
                    return;
                }
            };
            match f.door.admit(*home_region, demand) {
                Some(placement) => {
                    // The deploy command rides the destination's uplink:
                    // under the network plane it can be delayed, shed at a
                    // saturated window, or given up after the retransmit
                    // budget — the placement debit stands either way (a
                    // capacity leak the next summary refresh corrects).
                    let dest = placement.cluster.0;
                    let cmd = WorldCommand::Admit(spec.clone());
                    match net {
                        Some(n) => n.submit_control(p.at, p.seq, dest, cmd),
                        None => shards[shard_index(dest)].schedule_command(p.at, cmd),
                    }
                }
                None => f.report.admit_rejected += 1,
            }
        }
        FleetOp::Kill(cluster) => {
            // A cluster death is not a message — nothing rides the network.
            let slot = &mut f.dead[cluster.index()];
            if !*slot {
                *slot = true;
                f.door.drain(*cluster);
                shards[cluster.index()].schedule_command(p.at, WorldCommand::Evacuate);
                f.report.clusters_killed += 1;
            }
        }
    }
}

/// The front door's epoch-barrier duties: collect the epoch's evacuees,
/// refresh every live cluster's summary from its pool's capacity index
/// (ground truth overrides the interim debits), then re-place evacuees on
/// surviving clusters — synchronously, so a refused admission is caught
/// here and retried at a later barrier under the [`HealPolicy`] backoff.
///
/// With the network plane armed, summary refreshes ride the telemetry
/// channel: a dropped refresh leaves the door acting on a stale summary,
/// and a cluster silent past the staleness bound is drained until a
/// refresh gets through again (bounded-staleness reconciliation).
fn exchange_fleet(
    f: &mut FleetState,
    shards: &mut [World],
    mut net: Option<&mut NetPlane>,
    barrier: SimTime,
) {
    // 1. Collect evacuations shard-by-shard (each shard's list is already
    //    in stream-id order). Fresh evacuees are eligible immediately.
    let mut waiting = std::mem::take(&mut f.retry);
    for (i, shard) in shards.iter_mut().enumerate() {
        let src = u32::try_from(i).expect("shard count fits u32");
        let home_region = f.door.topology().region_of(ClusterId(src));
        for ev in shard.take_evacuations() {
            f.trackers
                .entry(ev.stream.with_shard(src))
                .or_default()
                .outage_begins(ev.fault_at);
            f.report.evacuated += 1;
            waiting.push(PendingEvacuee {
                origin: ev.stream.with_shard(src),
                home_region,
                fault_at: ev.fault_at,
                detected_at: barrier,
                attempts: 0,
                next_try: barrier,
                spec: ev.spec,
            });
        }
    }
    // 2. Refresh summaries from the pools (O(1) per unchanged cluster).
    //    Dead clusters stay drained: their idle pools must not resurrect.
    //    Suspected clusters stay drained too — the detector already pulled
    //    them from rotation; reconciliation restores them, not a refresh.
    for (i, shard) in shards.iter().enumerate() {
        let id = u32::try_from(i).expect("shard count fits u32");
        if f.dead[i] {
            continue;
        }
        if let Some(n) = net.as_deref_mut() {
            if n.suspect[i] {
                continue;
            }
            let key = barrier.as_nanos().wrapping_add(REFRESH_KEY_SALT);
            if n.transport.send_telemetry(id, key).is_none() {
                // Refresh lost. The door keeps acting on the stale summary
                // until the staleness bound trips; past it, drain the
                // cluster rather than place against fiction.
                let age = barrier.saturating_since(n.last_refresh[i]);
                if !n.stale[i] && age > n.staleness_bound {
                    n.stale[i] = true;
                    n.report.stale_drains += 1;
                    f.door.drain(ClusterId(id));
                }
                continue;
            }
            n.last_refresh[i] = barrier;
            if n.stale[i] {
                n.stale[i] = false;
                n.report.stale_restores += 1;
            }
        }
        f.door.observe(
            ClusterId(id),
            ClusterSummary::from_pool(
                shard.scheduler().pool().capacity_summary(),
                u64::try_from(shard.active_streams()).expect("stream count fits u64"),
            ),
        );
    }
    // 3. Re-place, FIFO among the due. Admission is synchronous — every
    //    shard's clock sits exactly at the barrier, so admitting here is
    //    legal and the failure signal is immediate. Each failure burns an
    //    attempt and re-arms the jittered backoff; the budget is finite.
    for mut ev in waiting {
        if ev.next_try > barrier {
            f.retry.push(ev);
            continue;
        }
        let demand = match shards[0].estimate_demand(&ev.spec) {
            Ok(d) => d,
            Err(_) => {
                // Unknown model: no cluster can ever host it. Lost, typed.
                f.report.readmit_failures += 1;
                f.report.gave_up += 1;
                f.give_ups.push((ev.origin, EvacGiveUp::UnknownModel));
                continue;
            }
        };
        let placed = f.door.place(ev.home_region, demand).and_then(|placement| {
            let dest = placement.cluster;
            match shards[dest.index()].admit_stream(ev.spec.clone()) {
                Ok(local) => Some((placement, demand, local.with_shard(dest.0))),
                Err(_) => {
                    // The summary was optimistic (intra-barrier staleness,
                    // or fragmentation finer than max_free resolves). Two
                    // defenses shrink this path: the front door tiebreaks
                    // toward the more contiguous candidate, and the
                    // defragmenter compacts pools between barriers. Debit
                    // pessimistically so later evacuees look elsewhere.
                    f.door.commit_placement(dest, demand);
                    f.report.readmit_failures += 1;
                    None
                }
            }
        });
        match placed {
            Some((placement, demand, new_id)) => {
                f.door.record_placement(placement, demand);
                let tracker = f
                    .trackers
                    .get_mut(&ev.origin)
                    .expect("evacuee has an open tracker");
                tracker.outage_ends(barrier);
                tracker.count_restart();
                f.recorder.record(&RecoveryBreakdown::new(
                    ev.detected_at.saturating_since(ev.fault_at),
                    barrier.saturating_since(ev.detected_at),
                    SimDuration::ZERO,
                ));
                f.lineage.push((ev.origin, new_id));
                f.report.readmitted += 1;
            }
            None => {
                ev.attempts += 1;
                if ev.attempts >= EVAC_MAX_ATTEMPTS {
                    f.report.gave_up += 1;
                    f.give_ups.push((
                        ev.origin,
                        EvacGiveUp::AttemptsExhausted {
                            attempts: ev.attempts,
                        },
                    ));
                } else {
                    ev.next_try = barrier + f.heal.backoff(ev.attempts, ev.origin.0);
                    f.retry.push(ev);
                }
            }
        }
    }
}

/// Folds the fleet state into the merged results once the run ends:
/// still-open outages become lost streams, availability spans and
/// recovery breakdowns merge in, lineage links records each re-admission.
fn finish_fleet(f: FleetState, results: &mut RunResults, end: SimTime) -> FleetReport {
    let mut report = f.report;
    report.unplaced = f.retry.len() as u64 + report.gave_up;
    debug_assert_eq!(f.give_ups.len() as u64, report.gave_up);
    report.placement = f.door.stats();
    for (origin, tracker) in f.trackers {
        let lost = tracker.in_outage();
        results.merge_availability(origin, tracker.finish(end, lost));
    }
    results.recovery_mut().merge(&f.recorder);
    for (old, new) in f.lineage {
        results.link_lineage(old, new);
    }
    report
}

#[cfg(test)]
mod tests {
    use microedge_cluster::topology::ClusterBuilder;

    use super::*;
    use crate::net::{DegradedLink, LinkSchedule, LinkState};

    fn cluster(trpis: u32) -> Cluster {
        ClusterBuilder::new().trpis(trpis).vrpis(4).build()
    }

    fn spec(name: &str, frames: u64) -> StreamSpec {
        StreamSpec::builder(name, "ssd-mobilenet-v2")
            .frame_limit(frames)
            .build()
    }

    #[test]
    fn shards_run_independently_and_merge() {
        let mut sw = ShardedWorld::new((0..3).map(|_| cluster(1)), Features::all());
        for shard in 0..3 {
            sw.admit_stream(shard, spec(&format!("cam-{shard}"), 45))
                .unwrap();
        }
        let results = sw.run_to_completion(SimTime::from_secs(30));
        assert_eq!(results.reports().len(), 3);
        assert!(results.all_met_fps());
        // Ids are remapped per shard.
        for shard in 0..3u32 {
            let id = StreamId(0).with_shard(shard);
            assert_eq!(results.report(id).unwrap().completed(), 45);
        }
        assert_eq!(results.used_tpus(), 3);
    }

    #[test]
    fn exports_ring_route_to_the_next_shard() {
        let mut sw = ShardedWorld::new((0..2).map(|_| cluster(1)), Features::all());
        sw.admit_stream(
            0,
            StreamSpec::builder("exporter", "ssd-mobilenet-v2")
                .frame_limit(30)
                .export_completions(true)
                .build(),
        )
        .unwrap();
        sw.admit_stream(1, spec("quiet", 30)).unwrap();
        let exported = {
            let results = sw.run_to_completion(SimTime::from_secs(10));
            results.remote_ingest().count()
        };
        // Every completion of the export-flagged stream (and only those)
        // crossed the barrier into shard 1's ingest sketch.
        assert_eq!(exported, 30);
    }

    #[test]
    fn commands_fire_at_their_instant_in_submission_order() {
        let mut sw = ShardedWorld::new(vec![cluster(1)], Features::all());
        let cam = sw.admit_stream(0, spec("cam", 1_000)).unwrap();
        // Removing twice at the same instant: the first wins, the second
        // fails and is counted.
        let at = SimTime::from_secs(2);
        sw.schedule_command(at, 0, WorldCommand::Remove(cam.local));
        sw.schedule_command(at, 0, WorldCommand::Remove(cam.local));
        let results = sw.run_to_completion(SimTime::from_secs(60));
        assert_eq!(results.commands_failed(), 1);
        // ~2 s at 15 FPS: far fewer than 1 000 frames completed.
        let completed = results.report(cam.packed()).unwrap().completed();
        assert!((25..40).contains(&completed), "completed {completed}");
    }

    #[test]
    fn mid_run_admission_rides_the_mailbox() {
        let mut sw = ShardedWorld::new(vec![cluster(1)], Features::all());
        sw.schedule_command(
            SimTime::from_secs(1),
            0,
            WorldCommand::Admit(Box::new(spec("late", 15))),
        );
        let results = sw.run_to_completion(SimTime::from_secs(30));
        assert_eq!(results.commands_failed(), 0);
        assert_eq!(results.reports().len(), 1);
        assert_eq!(results.reports()[0].completed(), 15);
    }

    #[test]
    fn single_shard_matches_plain_world() {
        // The differential oracle in miniature: a 1-shard sharded world is
        // byte-identical to the plain World it wraps.
        let build = || {
            let mut w = World::new(cluster(2), Features::all());
            for i in 0..4 {
                w.admit_stream(spec(&format!("cam-{i}"), 60)).unwrap();
            }
            w
        };
        let deadline = SimTime::from_secs(30);
        let mut sw = ShardedWorld::new(vec![cluster(2)], Features::all());
        for i in 0..4 {
            sw.admit_stream(0, spec(&format!("cam-{i}"), 60)).unwrap();
        }
        let sharded = sw.run_to_completion(deadline);
        let mut plain = build();
        plain.run_until(deadline);
        let oracle = plain.finish(sharded.end());
        assert_eq!(format!("{oracle:?}"), format!("{sharded:?}"));
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let build = || {
            let mut sw = ShardedWorld::new((0..4).map(|_| cluster(1)), Features::all());
            for shard in 0..4 {
                sw.admit_stream(
                    shard,
                    StreamSpec::builder(&format!("cam-{shard}"), "ssd-mobilenet-v2")
                        .frame_limit(40)
                        .export_completions(shard.is_multiple_of(2))
                        .build(),
                )
                .unwrap();
            }
            sw
        };
        let deadline = SimTime::from_secs(20);
        let serial = format!("{:?}", build().run_with_workers(deadline, 1));
        for workers in [2, 8] {
            let parallel = format!("{:?}", build().run_with_workers(deadline, workers));
            assert_eq!(serial, parallel, "diverged at {workers} workers");
        }
    }

    #[test]
    #[should_panic(expected = "behind the barrier")]
    fn commands_cannot_be_scheduled_in_the_past() {
        let mut sw = ShardedWorld::new(vec![cluster(1)], Features::all());
        sw.now = SimTime::from_secs(5);
        sw.schedule_command(SimTime::from_secs(1), 0, WorldCommand::Remove(StreamId(0)));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn packed_ids_reject_overflowing_shard_indexes() {
        // Satellite guard: the shard field is 24 bits wide.
        let _ = StreamId(0).with_shard(1 << 24);
    }

    // ───────────────────────── fleet tier ─────────────────────────

    #[test]
    fn front_door_places_home_first_then_spills() {
        // 4 one-TPU clusters in 2 regions; each cluster hosts two
        // 0.35-unit streams. Five admissions homed in region 0 fill its
        // two clusters (4 homes) and spill the fifth into region 1.
        let mut sw =
            ShardedWorld::new((0..4).map(|_| cluster(1)), Features::all()).with_front_door(2, 1);
        for i in 0..5 {
            sw.admit_global(SimTime::ZERO, 0, spec(&format!("cam-{i}"), 30));
        }
        let (results, report) = sw.run_fleet_to_completion(SimTime::from_secs(30));
        assert_eq!(results.reports().len(), 5);
        assert!(results.all_met_fps());
        assert_eq!(report.placement.admitted, 5);
        assert_eq!(report.placement.home, 4);
        assert_eq!(report.placement.spills, 1);
        assert_eq!(report.placement.fallbacks, 0);
        assert_eq!(report.admit_rejected, 0);
        // The spilled stream landed in region 1 (clusters 2..4).
        let spilled: usize = (2..4)
            .map(|shard| {
                (0..2)
                    .filter(|i| results.report(StreamId(*i).with_shard(shard)).is_some())
                    .count()
            })
            .sum();
        assert_eq!(spilled, 1);
    }

    #[test]
    fn front_door_rejects_when_the_fleet_is_full() {
        let mut sw = ShardedWorld::new(vec![cluster(1)], Features::all()).with_front_door(1, 0);
        for i in 0..3 {
            sw.admit_global(SimTime::ZERO, 0, spec(&format!("cam-{i}"), 15));
        }
        // An unknown model is rejected at demand estimation.
        sw.admit_global(
            SimTime::ZERO,
            0,
            StreamSpec::builder("mystery", "not-a-model")
                .frame_limit(15)
                .build(),
        );
        let (results, report) = sw.run_fleet_to_completion(SimTime::from_secs(30));
        assert_eq!(results.reports().len(), 2);
        assert_eq!(report.placement.admitted, 2);
        assert_eq!(report.placement.rejections, 1);
        assert_eq!(report.admit_rejected, 2);
    }

    #[test]
    fn front_door_sees_load_admitted_before_arming() {
        let mut sw = ShardedWorld::new((0..2).map(|_| cluster(1)), Features::all());
        sw.admit_stream(0, spec("pre-0", 30)).unwrap();
        sw.admit_stream(0, spec("pre-1", 30)).unwrap();
        let mut sw = sw.with_front_door(1, 0);
        sw.admit_global(SimTime::ZERO, 0, spec("late", 30));
        let (results, report) = sw.run_fleet_to_completion(SimTime::from_secs(30));
        // Cluster 0 was already full at arming time, so the global
        // admission lands on cluster 1 — without waiting for a barrier
        // refresh.
        assert_eq!(report.placement.home, 1);
        assert!(results.report(StreamId(0).with_shard(1)).is_some());
    }

    #[test]
    fn killed_cluster_evacuates_and_readmits_on_a_survivor() {
        let mut sw =
            ShardedWorld::new((0..2).map(|_| cluster(1)), Features::all()).with_front_door(1, 0);
        sw.admit_global(SimTime::ZERO, 0, spec("cam", 1_000));
        let fault_at = SimTime::from_millis(2_200);
        sw.kill_cluster(fault_at, ClusterId(0));
        let deadline = SimTime::from_secs(10);
        let (results, report) = sw.run_fleet_with_workers(deadline, 1);
        assert_eq!(report.clusters_killed, 1);
        assert_eq!(report.evacuated, 1);
        assert_eq!(report.readmitted, 1);
        assert_eq!(report.unplaced, 0);
        // Lineage: the origin incarnation on shard 0 was superseded by a
        // fresh stream on shard 1.
        let origin = StreamId(0).with_shard(0);
        let successor = StreamId(0).with_shard(1);
        assert_eq!(results.successor(origin), Some(successor));
        // Both incarnations made progress.
        assert!(results.report(origin).unwrap().completed() > 0);
        assert!(results.report(successor).unwrap().completed() > 0);
        // Downtime spans fault (2.2 s) to the re-admitting barrier
        // (2.5 s): 300 ms, one restart, not lost.
        let avail = &results.availabilities()[&origin];
        assert_eq!(avail.downtime, SimDuration::from_millis(300));
        assert_eq!(avail.restarts, 1);
        assert!(!avail.lost);
        assert_eq!(avail.outages, 1);
        // The fleet recovery breakdown: detection 300 ms (barrier lag),
        // zero rescheduling (placed at the detecting barrier).
        assert_eq!(results.recovery().count(), 1);
    }

    #[test]
    fn evacuees_with_nowhere_to_go_are_lost() {
        let mut sw =
            ShardedWorld::new((0..2).map(|_| cluster(1)), Features::all()).with_front_door(1, 0);
        sw.admit_global(SimTime::ZERO, 0, spec("doomed", 1_000));
        let fault_at = SimTime::from_millis(2_200);
        sw.kill_cluster(fault_at, ClusterId(0));
        sw.kill_cluster(fault_at, ClusterId(1));
        let (results, report) = sw.run_fleet_with_workers(SimTime::from_secs(10), 1);
        assert_eq!(report.clusters_killed, 2);
        assert_eq!(report.evacuated, 1);
        assert_eq!(report.readmitted, 0);
        assert_eq!(report.unplaced, 1);
        let avail = &results.availabilities()[&StreamId(0).with_shard(0)];
        assert!(avail.lost);
        assert!(avail.downtime > SimDuration::ZERO);
    }

    #[test]
    fn killing_a_dead_cluster_is_a_no_op() {
        let mut sw =
            ShardedWorld::new((0..2).map(|_| cluster(1)), Features::all()).with_front_door(1, 0);
        sw.admit_global(SimTime::ZERO, 0, spec("cam", 60));
        sw.kill_cluster(SimTime::from_secs(1), ClusterId(0));
        sw.kill_cluster(SimTime::from_secs(2), ClusterId(0));
        let (_, report) = sw.run_fleet_to_completion(SimTime::from_secs(30));
        assert_eq!(report.clusters_killed, 1);
        assert_eq!(report.evacuated, 1);
    }

    #[test]
    fn fleet_runs_are_worker_invariant() {
        let build = || {
            let mut sw = ShardedWorld::new((0..4).map(|_| cluster(1)), Features::all())
                .with_front_door(2, 1);
            for i in 0..6 {
                sw.admit_global(
                    SimTime::from_millis(200 * i),
                    u32::try_from(i % 2).expect("region fits"),
                    StreamSpec::builder(&format!("cam-{i}"), "ssd-mobilenet-v2")
                        .frame_limit(80)
                        .export_completions(i.is_multiple_of(2))
                        .build(),
                );
            }
            sw.kill_cluster(SimTime::from_millis(3_300), ClusterId(0));
            sw
        };
        let deadline = SimTime::from_secs(20);
        let serial = {
            let (results, report) = build().run_fleet_with_workers(deadline, 1);
            format!("{results:?}|{report:?}")
        };
        for workers in [2, 8] {
            let (results, report) = build().run_fleet_with_workers(deadline, workers);
            let parallel = format!("{results:?}|{report:?}");
            assert_eq!(serial, parallel, "diverged at {workers} workers");
        }
    }

    #[test]
    fn healthy_network_matches_the_no_net_run() {
        // Tier 0 of the net plane is the differential oracle: all-healthy
        // links must reproduce the pre-net run byte for byte.
        let build = |net: bool| {
            let mut sw = ShardedWorld::new((0..2).map(|_| cluster(1)), Features::all())
                .with_front_door(1, 0);
            if net {
                sw = sw.with_network(NetConfig::new(LinkSchedule::scripted(Vec::new())));
            }
            for i in 0..2u32 {
                sw.admit_stream(
                    i,
                    StreamSpec::builder(&format!("cam-{i}"), "ssd-mobilenet-v2")
                        .frame_limit(60)
                        .export_completions(true)
                        .build(),
                )
                .unwrap();
            }
            sw.admit_global(SimTime::from_secs(1), 0, spec("late", 30));
            sw
        };
        let deadline = SimTime::from_secs(20);
        let (plain_r, plain_f, plain_n) = build(false).run_net_with_workers(deadline, 1);
        let (net_r, net_f, net_n) = build(true).run_net_with_workers(deadline, 1);
        assert_eq!(
            format!("{plain_r:?}|{plain_f:?}"),
            format!("{net_r:?}|{net_f:?}")
        );
        assert_eq!(plain_n, NetReport::default());
        // The armed plane carried real traffic — losslessly.
        assert!(net_n.stats.control.sent >= 1);
        assert_eq!(net_n.stats.control.delivered, net_n.stats.control.sent);
        assert!(net_n.stats.telemetry.sent > 0);
        assert_eq!(net_n.stats.telemetry.dropped, 0);
        assert!(net_n.stats.heartbeat.sent > 0);
        assert_eq!(net_n.stats.conservation_violations(), 0);
        assert_eq!(net_n.detection.detections, 0);
    }

    #[test]
    fn partitioned_uplink_drops_exports_and_suspects_the_cluster() {
        let schedule = LinkSchedule::scripted(vec![(SimTime::ZERO, 0, LinkState::Partitioned)]);
        let mut sw = ShardedWorld::new((0..2).map(|_| cluster(1)), Features::all())
            .with_network(NetConfig::new(schedule));
        sw.admit_stream(
            0,
            StreamSpec::builder("cam", "ssd-mobilenet-v2")
                .frame_limit(1_000)
                .export_completions(true)
                .build(),
        )
        .unwrap();
        let (_, _, net) = sw.run_net_with_workers(SimTime::from_secs(20), 1);
        // Best effort: every export was attempted, none arrived, all were
        // counted — and never retransmitted.
        assert!(net.stats.telemetry.sent > 0);
        assert_eq!(net.stats.telemetry.delivered, 0);
        assert_eq!(net.stats.telemetry.dropped, net.stats.telemetry.sent);
        assert_eq!(net.stats.telemetry.retransmits, 0);
        assert_eq!(net.stats.conservation_violations(), 0);
        // The silent uplink starved the lease detector into suspecting a
        // perfectly alive cluster.
        assert!(net.detection.false_positives >= 1);
        assert!(net.suspicion_ns[0] > 0);
    }

    #[test]
    fn control_retransmits_across_a_flap_and_delivers() {
        let schedule = LinkSchedule::scripted(vec![
            (SimTime::ZERO, 0, LinkState::Partitioned),
            (SimTime::from_millis(2_500), 0, LinkState::Healthy),
        ]);
        let mut sw = ShardedWorld::new(vec![cluster(1)], Features::all())
            .with_network(NetConfig::new(schedule));
        sw.schedule_command(
            SimTime::from_secs(1),
            0,
            WorldCommand::Admit(Box::new(spec("late", 15))),
        );
        let (results, _, net) = sw.run_net_with_workers(SimTime::from_secs(30), 1);
        assert_eq!(net.stats.control.sent, 1);
        assert_eq!(net.stats.control.delivered, 1);
        assert!(net.stats.control.retransmits >= 1);
        assert_eq!(net.stats.control.gave_up, 0);
        assert_eq!(net.stats.conservation_violations(), 0);
        // The admission arrived late but intact.
        assert_eq!(results.reports().len(), 1);
        assert_eq!(results.reports()[0].completed(), 15);
    }

    #[test]
    fn control_gives_up_under_a_permanent_partition() {
        let schedule = LinkSchedule::scripted(vec![(SimTime::ZERO, 0, LinkState::Partitioned)]);
        let mut sw = ShardedWorld::new(vec![cluster(1)], Features::all())
            .with_network(NetConfig::new(schedule));
        sw.schedule_command(
            SimTime::from_secs(1),
            0,
            WorldCommand::Admit(Box::new(spec("doomed", 15))),
        );
        let (results, _, net) = sw.run_net_with_workers(SimTime::from_secs(60), 1);
        assert_eq!(net.stats.control.sent, 1);
        assert_eq!(net.stats.control.delivered, 0);
        assert_eq!(net.stats.control.gave_up, 1);
        // Exactly-once-or-typed-give-up, never silent loss.
        assert_eq!(net.stats.conservation_violations(), 0);
        assert!(results.reports().is_empty());
    }

    #[test]
    fn gray_failure_suspects_then_reconciles() {
        // The cluster never dies — only its uplink does. The detector
        // false-positives, the door drains the cluster, and the resumed
        // heartbeats reconcile every affected stream.
        let schedule = LinkSchedule::scripted(vec![
            (SimTime::from_secs(2), 0, LinkState::Partitioned),
            (SimTime::from_secs(8), 0, LinkState::Healthy),
        ]);
        let mut sw = ShardedWorld::new((0..2).map(|_| cluster(1)), Features::all())
            .with_front_door(1, 0)
            .with_network(NetConfig::new(schedule));
        sw.admit_stream(0, spec("cam", 10_000)).unwrap();
        let (results, report, net) = sw.run_net_with_workers(SimTime::from_secs(20), 1);
        assert!(net.detection.detections >= 1);
        assert!(net.detection.false_positives >= 1);
        assert!(net.detection.reconciliations >= 1);
        assert_eq!(
            net.detection.reconciled_streams,
            net.detection.suspected_streams
        );
        assert!(net.suspicion_ns[0] > 0);
        assert_eq!(net.suspicion_ns[1], 0);
        // Gray: nothing was actually evacuated or lost; the stream kept
        // completing frames throughout the suspicion.
        assert_eq!(report.evacuated, 0);
        let origin = StreamId(0).with_shard(0);
        assert!(results.report(origin).unwrap().completed() > 0);
    }

    #[test]
    fn stale_summaries_drain_and_restore() {
        // A lease too long to suspect, a partition long enough to trip the
        // staleness bound: the door drains the unheard-from cluster, then
        // restores it on the first delivered refresh.
        let schedule = LinkSchedule::scripted(vec![
            (SimTime::from_secs(2), 0, LinkState::Partitioned),
            (SimTime::from_secs(10), 0, LinkState::Healthy),
        ]);
        let mut cfg = NetConfig::new(schedule);
        cfg.detection = DetectionModel {
            heartbeat: SimDuration::from_secs(1),
            lease: SimDuration::from_secs(30),
        };
        let mut sw = ShardedWorld::new((0..2).map(|_| cluster(1)), Features::all())
            .with_front_door(1, 0)
            .with_network(cfg);
        sw.admit_stream(0, spec("cam", 10_000)).unwrap();
        let (_, _, net) = sw.run_net_with_workers(SimTime::from_secs(20), 1);
        assert_eq!(net.detection.detections, 0);
        assert!(net.stale_drains >= 1);
        assert!(net.stale_restores >= 1);
    }

    #[test]
    fn evacuees_exhaust_their_retry_budget_and_give_up() {
        let mut sw =
            ShardedWorld::new((0..2).map(|_| cluster(1)), Features::all()).with_front_door(1, 0);
        // Fill the survivor so the evacuee never fits, with long-lived
        // streams so barriers keep coming and the retry ladder plays out.
        for i in 0..2u32 {
            sw.admit_stream(1, spec(&format!("busy-{i}"), 10_000))
                .unwrap();
        }
        sw.admit_stream(0, spec("victim", 10_000)).unwrap();
        sw.kill_cluster(SimTime::from_millis(2_200), ClusterId(0));
        let (results, report) = sw.run_fleet_with_workers(SimTime::from_secs(60), 1);
        assert_eq!(report.evacuated, 1);
        assert_eq!(report.readmitted, 0);
        assert_eq!(report.gave_up, 1);
        assert_eq!(report.unplaced, 1);
        let avail = &results.availabilities()[&StreamId(0).with_shard(0)];
        assert!(avail.lost);
    }

    #[test]
    fn net_runs_are_worker_invariant() {
        let build = || {
            let schedule = LinkSchedule::scripted(vec![
                (
                    SimTime::from_millis(1_500),
                    0,
                    LinkState::Degraded(DegradedLink::lossy(100_000)),
                ),
                (SimTime::from_secs(6), 0, LinkState::Healthy),
                (SimTime::from_millis(2_500), 2, LinkState::Partitioned),
                (SimTime::from_secs(9), 2, LinkState::Healthy),
            ]);
            let mut sw = ShardedWorld::new((0..4).map(|_| cluster(1)), Features::all())
                .with_front_door(2, 1)
                .with_network(NetConfig::new(schedule));
            for i in 0..6u64 {
                sw.admit_global(
                    SimTime::from_millis(200 * i),
                    u32::try_from(i % 2).expect("region fits"),
                    StreamSpec::builder(&format!("cam-{i}"), "ssd-mobilenet-v2")
                        .frame_limit(80)
                        .export_completions(i.is_multiple_of(2))
                        .build(),
                );
            }
            sw.kill_cluster(SimTime::from_millis(3_300), ClusterId(0));
            sw
        };
        let deadline = SimTime::from_secs(20);
        let serial = {
            let (r, f, n) = build().run_net_with_workers(deadline, 1);
            format!("{r:?}|{f:?}|{n:?}")
        };
        for workers in [2, 8] {
            let (r, f, n) = build().run_net_with_workers(deadline, workers);
            let parallel = format!("{r:?}|{f:?}|{n:?}");
            assert_eq!(serial, parallel, "diverged at {workers} workers");
        }
    }
}
