//! The extended scheduler's book-keeping view of the TPU fleet.
//!
//! For every TPU Service the control plane tracks its *current load* in TPU
//! units and the set of models loaded on it with reference counts
//! (paper §4.2). Model reclamation is **lazy**: when a pod terminates its
//! model's reference count drops, but the model stays resident until the
//! next co-compilation on that TPU excludes dead models — exactly the
//! behaviour the paper describes under "Resource Reclamation".
//!
//! ## The capacity index
//!
//! Admission control (Algorithm 1) asks two questions per decision: *which
//! TPU with enough free units comes first in scan order?* (the basic pass)
//! and *which TPUs have any room at all?* (the partitioning pass). A naive
//! answer scans every account — O(M) per decision, the exact control-plane
//! cost the paper's §6 scalability argument multiplies by fleet size. The
//! pool therefore maintains a [`CapacityIndex`] incrementally on every
//! [`TpuPool::commit`] / [`TpuPool::release`] / [`TpuPool::fail`] /
//! [`TpuPool::restore`]:
//!
//! - a **max-free segment tree** over TPU ids answers "first available TPU
//!   with id ≥ `start` and free units ≥ `min`" in O(log M) — the query
//!   behind First-Fit and Next-Fit scan order;
//! - **free-units buckets** (a sorted map from exact free value to the
//!   ascending id set) iterate TPUs by free capacity in either direction —
//!   the orders Best-Fit and Worst-Fit need — touching only TPUs that can
//!   actually contribute.
//!
//! Both structures are derived state: they never appear in equality
//! comparisons, and every mutation keeps them exact (no rebuilds).

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use microedge_cluster::node::NodeId;
use microedge_cluster::topology::Cluster;
use microedge_models::profile::{ModelId, ModelProfile};
use microedge_tpu::device::TpuId;
use microedge_tpu::spec::TpuSpec;

use crate::units::TpuUnits;

/// A slice of one TPU granted to a pod: which TPU, and how many units on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    tpu: TpuId,
    units: TpuUnits,
}

impl Allocation {
    /// Creates an allocation.
    ///
    /// # Panics
    ///
    /// Panics if `units` is zero — zero-unit allocations are meaningless and
    /// would corrupt load-balancer weights.
    #[must_use]
    pub fn new(tpu: TpuId, units: TpuUnits) -> Self {
        assert!(!units.is_zero(), "allocation must carry non-zero units");
        Allocation { tpu, units }
    }

    /// The TPU granted.
    #[must_use]
    pub fn tpu(&self) -> TpuId {
        self.tpu
    }

    /// Units granted on that TPU.
    #[must_use]
    pub fn units(&self) -> TpuUnits {
        self.units
    }
}

/// One model resident on a TPU, from the scheduler's point of view.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct LoadedModel {
    id: ModelId,
    bytes: u64,
    refs: u32,
}

/// Scheduler-side state of one TPU Service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TpuAccount {
    id: TpuId,
    node: NodeId,
    load: TpuUnits,
    /// Residency list in load order — the co-compilation priority order.
    models: Vec<LoadedModel>,
    available: bool,
}

impl TpuAccount {
    fn new(id: TpuId, node: NodeId) -> Self {
        TpuAccount {
            id,
            node,
            load: TpuUnits::ZERO,
            models: Vec::new(),
            available: true,
        }
    }

    /// The TPU's identifier.
    #[must_use]
    pub fn id(&self) -> TpuId {
        self.id
    }

    /// The tRPi hosting this TPU.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Cumulative TPU units currently assigned (`CurrentLoad` in
    /// Algorithm 1).
    #[must_use]
    pub fn load(&self) -> TpuUnits {
        self.load
    }

    /// Units still unassigned (`1 − CurrentLoad`).
    #[must_use]
    pub fn free_units(&self) -> TpuUnits {
        TpuUnits::ONE.saturating_sub(self.load)
    }

    /// `false` after a failure injection removed this TPU from service.
    #[must_use]
    pub fn is_available(&self) -> bool {
        self.available
    }

    /// `true` when `model` is resident with at least one live reference.
    #[must_use]
    pub fn has_live_model(&self, model: &ModelId) -> bool {
        self.models.iter().any(|m| m.id == *model && m.refs > 0)
    }

    /// `true` when `model` is resident at all (live or awaiting lazy
    /// eviction).
    #[must_use]
    pub fn has_model(&self, model: &ModelId) -> bool {
        self.models.iter().any(|m| m.id == *model)
    }

    /// Ids of live models in co-compilation priority order.
    #[must_use]
    pub fn live_models(&self) -> Vec<ModelId> {
        self.models
            .iter()
            .filter(|m| m.refs > 0)
            .map(|m| m.id.clone())
            .collect()
    }

    /// Every resident model with its liveness: dead entries are awaiting
    /// lazy eviction at the next co-compile.
    #[must_use]
    pub fn resident_models(&self) -> Vec<(ModelId, bool)> {
        self.models
            .iter()
            .map(|m| (m.id.clone(), m.refs > 0))
            .collect()
    }

    /// Parameter bytes of live models.
    #[must_use]
    pub fn live_bytes(&self) -> u64 {
        self.models
            .iter()
            .filter(|m| m.refs > 0)
            .map(|m| m.bytes)
            .sum()
    }

    /// Free parameter memory given `budget` (`FreeMem` in Algorithm 1).
    /// Dead models do not count against the budget — loading a new model
    /// triggers a co-compilation that excludes them.
    #[must_use]
    pub fn free_mem(&self, budget: u64) -> u64 {
        budget.saturating_sub(self.live_bytes())
    }

    /// Number of distinct live models.
    #[must_use]
    pub fn live_model_count(&self) -> usize {
        self.models.iter().filter(|m| m.refs > 0).count()
    }

    fn add_model_ref(&mut self, model: &ModelId, bytes: u64) -> bool {
        if let Some(entry) = self.models.iter_mut().find(|m| m.id == *model) {
            entry.refs += 1;
            false
        } else {
            // A genuinely new model: this is the co-compile moment, which
            // lazily evicts models whose reference count reached zero.
            self.models.retain(|m| m.refs > 0);
            self.models.push(LoadedModel {
                id: model.clone(),
                bytes,
                refs: 1,
            });
            true
        }
    }

    fn drop_model_ref(&mut self, model: &ModelId) {
        let entry = self
            .models
            .iter_mut()
            .find(|m| m.id == *model && m.refs > 0)
            .unwrap_or_else(|| panic!("releasing model {model} with no live reference"));
        entry.refs -= 1;
    }
}

/// The incrementally maintained capacity index (see the module docs): a
/// max-free segment tree in id order plus exact free-units buckets. Purely
/// derived from the accounts — excluded from pool equality.
#[derive(Debug, Clone, Default)]
struct CapacityIndex {
    /// 1-based complete binary tree; `tree[leaves + id]` is the free
    /// micro-units of TPU `id` (0 when failed), internal nodes hold the max
    /// of their children.
    tree: Vec<u64>,
    /// Leaf count: the smallest power of two ≥ the pool size.
    leaves: usize,
    /// Exact free micro-units → available TPU ids, ascending.
    buckets: BTreeMap<u64, BTreeSet<u32>>,
    /// Sum of free micro-units across available TPUs — kept exact on every
    /// insert/remove so [`TpuPool::capacity_summary`] is O(1).
    total_free: u64,
    /// Number of available (non-failed) TPUs.
    available: u32,
}

impl CapacityIndex {
    fn build(accounts: &[TpuAccount]) -> Self {
        let leaves = accounts.len().next_power_of_two().max(1);
        let mut index = CapacityIndex {
            tree: vec![0; 2 * leaves],
            leaves,
            buckets: BTreeMap::new(),
            total_free: 0,
            available: 0,
        };
        for account in accounts {
            if account.available {
                index.insert(account.id.0, account.free_units().as_micro());
            }
        }
        index
    }

    fn set_leaf(&mut self, id: u32, value: u64) {
        let mut node = self.leaves + usize::try_from(id).expect("u32 tpu id fits usize");
        self.tree[node] = value;
        while node > 1 {
            node /= 2;
            self.tree[node] = self.tree[2 * node].max(self.tree[2 * node + 1]);
        }
    }

    /// Registers an available TPU at the given free capacity.
    fn insert(&mut self, id: u32, free: u64) {
        self.set_leaf(id, free);
        self.buckets.entry(free).or_default().insert(id);
        self.total_free += free;
        self.available += 1;
    }

    /// Unregisters a TPU (it failed): it must not satisfy any query.
    fn remove(&mut self, id: u32, free: u64) {
        self.set_leaf(id, 0);
        if let Some(bucket) = self.buckets.get_mut(&free) {
            bucket.remove(&id);
            if bucket.is_empty() {
                self.buckets.remove(&free);
            }
        }
        self.total_free -= free;
        self.available -= 1;
    }

    /// Moves an available TPU between free-capacity values.
    fn update(&mut self, id: u32, old_free: u64, new_free: u64) {
        if old_free == new_free {
            return;
        }
        self.remove(id, old_free);
        self.insert(id, new_free);
    }

    /// First available TPU with id ≥ `start` and free ≥ `min` (`min` ≥ 1),
    /// in O(log M).
    fn first_with_free(&self, start: u32, min: u64) -> Option<u32> {
        self.descend(
            1,
            0,
            self.leaves,
            usize::try_from(start).expect("u32 tpu id fits usize"),
            min,
        )
    }

    fn descend(&self, node: usize, lo: usize, hi: usize, start: usize, min: u64) -> Option<u32> {
        if hi <= start || self.tree[node] < min {
            return None;
        }
        if hi - lo == 1 {
            return Some(u32::try_from(lo).expect("leaf index fits u32"));
        }
        let mid = (lo + hi) / 2;
        self.descend(2 * node, lo, mid, start, min)
            .or_else(|| self.descend(2 * node + 1, mid, hi, start, min))
    }
}

/// An O(1) snapshot of a pool's aggregate capacity, read straight off the
/// incrementally maintained [`CapacityIndex`] — the raw material for the
/// per-cluster summaries the fleet front door ([`crate::fleet`]) keeps one
/// level up. All unit figures are exact integer micro-units
/// ([`TpuUnits::as_micro`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PoolCapacity {
    /// The largest contiguous free block on any single available TPU — the
    /// biggest single-stage grant this pool can make right now.
    pub max_free_micro: u64,
    /// Sum of free micro-units across available TPUs.
    pub total_free_micro: u64,
    /// Available (non-failed) TPUs.
    pub available_tpus: u32,
    /// All TPUs, failed included.
    pub total_tpus: u32,
}

impl PoolCapacity {
    /// Fragmentation ratio of the pool's free capacity: largest contiguous
    /// free slot over total free units (1.0 when nothing is free). The
    /// gauge the defragmenter drives up and the churn benches report
    /// per round.
    #[must_use]
    pub fn fragmentation_ratio(&self) -> f64 {
        microedge_metrics::defrag::fragmentation_ratio(self.max_free_micro, self.total_free_micro)
    }
}

/// The fleet of TPU Services the extended scheduler allocates from.
///
/// # Examples
///
/// ```
/// use microedge_cluster::topology::ClusterBuilder;
/// use microedge_core::pool::TpuPool;
/// use microedge_core::units::TpuUnits;
/// use microedge_tpu::spec::TpuSpec;
///
/// let cluster = ClusterBuilder::new().trpis(3).vrpis(2).build();
/// let pool = TpuPool::from_cluster(&cluster, TpuSpec::coral_usb());
/// assert_eq!(pool.len(), 3);
/// assert_eq!(pool.total_free_units(), TpuUnits::from_f64(3.0));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TpuPool {
    accounts: Vec<TpuAccount>,
    param_budget: u64,
    index: CapacityIndex,
}

/// Pool equality is logical state only — the derived capacity index is a
/// function of the accounts and takes no part in comparisons.
impl PartialEq for TpuPool {
    fn eq(&self, other: &Self) -> bool {
        self.accounts == other.accounts && self.param_budget == other.param_budget
    }
}

impl Eq for TpuPool {}

impl TpuPool {
    /// Builds a pool with one TPU per tRPi of `cluster`, indexed in node
    /// order (TPU *i* lives on the *i*-th tRPi).
    #[must_use]
    pub fn from_cluster(cluster: &Cluster, spec: TpuSpec) -> Self {
        let accounts: Vec<TpuAccount> = cluster
            .trpis()
            .enumerate()
            .map(|(i, node)| TpuAccount::new(TpuId::from_index(i), node.id()))
            .collect();
        let index = CapacityIndex::build(&accounts);
        TpuPool {
            accounts,
            param_budget: spec.param_budget_bytes(),
            index,
        }
    }

    /// The parameter-memory budget used for the Model Size Rule.
    #[must_use]
    pub fn param_budget(&self) -> u64 {
        self.param_budget
    }

    /// Number of TPUs (including failed ones).
    #[must_use]
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// `true` when the pool has no TPUs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// Accounts in TPU-id order (the order First-Fit scans).
    #[must_use]
    pub fn accounts(&self) -> &[TpuAccount] {
        &self.accounts
    }

    /// The account for `tpu`. O(1): ids are dense — `from_cluster` numbers
    /// TPU *i* as `TpuId(i)`.
    ///
    /// # Panics
    ///
    /// Panics if `tpu` is not in the pool.
    #[must_use]
    pub fn account(&self, tpu: TpuId) -> &TpuAccount {
        self.accounts
            .get(tpu.index())
            .filter(|a| a.id == tpu)
            .unwrap_or_else(|| panic!("unknown TPU {tpu}"))
    }

    fn account_mut(&mut self, tpu: TpuId) -> &mut TpuAccount {
        self.accounts
            .get_mut(tpu.index())
            .filter(|a| a.id == tpu)
            .unwrap_or_else(|| panic!("unknown TPU {tpu}"))
    }

    /// O(1) aggregate capacity snapshot off the incrementally maintained
    /// index: max contiguous free block (the segment-tree root), total free
    /// micro-units, and the available-TPU count. This is what a shard
    /// reports to the fleet front door at every epoch barrier — reading it
    /// never touches the accounts.
    #[must_use]
    pub fn capacity_summary(&self) -> PoolCapacity {
        PoolCapacity {
            max_free_micro: self.index.tree[1],
            total_free_micro: self.index.total_free,
            available_tpus: self.index.available,
            total_tpus: u32::try_from(self.accounts.len()).expect("pool size fits u32"),
        }
    }

    /// Sum of free units across available TPUs.
    #[must_use]
    pub fn total_free_units(&self) -> TpuUnits {
        self.accounts
            .iter()
            .filter(|a| a.available)
            .map(TpuAccount::free_units)
            .sum()
    }

    /// Number of TPUs carrying any load.
    #[must_use]
    pub fn used_tpus(&self) -> usize {
        self.accounts.iter().filter(|a| !a.load.is_zero()).count()
    }

    /// Applies an admission decision: adds load and a model reference on
    /// every allocated TPU. Returns the ids of TPUs on which `model` was
    /// newly loaded (i.e. where a co-compilation was triggered).
    ///
    /// # Panics
    ///
    /// Panics if any allocation oversubscribes its TPU — decisions must come
    /// from an admission policy that already validated the TPU Units Rule.
    pub fn commit(&mut self, model: &ModelProfile, allocations: &[Allocation]) -> Vec<TpuId> {
        // Validate everything before mutating anything, so a bad decision
        // cannot leave the pool half-committed.
        for alloc in allocations {
            let account = self.account(alloc.tpu());
            assert!(
                account
                    .load
                    .checked_add(alloc.units())
                    .is_some_and(|total| total <= TpuUnits::ONE),
                "allocation of {units} on {tpu} violates the TPU Units Rule",
                units = alloc.units(),
                tpu = alloc.tpu(),
            );
        }
        let mut newly_loaded = Vec::new();
        for alloc in allocations {
            let account = self.account_mut(alloc.tpu());
            let old_free = account.free_units().as_micro();
            account.load += alloc.units();
            let new_free = account.free_units().as_micro();
            let tracked = account.available;
            if account.add_model_ref(model.id(), model.param_bytes()) {
                newly_loaded.push(alloc.tpu());
            }
            if tracked {
                self.index.update(alloc.tpu().0, old_free, new_free);
            }
        }
        newly_loaded
    }

    /// Reverses a previous commit: subtracts load and drops one model
    /// reference per allocation. The model itself stays resident until the
    /// next co-compilation (lazy reclamation).
    ///
    /// # Panics
    ///
    /// Panics if the allocations do not correspond to a previous commit.
    pub fn release(&mut self, model: &ModelId, allocations: &[Allocation]) {
        for alloc in allocations {
            let account = self.account_mut(alloc.tpu());
            assert!(
                alloc.units() <= account.load,
                "releasing more units than allocated on {tpu}",
                tpu = alloc.tpu()
            );
            let old_free = account.free_units().as_micro();
            account.load -= alloc.units();
            let new_free = account.free_units().as_micro();
            let tracked = account.available;
            account.drop_model_ref(model);
            if tracked {
                self.index.update(alloc.tpu().0, old_free, new_free);
            }
        }
    }

    /// Marks a TPU as failed: it keeps its state but no longer accepts new
    /// allocations.
    pub fn fail(&mut self, tpu: TpuId) {
        let account = self.account_mut(tpu);
        let was_tracked = account.available;
        let free = account.free_units().as_micro();
        account.available = false;
        if was_tracked {
            self.index.remove(tpu.0, free);
        }
    }

    /// Returns a failed TPU to service.
    pub fn restore(&mut self, tpu: TpuId) {
        let account = self.account_mut(tpu);
        let was_tracked = account.available;
        let free = account.free_units().as_micro();
        account.available = true;
        if !was_tracked {
            self.index.insert(tpu.0, free);
        }
    }

    /// First **available** TPU with id ≥ `start` and at least `min_free`
    /// free units, in O(log M) via the capacity index. `min_free` is
    /// clamped up to one micro-unit, so fully loaded and failed TPUs never
    /// match — callers asking "any room at all?" pass [`TpuUnits::ZERO`].
    #[must_use]
    pub fn next_tpu_with_free(&self, start: TpuId, min_free: TpuUnits) -> Option<TpuId> {
        self.index
            .first_with_free(start.0, min_free.as_micro().max(1))
            .map(TpuId)
    }

    /// Available TPUs with at least `min_free` free units (clamped up to
    /// one micro-unit), least free first, ids ascending within ties — the
    /// Best-Fit scan order, touching only TPUs that can contribute.
    pub fn tpus_by_free_ascending(&self, min_free: TpuUnits) -> impl Iterator<Item = TpuId> + '_ {
        self.index
            .buckets
            .range(min_free.as_micro().max(1)..)
            .flat_map(|(_, ids)| ids.iter().copied().map(TpuId))
    }

    /// Available TPUs with at least `min_free` free units (clamped up to
    /// one micro-unit), most free first, ids ascending within ties — the
    /// Worst-Fit scan order.
    pub fn tpus_by_free_descending(&self, min_free: TpuUnits) -> impl Iterator<Item = TpuId> + '_ {
        self.index
            .buckets
            .range(min_free.as_micro().max(1)..)
            .rev()
            .flat_map(|(_, ids)| ids.iter().copied().map(TpuId))
    }
}

/// A map from pods to their committed assignment, used by the reclamation
/// component.
pub type AssignmentTable = BTreeMap<u64, (ModelId, Vec<Allocation>)>;

/// Renders the pool as an aligned status table (one row per TPU):
/// load, free units, and resident models in co-compile priority order
/// (dead models awaiting lazy eviction are marked `evictable`).
///
/// # Examples
///
/// ```
/// use microedge_cluster::topology::ClusterBuilder;
/// use microedge_core::pool::{render_pool, TpuPool};
/// use microedge_tpu::spec::TpuSpec;
///
/// let cluster = ClusterBuilder::new().trpis(2).vrpis(1).build();
/// let pool = TpuPool::from_cluster(&cluster, TpuSpec::coral_usb());
/// let status = render_pool(&pool);
/// assert!(status.contains("tpu-0"));
/// ```
#[must_use]
pub fn render_pool(pool: &TpuPool) -> String {
    let mut table = microedge_metrics::report::Table::new(&[
        "tpu",
        "node",
        "load",
        "free",
        "state",
        "live models",
    ]);
    for a in pool.accounts() {
        let models: Vec<String> = a
            .resident_models()
            .iter()
            .map(|(id, live)| {
                if *live {
                    id.to_string()
                } else {
                    format!("{id} (evictable)")
                }
            })
            .collect();
        table.row_owned(vec![
            a.id().to_string(),
            a.node().to_string(),
            a.load().to_string(),
            a.free_units().to_string(),
            if a.is_available() { "up" } else { "FAILED" }.to_owned(),
            models.join(", "),
        ]);
    }
    table.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use microedge_cluster::topology::ClusterBuilder;
    use microedge_models::catalog::{mobilenet_v1, ssd_mobilenet_v2, unet_v2};

    fn pool(trpis: u32) -> TpuPool {
        let cluster = ClusterBuilder::new().trpis(trpis).vrpis(1).build();
        TpuPool::from_cluster(&cluster, TpuSpec::coral_usb())
    }

    fn alloc(tpu: u32, units: f64) -> Allocation {
        Allocation::new(TpuId(tpu), TpuUnits::from_f64(units))
    }

    #[test]
    fn pool_indexes_tpus_in_node_order() {
        let p = pool(3);
        assert_eq!(p.len(), 3);
        for (i, account) in p.accounts().iter().enumerate() {
            assert_eq!(account.id(), TpuId::from_index(i));
            assert!(account.is_available());
            assert_eq!(account.load(), TpuUnits::ZERO);
        }
    }

    #[test]
    fn commit_adds_load_and_loads_model_once() {
        let mut p = pool(2);
        let m = ssd_mobilenet_v2();
        let first = p.commit(&m, &[alloc(0, 0.35)]);
        assert_eq!(first, vec![TpuId(0)], "first commit loads the model");
        let second = p.commit(&m, &[alloc(0, 0.35)]);
        assert!(second.is_empty(), "model already resident");
        let a = p.account(TpuId(0));
        assert_eq!(a.load(), TpuUnits::from_f64(0.7));
        assert!(a.has_live_model(m.id()));
        assert_eq!(a.live_bytes(), m.param_bytes());
    }

    #[test]
    fn release_is_lazy_about_model_memory() {
        let mut p = pool(1);
        let m = unet_v2();
        p.commit(&m, &[alloc(0, 0.675)]);
        p.release(m.id(), &[alloc(0, 0.675)]);
        let a = p.account(TpuId(0));
        assert_eq!(a.load(), TpuUnits::ZERO);
        assert!(!a.has_live_model(m.id()), "no live reference");
        assert!(a.has_model(m.id()), "still resident until next co-compile");
        assert_eq!(a.live_bytes(), 0, "dead model frees budget");
    }

    #[test]
    fn cocompile_evicts_dead_models() {
        let mut p = pool(1);
        let dead = unet_v2();
        p.commit(&dead, &[alloc(0, 0.2)]);
        p.release(dead.id(), &[alloc(0, 0.2)]);
        // Loading a different model triggers the co-compile that evicts.
        let live = mobilenet_v1();
        p.commit(&live, &[alloc(0, 0.2)]);
        let a = p.account(TpuId(0));
        assert!(!a.has_model(dead.id()), "dead model evicted at co-compile");
        assert!(a.has_live_model(live.id()));
    }

    #[test]
    fn reusing_dead_model_revives_without_reload() {
        let mut p = pool(1);
        let m = unet_v2();
        p.commit(&m, &[alloc(0, 0.2)]);
        p.release(m.id(), &[alloc(0, 0.2)]);
        let loaded = p.commit(&m, &[alloc(0, 0.2)]);
        assert!(loaded.is_empty(), "model was still resident — no load RPC");
        assert!(p.account(TpuId(0)).has_live_model(m.id()));
    }

    #[test]
    #[should_panic(expected = "TPU Units Rule")]
    fn oversubscription_panics() {
        let mut p = pool(1);
        let m = ssd_mobilenet_v2();
        p.commit(&m, &[alloc(0, 0.7)]);
        p.commit(&m, &[alloc(0, 0.4)]);
    }

    #[test]
    fn failed_tpu_excluded_from_free_units() {
        let mut p = pool(2);
        assert_eq!(p.total_free_units(), TpuUnits::from_f64(2.0));
        p.fail(TpuId(0));
        assert!(!p.account(TpuId(0)).is_available());
        assert_eq!(p.total_free_units(), TpuUnits::from_f64(1.0));
        p.restore(TpuId(0));
        assert_eq!(p.total_free_units(), TpuUnits::from_f64(2.0));
    }

    #[test]
    fn free_mem_tracks_live_models_only() {
        let mut p = pool(1);
        let budget = p.param_budget();
        let m = mobilenet_v1();
        p.commit(&m, &[alloc(0, 0.2)]);
        let a = p.account(TpuId(0));
        assert_eq!(a.free_mem(budget), budget - m.param_bytes());
        assert_eq!(a.live_model_count(), 1);
        assert_eq!(a.live_models(), vec![m.id().clone()]);
    }

    #[test]
    fn used_tpus_counts_loaded_only() {
        let mut p = pool(3);
        p.commit(&unet_v2(), &[alloc(1, 0.5)]);
        assert_eq!(p.used_tpus(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero units")]
    fn zero_unit_allocation_rejected() {
        let _ = Allocation::new(TpuId(0), TpuUnits::ZERO);
    }

    #[test]
    #[should_panic(expected = "unknown TPU")]
    fn unknown_tpu_panics() {
        let p = pool(1);
        let _ = p.account(TpuId(9));
    }

    fn ascending(p: &TpuPool, min: f64) -> Vec<u32> {
        p.tpus_by_free_ascending(TpuUnits::from_f64(min))
            .map(|t| t.0)
            .collect()
    }

    fn descending(p: &TpuPool, min: f64) -> Vec<u32> {
        p.tpus_by_free_descending(TpuUnits::from_f64(min))
            .map(|t| t.0)
            .collect()
    }

    #[test]
    fn capacity_index_answers_first_fit_queries() {
        let mut p = pool(4);
        let m = ssd_mobilenet_v2();
        p.commit(&m, &[alloc(0, 0.9), alloc(1, 0.35)]);
        let q = |start: u32, min: f64| {
            p.next_tpu_with_free(TpuId(start), TpuUnits::from_f64(min))
                .map(|t| t.0)
        };
        assert_eq!(q(0, 0.05), Some(0), "0.1 free on TPU 0 satisfies 0.05");
        assert_eq!(q(0, 0.2), Some(1), "TPU 0 too full, TPU 1 has 0.65");
        assert_eq!(q(0, 0.8), Some(2), "only the empty TPUs have 0.8 free");
        assert_eq!(q(3, 0.8), Some(3), "start bound respected");
        assert_eq!(q(0, 1.5), None, "nothing ever has more than one unit");
    }

    #[test]
    fn capacity_index_orders_by_free_units() {
        let mut p = pool(4);
        let m = ssd_mobilenet_v2();
        p.commit(&m, &[alloc(0, 0.9), alloc(1, 0.35)]);
        assert_eq!(ascending(&p, 0.0), vec![0, 1, 2, 3]);
        assert_eq!(descending(&p, 0.0), vec![2, 3, 1, 0], "ties by id");
        assert_eq!(ascending(&p, 0.5), vec![1, 2, 3]);
        assert_eq!(descending(&p, 0.7), vec![2, 3]);
    }

    #[test]
    fn capacity_index_excludes_failed_and_full_tpus() {
        let mut p = pool(3);
        let m = ssd_mobilenet_v2();
        p.commit(&m, &[alloc(0, 1.0)]);
        p.fail(TpuId(1));
        assert_eq!(ascending(&p, 0.0), vec![2], "full and failed excluded");
        assert_eq!(
            p.next_tpu_with_free(TpuId(0), TpuUnits::ZERO),
            Some(TpuId(2))
        );
        // Release and restore bring both back.
        p.release(m.id(), &[alloc(0, 1.0)]);
        p.restore(TpuId(1));
        assert_eq!(ascending(&p, 0.0), vec![0, 1, 2]);
        // Failing twice / restoring twice stays consistent.
        p.fail(TpuId(2));
        p.fail(TpuId(2));
        p.restore(TpuId(2));
        p.restore(TpuId(2));
        assert_eq!(ascending(&p, 0.0), vec![0, 1, 2]);
    }

    /// The O(1) summary must equal a from-scratch recomputation over the
    /// accounts — the invariant the fleet front door leans on.
    fn recomputed_summary(p: &TpuPool) -> PoolCapacity {
        let avail = p.accounts().iter().filter(|a| a.is_available());
        PoolCapacity {
            max_free_micro: avail
                .clone()
                .map(|a| a.free_units().as_micro())
                .max()
                .unwrap_or(0),
            total_free_micro: avail.clone().map(|a| a.free_units().as_micro()).sum(),
            available_tpus: avail.count() as u32,
            total_tpus: p.len() as u32,
        }
    }

    #[test]
    fn capacity_summary_tracks_every_mutation() {
        let mut p = pool(3);
        let m = ssd_mobilenet_v2();
        assert_eq!(p.capacity_summary(), recomputed_summary(&p));
        assert_eq!(p.capacity_summary().max_free_micro, 1_000_000);
        assert_eq!(p.capacity_summary().total_free_micro, 3_000_000);

        p.commit(&m, &[alloc(0, 0.9), alloc(1, 0.35)]);
        assert_eq!(p.capacity_summary(), recomputed_summary(&p));
        assert_eq!(p.capacity_summary().max_free_micro, 1_000_000);
        assert_eq!(p.capacity_summary().total_free_micro, 1_750_000);

        p.fail(TpuId(2));
        let s = p.capacity_summary();
        assert_eq!(s, recomputed_summary(&p));
        assert_eq!(s.max_free_micro, 650_000, "TPU 1 is the biggest block");
        assert_eq!(s.available_tpus, 2);
        assert_eq!(s.total_tpus, 3);

        p.release(m.id(), &[alloc(0, 0.9)]);
        p.restore(TpuId(2));
        assert_eq!(p.capacity_summary(), recomputed_summary(&p));
        assert_eq!(p.capacity_summary().total_free_micro, 2_650_000);
    }

    #[test]
    fn capacity_summary_of_fully_failed_pool_is_empty() {
        let mut p = pool(2);
        p.fail(TpuId(0));
        p.fail(TpuId(1));
        let s = p.capacity_summary();
        assert_eq!(s.max_free_micro, 0);
        assert_eq!(s.total_free_micro, 0);
        assert_eq!(s.available_tpus, 0);
        assert_eq!(s.total_tpus, 2);
    }

    #[test]
    fn pool_equality_ignores_index_state() {
        let mut a = pool(2);
        let mut b = pool(2);
        let m = ssd_mobilenet_v2();
        a.commit(&m, &[alloc(0, 0.35)]);
        assert_ne!(a, b);
        b.commit(&m, &[alloc(0, 0.35)]);
        assert_eq!(a, b);
        // Index churn that returns to the same logical state keeps pools
        // equal — the derived index takes no part in comparisons.
        b.fail(TpuId(1));
        b.restore(TpuId(1));
        assert_eq!(a, b);
        // But logical differences (a dead-but-resident model) still show.
        a.commit(&m, &[alloc(1, 0.5)]);
        a.release(m.id(), &[alloc(1, 0.5)]);
        assert_ne!(a, b, "model residency differs after commit+release");
    }

    #[test]
    fn render_pool_lists_every_tpu() {
        let mut p = pool(2);
        p.commit(&ssd_mobilenet_v2(), &[alloc(0, 0.35)]);
        p.fail(TpuId(1));
        let text = render_pool(&p);
        assert!(text.contains("tpu-0"));
        assert!(text.contains("ssd-mobilenet-v2"));
        assert!(text.contains("FAILED"));
        assert!(text.contains("0.350u"));
        // Lazy reclamation is visible: released models show as evictable.
        p.release(ssd_mobilenet_v2().id(), &[alloc(0, 0.35)]);
        let text = render_pool(&p);
        assert!(text.contains("(evictable)"));
    }
}
