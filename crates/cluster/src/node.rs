//! Cluster nodes: vanilla Raspberry Pis (`vRPi`) and TPU-endowed ones
//! (`tRPi`).
//!
//! A node description is pure hardware inventory — CPU capacity, memory, and
//! whether a Coral TPU is attached — plus free-form labels that the
//! orchestrator's node selectors match against (paper §2: "K3s supports
//! labeling that allows application pods to request nodes with specific
//! features, e.g. a node that has a TPU attached").

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies a node within one cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// This id as its dense slab index (nodes are indexed contiguously).
    #[must_use]
    pub fn index(self) -> usize {
        usize::try_from(self.0).expect("u32 node id fits usize")
    }

    /// The id of the node at dense slab index `i`.
    #[must_use]
    pub fn from_index(i: usize) -> NodeId {
        NodeId(u32::try_from(i).expect("per-cluster node count fits u32"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// Hardware flavour of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A Raspberry Pi 4 with no accelerator.
    VRpi,
    /// A Raspberry Pi 4 with a USB Coral TPU attached.
    TRpi,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::VRpi => f.write_str("vRPi"),
            NodeKind::TRpi => f.write_str("tRPi"),
        }
    }
}

/// The label key MicroEdge uses to mark TPU-endowed nodes.
pub const TPU_LABEL: &str = "microedge.io/tpu";

/// One physical node in the cluster.
///
/// # Examples
///
/// ```
/// use microedge_cluster::node::{Node, NodeId, NodeKind};
///
/// let node = Node::rpi4(NodeId(0), NodeKind::TRpi);
/// assert!(node.has_tpu());
/// assert_eq!(node.cpu_millis(), 4000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    id: NodeId,
    kind: NodeKind,
    cpu_millis: u32,
    mem_bytes: u64,
    labels: BTreeMap<String, String>,
}

impl Node {
    /// Creates a node with explicit resources.
    ///
    /// # Panics
    ///
    /// Panics if CPU or memory capacity is zero.
    #[must_use]
    pub fn new(id: NodeId, kind: NodeKind, cpu_millis: u32, mem_bytes: u64) -> Self {
        assert!(cpu_millis > 0, "node must have CPU capacity");
        assert!(mem_bytes > 0, "node must have memory capacity");
        let mut labels = BTreeMap::new();
        if kind == NodeKind::TRpi {
            labels.insert(TPU_LABEL.to_owned(), "true".to_owned());
        }
        Node {
            id,
            kind,
            cpu_millis,
            mem_bytes,
            labels,
        }
    }

    /// A Raspberry Pi 4 Model B as used by the paper: quad-core Cortex-A72 at
    /// 1.5 GHz (4000 millicores) with 8 GB of RAM.
    #[must_use]
    pub fn rpi4(id: NodeId, kind: NodeKind) -> Self {
        Node::new(id, kind, 4_000, 8 * 1024 * 1024 * 1024)
    }

    /// Node identifier.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Hardware flavour.
    #[must_use]
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// `true` when a TPU is attached.
    #[must_use]
    pub fn has_tpu(&self) -> bool {
        self.kind == NodeKind::TRpi
    }

    /// CPU capacity in millicores.
    #[must_use]
    pub fn cpu_millis(&self) -> u32 {
        self.cpu_millis
    }

    /// Memory capacity in bytes.
    #[must_use]
    pub fn mem_bytes(&self) -> u64 {
        self.mem_bytes
    }

    /// Node labels (selector targets).
    #[must_use]
    pub fn labels(&self) -> &BTreeMap<String, String> {
        &self.labels
    }

    /// Adds or replaces a label.
    pub fn set_label(&mut self, key: &str, value: &str) {
        self.labels.insert(key.to_owned(), value.to_owned());
    }

    /// `true` when every `(key, value)` in `selector` matches this node's
    /// labels.
    #[must_use]
    pub fn matches_selector(&self, selector: &BTreeMap<String, String>) -> bool {
        selector.iter().all(|(k, v)| self.labels.get(k) == Some(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpi4_matches_paper_hardware() {
        let n = Node::rpi4(NodeId(3), NodeKind::VRpi);
        assert_eq!(n.cpu_millis(), 4000);
        assert_eq!(n.mem_bytes(), 8 * 1024 * 1024 * 1024);
        assert!(!n.has_tpu());
        assert_eq!(n.id(), NodeId(3));
    }

    #[test]
    fn trpi_gets_tpu_label_automatically() {
        let n = Node::rpi4(NodeId(0), NodeKind::TRpi);
        assert_eq!(n.labels().get(TPU_LABEL).map(String::as_str), Some("true"));
        assert!(n.has_tpu());
    }

    #[test]
    fn selector_matching() {
        let mut n = Node::rpi4(NodeId(0), NodeKind::TRpi);
        n.set_label("zone", "campus-east");

        let mut sel = BTreeMap::new();
        assert!(
            n.matches_selector(&sel),
            "empty selector matches everything"
        );

        sel.insert(TPU_LABEL.to_owned(), "true".to_owned());
        sel.insert("zone".to_owned(), "campus-east".to_owned());
        assert!(n.matches_selector(&sel));

        sel.insert("zone".to_owned(), "campus-west".to_owned());
        assert!(!n.matches_selector(&sel));
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(7).to_string(), "node-7");
        assert_eq!(NodeKind::TRpi.to_string(), "tRPi");
        assert_eq!(NodeKind::VRpi.to_string(), "vRPi");
    }

    #[test]
    #[should_panic(expected = "CPU capacity")]
    fn zero_cpu_rejected() {
        let _ = Node::new(NodeId(0), NodeKind::VRpi, 0, 1);
    }
}
