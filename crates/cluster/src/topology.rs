//! Cluster topology: a set of nodes plus the interconnect model.
//!
//! The paper's MicroEdge installation is 25 Raspberry Pi 4 boards, six of
//! which carry a Coral TPU (19 `vRPi` + 6 `tRPi`), joined by two 16-port
//! gigabit switches. [`Cluster::microedge_default`] builds exactly that;
//! [`ClusterBuilder`] builds arbitrary configurations for the sweeps in the
//! scalability study.
//!
//! # Examples
//!
//! ```
//! use microedge_cluster::topology::Cluster;
//!
//! let cluster = Cluster::microedge_default();
//! assert_eq!(cluster.nodes().len(), 25);
//! assert_eq!(cluster.trpis().count(), 6);
//! ```

use serde::{Deserialize, Serialize};

use crate::network::NetworkModel;
use crate::node::{Node, NodeId, NodeKind};

/// A fixed inventory of nodes and the network joining them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    nodes: Vec<Node>,
    network: NetworkModel,
}

impl Cluster {
    /// The paper's hardware: 19 vRPis and 6 tRPis on the calibrated gigabit
    /// interconnect.
    #[must_use]
    pub fn microedge_default() -> Self {
        ClusterBuilder::new().vrpis(19).trpis(6).build()
    }

    /// All nodes, ordered by id.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Looks up a node by id.
    #[must_use]
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.iter().find(|n| n.id() == id)
    }

    /// Iterates over TPU-endowed nodes.
    pub fn trpis(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| n.has_tpu())
    }

    /// Iterates over vanilla nodes.
    pub fn vrpis(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| !n.has_tpu())
    }

    /// The interconnect model.
    #[must_use]
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// Number of TPUs in the cluster (one per tRPi).
    #[must_use]
    pub fn tpu_count(&self) -> usize {
        self.trpis().count()
    }
}

/// Incrementally configures a [`Cluster`].
///
/// # Examples
///
/// ```
/// use microedge_cluster::topology::ClusterBuilder;
///
/// let cluster = ClusterBuilder::new().vrpis(4).trpis(2).build();
/// assert_eq!(cluster.tpu_count(), 2);
/// assert_eq!(cluster.nodes().len(), 6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClusterBuilder {
    vrpis: u32,
    trpis: u32,
    network: Option<NetworkModel>,
}

impl ClusterBuilder {
    /// Starts an empty configuration.
    #[must_use]
    pub fn new() -> Self {
        ClusterBuilder::default()
    }

    /// Sets the number of vanilla RPis.
    #[must_use]
    pub fn vrpis(mut self, count: u32) -> Self {
        self.vrpis = count;
        self
    }

    /// Sets the number of TPU-endowed RPis.
    #[must_use]
    pub fn trpis(mut self, count: u32) -> Self {
        self.trpis = count;
        self
    }

    /// Overrides the interconnect model (default: calibrated gigabit).
    #[must_use]
    pub fn network(mut self, network: NetworkModel) -> Self {
        self.network = Some(network);
        self
    }

    /// Builds the cluster. tRPis receive the lowest node ids so that TPU
    /// indices are stable across configurations.
    ///
    /// # Panics
    ///
    /// Panics if the cluster would have no nodes at all.
    #[must_use]
    pub fn build(self) -> Cluster {
        assert!(
            self.vrpis + self.trpis > 0,
            "a cluster must contain at least one node"
        );
        let mut nodes = Vec::with_capacity((self.vrpis + self.trpis) as usize);
        let mut next = 0u32;
        for _ in 0..self.trpis {
            nodes.push(Node::rpi4(NodeId(next), NodeKind::TRpi));
            next += 1;
        }
        for _ in 0..self.vrpis {
            nodes.push(Node::rpi4(NodeId(next), NodeKind::VRpi));
            next += 1;
        }
        Cluster {
            nodes,
            network: self.network.unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cluster_matches_paper() {
        let c = Cluster::microedge_default();
        assert_eq!(c.nodes().len(), 25);
        assert_eq!(c.trpis().count(), 6);
        assert_eq!(c.vrpis().count(), 19);
        assert_eq!(c.tpu_count(), 6);
    }

    #[test]
    fn trpis_get_lowest_ids() {
        let c = ClusterBuilder::new().vrpis(2).trpis(3).build();
        for id in 0..3 {
            assert!(c.node(NodeId(id)).unwrap().has_tpu());
        }
        for id in 3..5 {
            assert!(!c.node(NodeId(id)).unwrap().has_tpu());
        }
    }

    #[test]
    fn node_lookup() {
        let c = ClusterBuilder::new().trpis(1).build();
        assert!(c.node(NodeId(0)).is_some());
        assert!(c.node(NodeId(99)).is_none());
    }

    #[test]
    fn custom_network_is_kept() {
        let net = NetworkModel::local();
        let c = ClusterBuilder::new().vrpis(1).network(net).build();
        assert_eq!(*c.network(), net);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_rejected() {
        let _ = ClusterBuilder::new().build();
    }
}
