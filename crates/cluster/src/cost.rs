//! Cost-of-ownership model (paper Table 1).
//!
//! Table 1 prices three configurations that all serve 17 Coral-Pie cameras:
//!
//! | configuration        | #TPUs | #RPis | total  |
//! |----------------------|-------|-------|--------|
//! | Baseline             | 17    | 17    | $2550  |
//! | MicroEdge w/o W.P.   | 8     | 17    | $1875  |
//! | MicroEdge w/ W.P.    | 6     | 17    | $1725  |
//!
//! Those three rows uniquely determine the unit prices: $75 per RPi and $75
//! per TPU. (The paper excludes the remote control-plane server, amortised
//! across many clusters; so do we.)
//!
//! # Examples
//!
//! ```
//! use microedge_cluster::cost::CostModel;
//!
//! let cost = CostModel::paper_prices();
//! assert_eq!(cost.total_usd(17, 17), 2550);
//! assert_eq!(cost.total_usd(17, 6), 1725);
//! ```

use serde::{Deserialize, Serialize};

/// Unit prices for cluster hardware, in whole US dollars.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    rpi_usd: u32,
    tpu_usd: u32,
}

impl CostModel {
    /// Creates a model from explicit unit prices.
    #[must_use]
    pub fn new(rpi_usd: u32, tpu_usd: u32) -> Self {
        CostModel { rpi_usd, tpu_usd }
    }

    /// The unit prices implied by the paper's Table 1 ($75 / $75).
    #[must_use]
    pub fn paper_prices() -> Self {
        CostModel::new(75, 75)
    }

    /// Price of one Raspberry Pi.
    #[must_use]
    pub fn rpi_usd(&self) -> u32 {
        self.rpi_usd
    }

    /// Price of one Coral TPU.
    #[must_use]
    pub fn tpu_usd(&self) -> u32 {
        self.tpu_usd
    }

    /// Total hardware cost of a configuration.
    #[must_use]
    pub fn total_usd(&self, rpis: u32, tpus: u32) -> u32 {
        self.rpi_usd * rpis + self.tpu_usd * tpus
    }

    /// Relative saving of `alternative` over `baseline`, as a fraction in
    /// `[0, 1]`. Returns 0.0 when the baseline is free.
    #[must_use]
    pub fn saving(&self, baseline: u32, alternative: u32) -> f64 {
        if baseline == 0 {
            0.0
        } else {
            1.0 - alternative as f64 / baseline as f64
        }
    }
}

impl Default for CostModel {
    /// The paper's prices.
    fn default() -> Self {
        CostModel::paper_prices()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_reproduce_exactly() {
        let m = CostModel::paper_prices();
        assert_eq!(m.total_usd(17, 17), 2550, "baseline row");
        assert_eq!(m.total_usd(17, 8), 1875, "w/o workload partitioning row");
        assert_eq!(m.total_usd(17, 6), 1725, "w/ workload partitioning row");
    }

    #[test]
    fn table1_saving_is_about_33_percent() {
        let m = CostModel::paper_prices();
        let saving = m.saving(m.total_usd(17, 17), m.total_usd(17, 6));
        assert!((saving - 0.3235).abs() < 0.001, "got {saving}");
    }

    #[test]
    fn saving_handles_zero_baseline() {
        let m = CostModel::paper_prices();
        assert_eq!(m.saving(0, 100), 0.0);
    }

    #[test]
    fn accessors() {
        let m = CostModel::new(10, 20);
        assert_eq!(m.rpi_usd(), 10);
        assert_eq!(m.tpu_usd(), 20);
        assert_eq!(m.total_usd(2, 3), 80);
        assert_eq!(CostModel::default(), CostModel::paper_prices());
    }
}
