#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # microedge-cluster — edge cluster hardware substrate
//!
//! Models the physical base of the paper's MicroEdge installation: Raspberry
//! Pi 4 nodes (with or without a Coral TPU), a calibrated interconnect, and
//! the cost-of-ownership model behind Table 1.
//!
//! - [`node`] — node inventory, kinds, labels, and selector matching;
//! - [`topology`] — clusters and the [`topology::ClusterBuilder`];
//! - [`network`] — per-message transfer-latency model;
//! - [`cost`] — hardware pricing (Table 1).
//!
//! # Examples
//!
//! ```
//! use microedge_cluster::topology::Cluster;
//!
//! let cluster = Cluster::microedge_default();
//! let frame = 300 * 300 * 3;
//! let hop = cluster.network().transfer_time(frame);
//! assert!(hop.as_millis_f64() < 10.0);
//! ```

pub mod cost;
pub mod network;
pub mod node;
pub mod topology;

pub use cost::CostModel;
pub use network::NetworkModel;
pub use node::{Node, NodeId, NodeKind};
pub use topology::{Cluster, ClusterBuilder};
