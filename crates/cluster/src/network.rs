//! Cluster interconnect model.
//!
//! The paper's cluster wires every RPi to 16-port gigabit switches with
//! 1 GbE NICs. What the evaluation actually depends on is the *effective*
//! per-message cost of moving a pre-processed frame from an application pod
//! to a TPU Service on another node: about 8 ms for a 300×300 RGB frame
//! (Fig. 7b). We model a transfer as
//!
//! ```text
//! latency(bytes) = base_latency + bytes / effective_bandwidth
//! ```
//!
//! with defaults calibrated to reproduce that 8 ms figure. The effective
//! bandwidth (≈ 38.6 MB/s) is far below the 1 Gb/s line rate because the
//! paper's data plane is Python over TCP on a Raspberry Pi — serialization
//! and the network stack dominate, which is precisely the overhead the
//! paper's §6.4.2 analyses.

use serde::{Deserialize, Serialize};

use microedge_sim::time::SimDuration;

/// Latency model for node-to-node messages.
///
/// # Examples
///
/// ```
/// use microedge_cluster::network::NetworkModel;
///
/// let net = NetworkModel::rpi_gigabit();
/// let frame = 300 * 300 * 3; // pre-processed SSD MobileNet V2 input
/// let t = net.transfer_time(frame);
/// assert!((t.as_millis_f64() - 8.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkModel {
    base_latency: SimDuration,
    bytes_per_sec: u64,
}

impl NetworkModel {
    /// Creates a model from a fixed per-message latency and an effective
    /// bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    #[must_use]
    pub fn new(base_latency: SimDuration, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be non-zero");
        NetworkModel {
            base_latency,
            bytes_per_sec,
        }
    }

    /// The calibrated RPi-over-gigabit-switch model: 1 ms fixed cost plus
    /// ≈ 38.6 MB/s effective application-level throughput, reproducing the
    /// ≈ 8 ms frame transmission in the paper's Fig. 7b.
    #[must_use]
    pub fn rpi_gigabit() -> Self {
        NetworkModel::new(SimDuration::from_millis(1), 38_600_000)
    }

    /// An idealised zero-cost network (both endpoints on the same node).
    #[must_use]
    pub fn local() -> Self {
        NetworkModel::new(SimDuration::ZERO, u64::MAX)
    }

    /// Fixed per-message latency.
    #[must_use]
    pub fn base_latency(&self) -> SimDuration {
        self.base_latency
    }

    /// Effective bandwidth in bytes per second.
    #[must_use]
    pub fn bytes_per_sec(&self) -> u64 {
        self.bytes_per_sec
    }

    /// Time to move `bytes` between two nodes.
    #[must_use]
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        if self.bytes_per_sec == u64::MAX {
            return self.base_latency;
        }
        let serialisation = SimDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec as f64);
        self.base_latency + serialisation
    }
}

impl Default for NetworkModel {
    /// The calibrated [`NetworkModel::rpi_gigabit`] model.
    fn default() -> Self {
        NetworkModel::rpi_gigabit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_frame_cost_is_about_8ms() {
        let net = NetworkModel::rpi_gigabit();
        let t = net.transfer_time(300 * 300 * 3);
        assert!((t.as_millis_f64() - 8.0).abs() < 0.1, "got {t}");
    }

    #[test]
    fn zero_bytes_costs_base_latency() {
        let net = NetworkModel::rpi_gigabit();
        assert_eq!(net.transfer_time(0), SimDuration::from_millis(1));
    }

    #[test]
    fn local_network_is_free() {
        let net = NetworkModel::local();
        assert_eq!(net.transfer_time(10_000_000), SimDuration::ZERO);
    }

    #[test]
    fn cost_is_monotonic_in_size() {
        let net = NetworkModel::rpi_gigabit();
        let small = net.transfer_time(224 * 224 * 3);
        let large = net.transfer_time(481 * 353 * 3);
        assert!(small < large);
    }

    #[test]
    fn default_is_calibrated_model() {
        assert_eq!(NetworkModel::default(), NetworkModel::rpi_gigabit());
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = NetworkModel::new(SimDuration::ZERO, 0);
    }
}
