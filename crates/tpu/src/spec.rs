//! Coral Edge TPU hardware parameters.
//!
//! The scheduling-relevant facts about a USB Coral TPU (paper §2, §4.1 and
//! footnote 1):
//!
//! - ~8 MB of on-chip memory, of which a slice is reserved for each model's
//!   inference executable, leaving ≈ 6.9 MB for **parameter data**;
//! - requests execute **sequentially, run to completion** — no preemption,
//!   no batching;
//! - switching to a model that is not resident requires swapping its
//!   parameters in from host memory over USB (expensive);
//! - *co-compiled* models share the parameter budget; if they do not all
//!   fit, the lower-priority models are partially cached and the remainder
//!   of their parameters streams from the host on every invocation (slower
//!   than cached, but far cheaper than a full swap).

use serde::{Deserialize, Serialize};

use microedge_sim::time::SimDuration;

/// Total on-chip memory of a Coral Edge TPU: 8 MiB.
pub const TOTAL_MEM_BYTES: u64 = 8 * 1024 * 1024;

/// Memory usable for model parameter data: 6.9 MiB (paper footnote 1 — the
/// rest is reserved for inference executables).
pub const PARAM_BUDGET_BYTES: u64 = (6.9 * 1024.0 * 1024.0) as u64;

/// Hardware parameters of one TPU.
///
/// # Examples
///
/// ```
/// use microedge_tpu::spec::TpuSpec;
///
/// let spec = TpuSpec::coral_usb();
/// // Swapping a 5 MiB model in over USB costs on the order of 100 ms.
/// let swap = spec.swap_time(5 * 1024 * 1024);
/// assert!(swap.as_millis_f64() > 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TpuSpec {
    param_budget_bytes: u64,
    load_bytes_per_sec: u64,
}

impl TpuSpec {
    /// Creates a spec with an explicit parameter budget and host-to-TPU
    /// transfer bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if either value is zero.
    #[must_use]
    pub fn new(param_budget_bytes: u64, load_bytes_per_sec: u64) -> Self {
        assert!(param_budget_bytes > 0, "parameter budget must be non-zero");
        assert!(load_bytes_per_sec > 0, "load bandwidth must be non-zero");
        TpuSpec {
            param_budget_bytes,
            load_bytes_per_sec,
        }
    }

    /// The USB Coral TPU as deployed in MicroEdge: 6.9 MiB parameter budget,
    /// 40 MB/s effective host-to-TPU parameter bandwidth.
    #[must_use]
    pub fn coral_usb() -> Self {
        TpuSpec::new(PARAM_BUDGET_BYTES, 40_000_000)
    }

    /// Bytes available for parameter data.
    #[must_use]
    pub fn param_budget_bytes(&self) -> u64 {
        self.param_budget_bytes
    }

    /// Host-to-TPU parameter transfer bandwidth in bytes per second.
    #[must_use]
    pub fn load_bytes_per_sec(&self) -> u64 {
        self.load_bytes_per_sec
    }

    /// Time to swap `bytes` of parameters in from host memory (a full model
    /// switch).
    #[must_use]
    pub fn swap_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.load_bytes_per_sec as f64)
    }

    /// Per-invocation time to stream `bytes` of *uncached* parameters for a
    /// partially cached co-compiled model. Streaming shares the same USB
    /// path as swapping, so the rate is identical; what co-compilation saves
    /// is moving only the uncached tail instead of the whole model.
    #[must_use]
    pub fn stream_time(&self, bytes: u64) -> SimDuration {
        self.swap_time(bytes)
    }
}

impl Default for TpuSpec {
    /// The USB Coral spec.
    fn default() -> Self {
        TpuSpec::coral_usb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coral_constants_match_paper() {
        assert_eq!(TOTAL_MEM_BYTES, 8_388_608);
        assert_eq!(PARAM_BUDGET_BYTES, 7_235_174);
        let spec = TpuSpec::coral_usb();
        assert_eq!(spec.param_budget_bytes(), PARAM_BUDGET_BYTES);
    }

    #[test]
    fn swap_time_scales_linearly() {
        let spec = TpuSpec::new(100, 1_000_000);
        assert_eq!(spec.swap_time(500_000), SimDuration::from_millis(500));
        assert_eq!(spec.swap_time(0), SimDuration::ZERO);
    }

    #[test]
    fn stream_equals_swap_rate() {
        let spec = TpuSpec::coral_usb();
        assert_eq!(spec.stream_time(123_456), spec.swap_time(123_456));
    }

    #[test]
    fn default_is_coral() {
        assert_eq!(TpuSpec::default(), TpuSpec::coral_usb());
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn zero_budget_rejected() {
        let _ = TpuSpec::new(0, 1);
    }
}
