//! The co-compiler: packing several models into one TPU's parameter memory.
//!
//! Coral's co-compilation feature (paper §2) compiles multiple models
//! together so they are resident simultaneously. Parameter memory is granted
//! in **priority order** (we use the order models are submitted, mirroring
//! the Edge TPU compiler's command-line order): when the cumulative demand
//! exceeds the budget, the marginal model is *partially* cached and any
//! later model is not cached at all — those models stream their uncached
//! parameters from host memory on every invocation, which is slower than a
//! cached hit but avoids the full swap.
//!
//! # Examples
//!
//! ```
//! use microedge_models::catalog::{mobilenet_v1, unet_v2};
//! use microedge_tpu::cocompile::CoCompiler;
//! use microedge_tpu::spec::TpuSpec;
//!
//! let compiler = CoCompiler::new(TpuSpec::coral_usb());
//! let plan = compiler.plan(&[mobilenet_v1(), unet_v2()]).unwrap();
//! assert!(plan.is_fully_cached());
//! ```

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use microedge_models::profile::{ModelId, ModelProfile};
use microedge_sim::time::SimDuration;

use crate::spec::TpuSpec;

/// How much of one model's parameter data a plan keeps on-chip.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheAllocation {
    model: ModelId,
    param_bytes: u64,
    cached_bytes: u64,
}

impl CacheAllocation {
    /// The model this allocation belongs to.
    #[must_use]
    pub fn model(&self) -> &ModelId {
        &self.model
    }

    /// Total parameter bytes of the model.
    #[must_use]
    pub fn param_bytes(&self) -> u64 {
        self.param_bytes
    }

    /// Bytes resident in TPU memory.
    #[must_use]
    pub fn cached_bytes(&self) -> u64 {
        self.cached_bytes
    }

    /// Bytes that must stream from the host on every invocation.
    #[must_use]
    pub fn uncached_bytes(&self) -> u64 {
        self.param_bytes - self.cached_bytes
    }

    /// `true` when the whole model is resident.
    #[must_use]
    pub fn is_fully_cached(&self) -> bool {
        self.cached_bytes == self.param_bytes
    }
}

/// The output of a co-compilation: per-model cache allocations in priority
/// order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachePlan {
    allocations: Vec<CacheAllocation>,
}

impl CachePlan {
    /// An empty plan (no models resident).
    #[must_use]
    pub fn empty() -> Self {
        CachePlan::default()
    }

    /// Per-model allocations, highest priority first.
    #[must_use]
    pub fn allocations(&self) -> &[CacheAllocation] {
        &self.allocations
    }

    /// Looks up the allocation for `model`.
    #[must_use]
    pub fn allocation(&self, model: &ModelId) -> Option<&CacheAllocation> {
        self.allocations.iter().find(|a| a.model() == model)
    }

    /// `true` when every model in the plan is fully resident.
    #[must_use]
    pub fn is_fully_cached(&self) -> bool {
        self.allocations
            .iter()
            .all(CacheAllocation::is_fully_cached)
    }

    /// Total bytes resident on the TPU under this plan.
    #[must_use]
    pub fn cached_bytes(&self) -> u64 {
        self.allocations
            .iter()
            .map(CacheAllocation::cached_bytes)
            .sum()
    }

    /// Total parameter bytes across all planned models.
    #[must_use]
    pub fn total_param_bytes(&self) -> u64 {
        self.allocations
            .iter()
            .map(CacheAllocation::param_bytes)
            .sum()
    }

    /// Number of models in the plan.
    #[must_use]
    pub fn len(&self) -> usize {
        self.allocations.len()
    }

    /// `true` when the plan holds no models.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.allocations.is_empty()
    }
}

/// Error produced when a co-compilation request is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoCompileError {
    /// The same model appeared twice in one request.
    DuplicateModel(ModelId),
}

impl fmt::Display for CoCompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoCompileError::DuplicateModel(id) => {
                write!(f, "model {id} listed twice in co-compile request")
            }
        }
    }
}

impl std::error::Error for CoCompileError {}

/// Packs model parameter data into a TPU's budget, in priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoCompiler {
    spec: TpuSpec,
}

impl CoCompiler {
    /// Creates a co-compiler for the given hardware.
    #[must_use]
    pub fn new(spec: TpuSpec) -> Self {
        CoCompiler { spec }
    }

    /// Produces a cache plan for `models`, highest priority first.
    ///
    /// Memory is granted greedily: each model receives as much of the
    /// remaining budget as it needs; once the budget runs out the marginal
    /// model is partially cached and later models receive nothing.
    ///
    /// # Errors
    ///
    /// Returns [`CoCompileError::DuplicateModel`] if a model id appears more
    /// than once.
    pub fn plan(&self, models: &[ModelProfile]) -> Result<CachePlan, CoCompileError> {
        let mut seen = BTreeSet::new();
        for m in models {
            if !seen.insert(m.id().clone()) {
                return Err(CoCompileError::DuplicateModel(m.id().clone()));
            }
        }
        let mut remaining = self.spec.param_budget_bytes();
        let allocations = models
            .iter()
            .map(|m| {
                let cached = remaining.min(m.param_bytes());
                remaining -= cached;
                CacheAllocation {
                    model: m.id().clone(),
                    param_bytes: m.param_bytes(),
                    cached_bytes: cached,
                }
            })
            .collect();
        Ok(CachePlan { allocations })
    }

    /// Wall-clock cost of running the Edge TPU compiler for this plan on the
    /// control-plane server. Modelled as a fixed process cost plus a
    /// throughput term; used by the Fig. 7a experiment, where co-compilation
    /// runs in a separate process *in parallel* with admission (it adds
    /// variance, not mean, to pod-launch latency).
    #[must_use]
    pub fn compile_time(&self, plan: &CachePlan) -> SimDuration {
        const PROCESS_COST: SimDuration = SimDuration::from_millis(400);
        const COMPILE_BYTES_PER_SEC: u64 = 10_000_000;
        PROCESS_COST
            + SimDuration::from_secs_f64(
                plan.total_param_bytes() as f64 / COMPILE_BYTES_PER_SEC as f64,
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microedge_models::catalog::{mobilenet_v1, resnet_50, ssd_mobilenet_v2, unet_v2};

    fn compiler() -> CoCompiler {
        CoCompiler::new(TpuSpec::coral_usb())
    }

    #[test]
    fn everything_fits_fully_cached() {
        let plan = compiler().plan(&[mobilenet_v1(), unet_v2()]).unwrap();
        assert!(plan.is_fully_cached());
        assert_eq!(plan.len(), 2);
        assert_eq!(
            plan.cached_bytes(),
            mobilenet_v1().param_bytes() + unet_v2().param_bytes()
        );
    }

    #[test]
    fn overflow_partially_caches_marginal_model() {
        let models = [mobilenet_v1(), unet_v2(), ssd_mobilenet_v2()];
        let plan = compiler().plan(&models).unwrap();
        assert!(!plan.is_fully_cached());
        // First two fully cached, third partial.
        assert!(plan
            .allocation(&mobilenet_v1().id().clone())
            .unwrap()
            .is_fully_cached());
        assert!(plan
            .allocation(&unet_v2().id().clone())
            .unwrap()
            .is_fully_cached());
        let marginal = plan.allocation(&ssd_mobilenet_v2().id().clone()).unwrap();
        assert!(!marginal.is_fully_cached());
        assert!(marginal.cached_bytes() > 0);
        assert_eq!(
            plan.cached_bytes(),
            TpuSpec::coral_usb().param_budget_bytes()
        );
    }

    #[test]
    fn oversized_single_model_is_partial() {
        let plan = compiler().plan(&[resnet_50()]).unwrap();
        let alloc = &plan.allocations()[0];
        assert!(!alloc.is_fully_cached());
        assert_eq!(
            alloc.cached_bytes(),
            TpuSpec::coral_usb().param_budget_bytes()
        );
        assert!(alloc.uncached_bytes() > 0);
    }

    #[test]
    fn later_models_get_nothing_once_budget_exhausted() {
        let plan = compiler().plan(&[resnet_50(), mobilenet_v1()]).unwrap();
        let starved = plan.allocation(&mobilenet_v1().id().clone()).unwrap();
        assert_eq!(starved.cached_bytes(), 0);
        assert_eq!(starved.uncached_bytes(), mobilenet_v1().param_bytes());
    }

    #[test]
    fn priority_order_matters() {
        let ab = compiler().plan(&[resnet_50(), unet_v2()]).unwrap();
        let ba = compiler().plan(&[unet_v2(), resnet_50()]).unwrap();
        assert_eq!(
            ab.allocation(&unet_v2().id().clone())
                .unwrap()
                .cached_bytes(),
            0
        );
        assert!(ba
            .allocation(&unet_v2().id().clone())
            .unwrap()
            .is_fully_cached());
    }

    #[test]
    fn duplicate_models_rejected() {
        let err = compiler().plan(&[unet_v2(), unet_v2()]).unwrap_err();
        assert_eq!(err, CoCompileError::DuplicateModel(unet_v2().id().clone()));
        assert!(err.to_string().contains("unet-v2"));
    }

    #[test]
    fn empty_plan() {
        let plan = compiler().plan(&[]).unwrap();
        assert!(plan.is_empty());
        assert!(plan.is_fully_cached());
        assert_eq!(plan.cached_bytes(), 0);
        assert_eq!(CachePlan::empty(), plan);
    }

    #[test]
    fn compile_time_grows_with_plan_size() {
        let c = compiler();
        let small = c.plan(&[unet_v2()]).unwrap();
        let large = c
            .plan(&[mobilenet_v1(), unet_v2(), ssd_mobilenet_v2()])
            .unwrap();
        assert!(c.compile_time(&large) > c.compile_time(&small));
        assert!(c.compile_time(&small).as_millis_f64() > 400.0);
    }
}
