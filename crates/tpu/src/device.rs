//! The TPU execution engine.
//!
//! A [`TpuDevice`] executes inference requests **sequentially, run to
//! completion** — the hardware property the entire MicroEdge design works
//! around (paper §1: TPUs "can only process requests sequentially in a run
//! to completion fashion"). The device holds the currently resident
//! (co-compiled) model set and charges, per invocation:
//!
//! - the model's profiled inference time, always;
//! - a **streaming penalty** for any uncached parameter bytes, when the
//!   model is resident but only partially cached;
//! - a **swap penalty** (full parameter transfer from host memory) when the
//!   model is not resident at all — and the swap evicts the previous
//!   resident set, exactly like invoking a non-co-compiled model on real
//!   Coral hardware.
//!
//! The device is a pure state machine: it computes busy durations but does
//! not own a clock. Queueing and utilization accounting are layered on top
//! by the MicroEdge data plane (`microedge-core`).
//!
//! # Examples
//!
//! ```
//! use microedge_models::catalog::{mobilenet_v1, unet_v2};
//! use microedge_tpu::cocompile::CoCompiler;
//! use microedge_tpu::device::TpuDevice;
//! use microedge_tpu::spec::TpuSpec;
//!
//! let spec = TpuSpec::coral_usb();
//! let mut tpu = TpuDevice::new(spec);
//! let plan = CoCompiler::new(spec).plan(&[mobilenet_v1(), unet_v2()]).unwrap();
//! tpu.load_plan(plan);
//!
//! let hit = tpu.invoke(&mobilenet_v1());
//! assert!(!hit.swapped());
//! assert_eq!(hit.busy(), mobilenet_v1().inference_time());
//! ```

use serde::{Deserialize, Serialize};

use microedge_models::profile::{ModelId, ModelProfile};
use microedge_sim::time::SimDuration;

use crate::cocompile::{CachePlan, CoCompiler};
use crate::spec::TpuSpec;

/// Identifies a TPU within one cluster (TPUs are indexed in tRPi order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TpuId(pub u32);

impl TpuId {
    /// This id as its dense slab index (TPUs are indexed in tRPi order).
    #[must_use]
    pub fn index(self) -> usize {
        usize::try_from(self.0).expect("u32 tpu id fits usize")
    }

    /// The id of the TPU at dense slab index `i`.
    #[must_use]
    pub fn from_index(i: usize) -> TpuId {
        TpuId(u32::try_from(i).expect("per-cluster tpu count fits u32"))
    }
}

impl std::fmt::Display for TpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tpu-{}", self.0)
    }
}

/// What one invocation cost and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvokeOutcome {
    busy: SimDuration,
    swapped: bool,
    streamed_bytes: u64,
}

impl InvokeOutcome {
    /// Time the TPU was occupied by this request.
    #[must_use]
    pub fn busy(&self) -> SimDuration {
        self.busy
    }

    /// `true` when the request forced a full model swap.
    #[must_use]
    pub fn swapped(&self) -> bool {
        self.swapped
    }

    /// Uncached parameter bytes streamed from the host for this request.
    #[must_use]
    pub fn streamed_bytes(&self) -> u64 {
        self.streamed_bytes
    }
}

/// Lifetime counters for one device.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceStats {
    invocations: u64,
    swaps: u64,
    streamed_bytes: u64,
    busy: SimDuration,
}

impl DeviceStats {
    /// Total requests executed.
    #[must_use]
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Full model swaps incurred.
    #[must_use]
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Total uncached parameter bytes streamed.
    #[must_use]
    pub fn streamed_bytes(&self) -> u64 {
        self.streamed_bytes
    }

    /// Cumulative busy time.
    #[must_use]
    pub fn busy(&self) -> SimDuration {
        self.busy
    }
}

/// One Coral TPU: resident model set plus the execution cost model.
#[derive(Debug, Clone)]
pub struct TpuDevice {
    spec: TpuSpec,
    resident: CachePlan,
    stats: DeviceStats,
}

impl TpuDevice {
    /// Creates an idle device with nothing resident.
    #[must_use]
    pub fn new(spec: TpuSpec) -> Self {
        TpuDevice {
            spec,
            resident: CachePlan::empty(),
            stats: DeviceStats::default(),
        }
    }

    /// Hardware parameters.
    #[must_use]
    pub fn spec(&self) -> TpuSpec {
        self.spec
    }

    /// Replaces the resident model set with a co-compiled plan (the *Load*
    /// primitive of the TPU Service, invoked by the extended scheduler).
    pub fn load_plan(&mut self, plan: CachePlan) {
        self.resident = plan;
    }

    /// The currently resident plan.
    #[must_use]
    pub fn resident(&self) -> &CachePlan {
        &self.resident
    }

    /// `true` when `model` is resident (fully or partially cached).
    #[must_use]
    pub fn is_resident(&self, model: &ModelId) -> bool {
        self.resident.allocation(model).is_some()
    }

    /// Executes one inference request and returns its cost.
    ///
    /// If the model is not resident the device performs a full swap: the
    /// previous resident set is evicted and this model becomes the sole
    /// resident, cached up to the parameter budget.
    pub fn invoke(&mut self, profile: &ModelProfile) -> InvokeOutcome {
        let outcome = match self.resident.allocation(profile.id()) {
            Some(alloc) => {
                let streamed = alloc.uncached_bytes();
                InvokeOutcome {
                    busy: profile.inference_time() + self.spec.stream_time(streamed),
                    swapped: false,
                    streamed_bytes: streamed,
                }
            }
            None => {
                let plan = CoCompiler::new(self.spec)
                    .plan(std::slice::from_ref(profile))
                    .expect("single model cannot duplicate");
                let swap = self.spec.swap_time(profile.param_bytes());
                let streamed = plan.allocations()[0].uncached_bytes();
                self.resident = plan;
                InvokeOutcome {
                    busy: swap + profile.inference_time() + self.spec.stream_time(streamed),
                    swapped: true,
                    streamed_bytes: streamed,
                }
            }
        };
        self.stats.invocations += 1;
        if outcome.swapped {
            self.stats.swaps += 1;
        }
        self.stats.streamed_bytes += outcome.streamed_bytes;
        self.stats.busy += outcome.busy;
        outcome
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microedge_models::catalog::{mobilenet_v1, resnet_50, ssd_mobilenet_v2, unet_v2};

    fn loaded_device(models: &[ModelProfile]) -> TpuDevice {
        let spec = TpuSpec::coral_usb();
        let mut d = TpuDevice::new(spec);
        d.load_plan(CoCompiler::new(spec).plan(models).unwrap());
        d
    }

    #[test]
    fn cached_invoke_costs_inference_only() {
        let mut d = loaded_device(&[ssd_mobilenet_v2()]);
        let out = d.invoke(&ssd_mobilenet_v2());
        assert!(!out.swapped());
        assert_eq!(out.streamed_bytes(), 0);
        assert_eq!(out.busy(), ssd_mobilenet_v2().inference_time());
    }

    #[test]
    fn cocompiled_models_alternate_without_swapping() {
        let mut d = loaded_device(&[mobilenet_v1(), unet_v2()]);
        for _ in 0..10 {
            assert!(!d.invoke(&mobilenet_v1()).swapped());
            assert!(!d.invoke(&unet_v2()).swapped());
        }
        assert_eq!(d.stats().swaps(), 0);
        assert_eq!(d.stats().invocations(), 20);
    }

    #[test]
    fn non_resident_invoke_swaps_and_evicts() {
        let mut d = loaded_device(&[mobilenet_v1()]);
        let out = d.invoke(&unet_v2());
        assert!(out.swapped());
        assert!(out.busy() > unet_v2().inference_time());
        // MobileNet was evicted by the swap.
        assert!(!d.is_resident(mobilenet_v1().id()));
        assert!(d.is_resident(unet_v2().id()));
    }

    #[test]
    fn swap_thrash_costs_accumulate() {
        // Alternating two non-co-compiled models swaps on every request —
        // the pathology co-compilation exists to avoid.
        let mut d = loaded_device(&[mobilenet_v1()]);
        for _ in 0..5 {
            assert!(d.invoke(&unet_v2()).swapped());
            assert!(d.invoke(&mobilenet_v1()).swapped());
        }
        assert_eq!(d.stats().swaps(), 10);

        let mut co = loaded_device(&[mobilenet_v1(), unet_v2()]);
        for _ in 0..5 {
            co.invoke(&unet_v2());
            co.invoke(&mobilenet_v1());
        }
        assert!(co.stats().busy() < d.stats().busy());
    }

    #[test]
    fn partially_cached_model_streams_every_invoke() {
        let mut d = loaded_device(&[resnet_50()]);
        let expected_stream = resnet_50().param_bytes() - TpuSpec::coral_usb().param_budget_bytes();
        let first = d.invoke(&resnet_50());
        let second = d.invoke(&resnet_50());
        assert_eq!(first, second, "streaming penalty recurs on every invoke");
        assert_eq!(first.streamed_bytes(), expected_stream);
        assert!(first.busy() > resnet_50().inference_time());
        assert!(!first.swapped());
    }

    #[test]
    fn stats_accumulate_busy_time() {
        let mut d = loaded_device(&[unet_v2()]);
        let a = d.invoke(&unet_v2()).busy();
        let b = d.invoke(&unet_v2()).busy();
        assert_eq!(d.stats().busy(), a + b);
    }

    #[test]
    fn fresh_device_is_empty() {
        let d = TpuDevice::new(TpuSpec::coral_usb());
        assert!(d.resident().is_empty());
        assert!(!d.is_resident(unet_v2().id()));
        assert_eq!(d.stats(), DeviceStats::default());
    }

    #[test]
    fn tpu_id_display() {
        assert_eq!(TpuId(4).to_string(), "tpu-4");
    }
}
