#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # microedge-tpu — Coral Edge TPU device model
//!
//! Reproduces the hardware properties the MicroEdge design is built around:
//!
//! - [`spec`] — on-chip parameter budget (≈ 6.9 MiB) and host-transfer
//!   bandwidth;
//! - [`cocompile`] — the co-compiler: priority-ordered packing of several
//!   models into one TPU's parameter memory, with partial caching when the
//!   budget overflows;
//! - [`device`] — the sequential run-to-completion execution engine with
//!   swap and parameter-streaming penalties.
//!
//! # Examples
//!
//! ```
//! use microedge_models::catalog::{mobilenet_v1, unet_v2};
//! use microedge_tpu::{CoCompiler, TpuDevice, TpuSpec};
//!
//! let spec = TpuSpec::coral_usb();
//! let plan = CoCompiler::new(spec).plan(&[mobilenet_v1(), unet_v2()])?;
//! let mut tpu = TpuDevice::new(spec);
//! tpu.load_plan(plan);
//! // Both models are resident: alternating between them never swaps.
//! assert!(!tpu.invoke(&mobilenet_v1()).swapped());
//! assert!(!tpu.invoke(&unet_v2()).swapped());
//! # Ok::<(), microedge_tpu::CoCompileError>(())
//! ```

pub mod cocompile;
pub mod device;
pub mod spec;

pub use cocompile::{CacheAllocation, CachePlan, CoCompileError, CoCompiler};
pub use device::{DeviceStats, InvokeOutcome, TpuDevice, TpuId};
pub use spec::TpuSpec;
