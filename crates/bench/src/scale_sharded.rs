//! Sharded scale-out study: one deterministic replay past 1 000 000
//! streams (`repro --scale`, alongside the serial sweep in [`crate::scale`]).
//!
//! Where the serial study drains one `World`, each point here partitions
//! the fleet across per-cluster [`ShardedWorld`] shards advanced in
//! deterministic epochs (see `microedge_core::shard`). Sharding is also the
//! perf lever on the replay hot path: `EventQueue::pop_due` scans the
//! unsorted head bucket for its `(time, seq)` minimum, and at 100k
//! one-FPS streams a single queue's head bucket holds hundreds of events —
//! splitting the fleet into K shards divides that scan (and the working
//! set each epoch touches) by K, independent of thread count. Every
//! `EXPORT_STRIDE`-th camera additionally announces its completions to the
//! neighbouring shard, so the cross-shard exchange path is exercised at
//! full scale, not just in unit tests.
//!
//! The split between deterministic JSON fields and `host_`-prefixed
//! measurement lines follows [`crate::scale`]: CI strips `host_` lines
//! before byte-comparing `BENCH_scale.json` across `MICROEDGE_WORKERS`
//! settings.

use std::fmt::Write as _;
use std::time::Instant;

use microedge_cluster::topology::ClusterBuilder;
use microedge_core::config::Features;
use microedge_core::runtime::StreamSpec;
use microedge_core::shard::{ShardedWorld, DEFAULT_EPOCH};
use microedge_metrics::report::Table;
use microedge_sim::par;
use microedge_sim::time::{SimDuration, SimTime};

use crate::scale::{
    json_opt_u64, peak_rss_bytes, size_cluster, ScaleStudy, SCALE_FPS, SCALE_FRAME_LIMIT,
};

/// Every `EXPORT_STRIDE`-th camera of each shard export-flags its
/// completions, generating deterministic cross-shard traffic at every
/// epoch barrier.
pub const EXPORT_STRIDE: u64 = 8;

/// One sharded sweep point: `streams` cameras split over `shards` cluster
/// shards and replayed to completion in one deterministic run.
#[derive(Debug, Clone)]
pub struct ShardedScalePoint {
    /// Total cameras admitted across the fleet.
    pub streams: u64,
    /// Cluster shards the fleet is partitioned into.
    pub shards: u32,
    /// tRPis (= TPUs) across all shards.
    pub tpus: u32,
    /// Total nodes across all shards.
    pub nodes: u32,
    /// Frames completed across the fleet (deterministic).
    pub frames: u64,
    /// Simulation events delivered, summed over shards — includes the
    /// cross-shard ingest events (deterministic).
    pub events: u64,
    /// Frame exports delivered across shard boundaries (deterministic).
    pub exports: u64,
    /// Heap bytes held by the merged telemetry (deterministic).
    pub telemetry_bytes: u64,
    /// Wall-clock seconds spent admitting the fleet (host measurement).
    pub admit_wall_s: f64,
    /// Wall-clock seconds spent replaying (host measurement).
    pub run_wall_s: f64,
    /// Worker threads the epochs ran on (host setting, not deterministic —
    /// it follows `MICROEDGE_WORKERS` / available parallelism).
    pub workers: usize,
    /// `VmHWM` after the point (running maximum over the process life).
    pub peak_rss_bytes: Option<u64>,
}

impl ShardedScalePoint {
    /// Aggregate replay throughput: events over replay wall-clock.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.run_wall_s
    }
}

/// The sharded sweep.
#[derive(Debug, Clone)]
pub struct ShardedScaleStudy {
    /// Frames per camera at every point.
    pub frame_limit: u64,
    /// One entry per `(streams, shards)` pair, ascending in streams.
    pub points: Vec<ShardedScalePoint>,
}

/// The `(streams, shards)` pairs the sharded study sweeps: tiny in quick
/// mode (tests, CI smoke), 100k and the 1M-camera tier otherwise. Stream
/// counts divide evenly by their shard counts, and full-tier shards hold
/// 2 000 streams each — small enough that the event queue's near-future
/// ring stays sparse (the serial sweep shows per-event cost climbing
/// ~11x from the 1k-stream tier to the 100k tier as bucket occupancy
/// grows), big enough that one shard is a realistic edge cluster.
#[must_use]
pub fn sharded_stream_counts(quick: bool) -> &'static [(u64, u32)] {
    if quick {
        &[(400, 4)]
    } else {
        &[(100_000, 50), (1_000_000, 500)]
    }
}

/// Runs one sharded point with an explicit worker count.
///
/// # Panics
///
/// Panics if `streams` does not divide evenly by `shards` or an admission
/// fails (each shard's cluster is sized for its slice of the fleet).
#[must_use]
pub fn run_sharded_point_with_workers(
    streams: u64,
    shards: u32,
    frame_limit: u64,
    workers: usize,
) -> ShardedScalePoint {
    assert!(
        streams.is_multiple_of(u64::from(shards)),
        "{streams} streams do not split evenly over {shards} shards"
    );
    let per_shard = streams / u64::from(shards);
    let (shard_tpus, shard_vrpis) = size_cluster(per_shard);
    let clusters = (0..shards).map(|_| {
        ClusterBuilder::new()
            .trpis(shard_tpus)
            .vrpis(shard_vrpis)
            .build()
    });
    let nodes_per_shard = shard_tpus + shard_vrpis;
    let mut world = ShardedWorld::new(clusters, Features::all());

    let admit_start = Instant::now();
    for shard in 0..shards {
        for i in 0..per_shard {
            let spec = StreamSpec::builder(&format!("cam-{shard}-{i}"), "ssd-mobilenet-v2")
                .fps(SCALE_FPS)
                .frame_limit(frame_limit)
                // Same de-synchronisation as the serial sweep; shards are
                // identical by construction, which doubles as a cheap
                // self-check (every shard completes the same frame count).
                .start_offset(SimDuration::from_millis((i * 997) % 1000))
                .export_completions(i.is_multiple_of(EXPORT_STRIDE))
                .build();
            world
                .admit_stream(shard, spec)
                .expect("each shard's cluster is sized for its slice");
        }
    }
    let admit_wall_s = admit_start.elapsed().as_secs_f64();

    let run_start = Instant::now();
    let results = world.run_with_workers(SimTime::from_secs(frame_limit + 3), workers);
    let run_wall_s = run_start.elapsed().as_secs_f64();

    ShardedScalePoint {
        streams,
        shards,
        tpus: shard_tpus * shards,
        nodes: nodes_per_shard * shards,
        frames: results.reports().iter().map(|r| r.completed()).sum(),
        events: results.events_processed(),
        exports: results.remote_ingest().count(),
        telemetry_bytes: results.telemetry_memory_bytes() as u64,
        admit_wall_s,
        run_wall_s,
        workers,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// Runs one sharded point with the ambient worker count
/// (`MICROEDGE_WORKERS` / available parallelism).
#[must_use]
pub fn run_sharded_point(streams: u64, shards: u32, frame_limit: u64) -> ShardedScalePoint {
    let workers = par::worker_count(shards as usize);
    run_sharded_point_with_workers(streams, shards, frame_limit, workers)
}

/// Runs the whole sharded sweep.
#[must_use]
pub fn run_scale_sharded(quick: bool) -> ShardedScaleStudy {
    let points = sharded_stream_counts(quick)
        .iter()
        .map(|&(streams, shards)| run_sharded_point(streams, shards, SCALE_FRAME_LIMIT))
        .collect();
    ShardedScaleStudy {
        frame_limit: SCALE_FRAME_LIMIT,
        points,
    }
}

impl ShardedScaleStudy {
    /// Renders this study's JSON object (the `"sharded"` section of
    /// `BENCH_scale.json`), with `host_` measurement lines the CI compare
    /// strips, like [`ScaleStudy::points_json`].
    #[must_use]
    pub fn to_json_object(&self) -> String {
        let mut points = String::new();
        for (i, p) in self.points.iter().enumerate() {
            let comma = if i + 1 < self.points.len() { "," } else { "" };
            let _ = write!(
                points,
                "\n      {{\"streams\": {}, \"shards\": {}, \"tpus\": {}, \"nodes\": {}, \"frames\": {}, \"events\": {}, \"exports\": {}, \"telemetry_bytes\": {},\n        \"host_events_per_sec\": {:.1}, \"host_replay_wall_s\": {:.3}, \"host_workers\": {}, \"host_peak_rss_bytes\": {}}}{comma}",
                p.streams,
                p.shards,
                p.tpus,
                p.nodes,
                p.frames,
                p.events,
                p.exports,
                p.telemetry_bytes,
                p.events_per_sec(),
                p.run_wall_s,
                p.workers,
                json_opt_u64(p.peak_rss_bytes),
            );
        }
        format!(
            "{{\n    \"workload\": \"N cameras x {frames} frames at {fps} FPS over K cluster shards, every {stride}th stream exported cross-shard\",\n    \"epoch_ms\": {epoch},\n    \"export_stride\": {stride},\n    \"points\": [{points}\n    ]\n  }}",
            frames = self.frame_limit,
            fps = SCALE_FPS,
            stride = EXPORT_STRIDE,
            epoch = DEFAULT_EPOCH.as_millis_f64(),
            points = points,
        )
    }

    /// Renders the human table `repro --scale` prints for the sharded
    /// sweep (host measurements included).
    #[must_use]
    pub fn render_summary(&self) -> String {
        let mut table = Table::new(&[
            "streams",
            "shards",
            "TPUs",
            "nodes",
            "frames",
            "events",
            "exports",
            "admit (s)",
            "replay (s)",
            "Mev/s",
            "workers",
            "peak RSS (MiB)",
        ]);
        for p in &self.points {
            table.row_owned(vec![
                p.streams.to_string(),
                p.shards.to_string(),
                p.tpus.to_string(),
                p.nodes.to_string(),
                p.frames.to_string(),
                p.events.to_string(),
                p.exports.to_string(),
                format!("{:.3}", p.admit_wall_s),
                format!("{:.3}", p.run_wall_s),
                format!("{:.2}", p.events_per_sec() / 1e6),
                p.workers.to_string(),
                p.peak_rss_bytes.map_or_else(
                    || "n/a".to_owned(),
                    |b| format!("{:.1}", b as f64 / (1024.0 * 1024.0)),
                ),
            ]);
        }
        format!(
            "### Sharded scale-out study — one replay, {frames} frames/camera at {fps} FPS, epoch {epoch} ms, byte-identical at any worker count\n{table}",
            frames = self.frame_limit,
            fps = SCALE_FPS,
            epoch = DEFAULT_EPOCH.as_millis_f64(),
            table = table,
        )
    }
}

/// Renders the complete `BENCH_scale.json`: the serial study document with
/// the sharded study spliced in as its `"sharded"` section.
///
/// # Panics
///
/// Panics if the serial document does not end with its closing brace
/// (which would mean [`ScaleStudy::to_json`] changed shape).
#[must_use]
pub fn render_bench_json(serial: &ScaleStudy, sharded: &ShardedScaleStudy) -> String {
    let serial_doc = serial.to_json();
    let base = serial_doc
        .strip_suffix("}\n")
        .expect("serial JSON ends with its closing brace");
    format!(
        "{base},\n  \"sharded\": {object}\n}}\n",
        base = base.trim_end(),
        object = sharded.to_json_object(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip_host_lines(json: &str) -> String {
        json.lines()
            .filter(|l| !l.contains("\"host_"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn sharded_point_completes_every_frame_and_routes_exports() {
        let p = run_sharded_point_with_workers(96, 4, 3, 1);
        assert_eq!(p.streams, 96);
        assert_eq!(p.shards, 4);
        assert_eq!(p.frames, 96 * 3, "every camera completes its frames");
        // 24 cameras per shard → ids 0, 8, 16 export: 3 exporters × 4
        // shards × 3 frames.
        assert_eq!(p.exports, 3 * 4 * 3);
        assert!(p.events > p.frames, "events include arrivals and ingests");
        assert!(p.telemetry_bytes > 0);
    }

    #[test]
    fn artifacts_are_byte_identical_across_worker_counts() {
        let study_at = |workers| ShardedScaleStudy {
            frame_limit: 3,
            points: vec![run_sharded_point_with_workers(64, 4, 3, workers)],
        };
        let serial = strip_host_lines(&study_at(1).to_json_object());
        for workers in [2, 8] {
            assert_eq!(
                serial,
                strip_host_lines(&study_at(workers).to_json_object()),
                "sharded artifact diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn bench_json_contains_both_studies() {
        let serial = crate::scale::run_scale(true);
        let sharded = ShardedScaleStudy {
            frame_limit: 3,
            points: vec![run_sharded_point_with_workers(32, 2, 3, 1)],
        };
        let json = render_bench_json(&serial, &sharded);
        assert!(json.contains("\"points\""));
        assert!(json.contains("\"sharded\""));
        assert!(json.contains("\"export_stride\""));
        assert!(json.ends_with("}\n"));
        // Braces balance: the splice produced one well-formed document.
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn summary_reports_throughput_and_workers() {
        let study = ShardedScaleStudy {
            frame_limit: 3,
            points: vec![run_sharded_point_with_workers(32, 2, 3, 2)],
        };
        let text = study.render_summary();
        assert!(text.contains("Sharded scale-out"));
        assert!(text.contains("32"));
        assert!(text.contains("Mev/s"));
    }
}
