//! Kernel performance harness (`repro --perf`).
//!
//! Times the simulation kernel on a fixed reference workload — the five
//! Fig. 6 configurations replayed over the 60-minute downsized trace
//! (seed 42, 6 TPUs) — and compares against the pre-overhaul kernel's
//! numbers recorded on the same workload. The configurations are run
//! *serially* here, on purpose: the harness measures single-thread kernel
//! throughput, not the parallel sweep.
//!
//! Two events/sec figures are reported. The overhaul removed the
//! per-frame `Complete` event class (completions are recorded inline when
//! their timing is decided), so the same replay now delivers ~25 % fewer
//! events while producing identical results. The *raw* rate divides the
//! current event count by wall-clock; the *pre-PR-equivalent* rate divides
//! the pre-overhaul event count for this exact workload by the current
//! wall-clock, which is the honest like-for-like throughput comparison —
//! the work done (same trace, same decisions, same outputs) is unchanged.

use std::fmt::Write as _;
use std::time::Instant;

use microedge_sim::time::SimDuration;
use microedge_workloads::trace::{synthesize, TraceConfig};

use crate::trace_study::{fig6_configs, run_trace};

/// Wall-clock for the reference workload on the pre-overhaul kernel
/// (best of 3 on the development host, release profile).
pub const PRE_PR_WALL_S: f64 = 0.520;

/// Events the pre-overhaul kernel delivered for the reference workload
/// (deterministic; the count is exact, not a measurement).
pub const PRE_PR_EVENTS: u64 = 8_145_757;

/// One configuration's timing within the reference replay.
#[derive(Debug, Clone)]
pub struct ConfigTiming {
    /// Configuration label.
    pub config: String,
    /// Best-of-rounds wall-clock seconds for this configuration.
    pub wall_s: f64,
    /// Events the kernel delivered (identical every round).
    pub events: u64,
}

/// The harness result: total and per-configuration timings.
#[derive(Debug, Clone)]
pub struct KernelPerf {
    /// Best-of-rounds wall-clock for the full five-configuration loop.
    pub wall_s: f64,
    /// Total events delivered across the five configurations.
    pub events: u64,
    /// Rounds timed.
    pub rounds: u32,
    /// Per-configuration breakdown (each configuration's best round).
    pub per_config: Vec<ConfigTiming>,
}

impl KernelPerf {
    /// Raw throughput: current events over current wall-clock.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s
    }

    /// Pre-PR-equivalent throughput: the pre-overhaul event count for this
    /// workload over the current wall-clock (see module docs).
    #[must_use]
    pub fn equivalent_events_per_sec(&self) -> f64 {
        PRE_PR_EVENTS as f64 / self.wall_s
    }

    /// Wall-clock speedup over the pre-overhaul kernel.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        PRE_PR_WALL_S / self.wall_s
    }

    /// Renders the `BENCH_kernel.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut configs = String::new();
        for (i, c) in self.per_config.iter().enumerate() {
            let comma = if i + 1 < self.per_config.len() {
                ","
            } else {
                ""
            };
            let _ = write!(
                configs,
                "\n    {{\"config\": \"{}\", \"wall_s\": {:.6}, \"events\": {}}}{comma}",
                c.config, c.wall_s, c.events
            );
        }
        format!(
            "{{\n  \"benchmark\": \"fig6_trace_study_kernel\",\n  \"workload\": \"60-min downsized trace, seed 42, 6 TPUs, 5 configs, serial\",\n  \"rounds\": {rounds},\n  \"pre_pr\": {{\n    \"wall_s\": {pre_wall:.6},\n    \"events\": {pre_events},\n    \"events_per_sec\": {pre_eps:.0}\n  }},\n  \"current\": {{\n    \"wall_s\": {wall:.6},\n    \"events\": {events},\n    \"events_per_sec\": {eps:.0},\n    \"pre_pr_equivalent_events_per_sec\": {eq_eps:.0}\n  }},\n  \"speedup_wall\": {speedup:.2},\n  \"per_config\": [{configs}\n  ]\n}}\n",
            rounds = self.rounds,
            pre_wall = PRE_PR_WALL_S,
            pre_events = PRE_PR_EVENTS,
            pre_eps = PRE_PR_EVENTS as f64 / PRE_PR_WALL_S,
            wall = self.wall_s,
            events = self.events,
            eps = self.events_per_sec(),
            eq_eps = self.equivalent_events_per_sec(),
            speedup = self.speedup(),
        )
    }

    /// Renders the human-readable summary `repro --perf` prints.
    #[must_use]
    pub fn render_summary(&self) -> String {
        let mut out = format!(
            "### Kernel perf — Fig. 6 trace study, best of {} rounds (serial)\n\
             pre-PR kernel : {:.3} s, {} events ({:.1}M ev/s)\n\
             this kernel   : {:.3} s, {} events ({:.1}M ev/s raw, {:.1}M ev/s pre-PR-equivalent)\n\
             wall speedup  : {:.2}x\n",
            self.rounds,
            PRE_PR_WALL_S,
            PRE_PR_EVENTS,
            PRE_PR_EVENTS as f64 / PRE_PR_WALL_S / 1e6,
            self.wall_s,
            self.events,
            self.events_per_sec() / 1e6,
            self.equivalent_events_per_sec() / 1e6,
            self.speedup(),
        );
        for c in &self.per_config {
            let _ = writeln!(
                out,
                "  {:<28} {:.3} s  {} events",
                c.config, c.wall_s, c.events
            );
        }
        out
    }
}

/// Times `rounds` serial replays of a trace built from `trace_config`
/// against all five Fig. 6 configurations on `tpus` TPUs.
#[must_use]
pub fn run_kernel_perf_with(
    trace_config: &TraceConfig,
    seed: u64,
    tpus: u32,
    rounds: u32,
) -> KernelPerf {
    assert!(rounds > 0, "at least one round");
    let trace = synthesize(trace_config, seed);
    let configs = fig6_configs();
    let mut best_total = f64::INFINITY;
    let mut best_config = vec![f64::INFINITY; configs.len()];
    let mut events_by_config = vec![0u64; configs.len()];
    for _ in 0..rounds {
        let mut total = 0.0;
        for (i, config) in configs.iter().enumerate() {
            let start = Instant::now();
            let outcome = run_trace(*config, &trace, trace_config, tpus);
            let wall = start.elapsed().as_secs_f64();
            total += wall;
            best_config[i] = best_config[i].min(wall);
            events_by_config[i] = outcome.events_processed();
        }
        best_total = best_total.min(total);
    }
    KernelPerf {
        wall_s: best_total,
        events: events_by_config.iter().sum(),
        rounds,
        per_config: configs
            .iter()
            .zip(best_config.iter().zip(events_by_config.iter()))
            .map(|(config, (&wall_s, &events))| ConfigTiming {
                config: config.label(),
                wall_s,
                events,
            })
            .collect(),
    }
}

/// Times the reference workload: the 60-minute downsized trace, seed 42,
/// 6 TPUs — the workload [`PRE_PR_WALL_S`] and [`PRE_PR_EVENTS`] describe.
#[must_use]
pub fn run_kernel_perf(rounds: u32) -> KernelPerf {
    let mut cfg = TraceConfig::microedge_downsized();
    cfg.duration = SimDuration::from_secs(3600);
    run_kernel_perf_with(&cfg, 42, 6, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_perf() -> KernelPerf {
        let mut cfg = TraceConfig::microedge_downsized();
        cfg.duration = SimDuration::from_secs(5 * 60);
        run_kernel_perf_with(&cfg, 7, 6, 1)
    }

    #[test]
    fn harness_reports_work_and_time() {
        let perf = quick_perf();
        assert!(perf.wall_s > 0.0);
        assert!(perf.events > 0);
        assert_eq!(perf.per_config.len(), 5);
        assert!(perf.per_config.iter().all(|c| c.events > 0));
        // The per-config bests cannot exceed the best full loop.
        let sum: f64 = perf.per_config.iter().map(|c| c.wall_s).sum();
        assert!(sum <= perf.wall_s * 1.000_001);
    }

    #[test]
    fn json_has_both_throughput_definitions() {
        let perf = quick_perf();
        let json = perf.to_json();
        assert!(json.contains("\"pre_pr\""));
        assert!(json.contains("\"events_per_sec\""));
        assert!(json.contains("\"pre_pr_equivalent_events_per_sec\""));
        assert!(json.contains("\"speedup_wall\""));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn summary_mentions_every_config() {
        let perf = quick_perf();
        let text = perf.render_summary();
        for c in &perf.per_config {
            assert!(text.contains(&c.config));
        }
        assert!(text.contains("speedup"));
    }
}
