//! Scale-out study (`repro --scale`): the Fig. 6 workload shape pushed to
//! 100 000 camera streams.
//!
//! The paper's §6.3 calls for "a much larger configuration of the workload
//! on a larger cluster"; this harness supplies it. Each point admits `N`
//! identical 1 FPS cameras (ssd-mobilenet-v2, frame-limited) onto a cluster
//! sized for exactly that fleet, replays every frame through the full data
//! plane, and reports the kernel's throughput alongside the footprint of
//! the run's telemetry.
//!
//! Two kinds of numbers come out:
//!
//! - **Deterministic** (stream/frame/event counts, telemetry bytes) — these
//!   go into `BENCH_scale.json`, which is byte-identical across runs and
//!   `MICROEDGE_WORKERS` settings; CI diffs it.
//! - **Host measurements** (wall-clock, events/sec, peak RSS from
//!   `/proc/self/status`) — these appear in the rendered table and, so the
//!   perf trajectory is captured over time, in the JSON under `host_`-
//!   prefixed keys on their own lines. CI strips those lines
//!   (`grep -v '"host_'`) before byte-comparing artifacts.
//!
//! The telemetry footprint is the point: per-frame latency distributions
//! are held in constant-memory log-linear sketches
//! ([`microedge_sim::stats::LogLinearSketch`]), so the recorded bytes stay
//! flat as frames grow. The study proves it directly by re-running the
//! smallest point with twice the frame limit and reporting both byte
//! counts (`telemetry_invariance` in the JSON — they must be equal).

use std::fmt::Write as _;
use std::time::Instant;

use microedge_cluster::topology::ClusterBuilder;
use microedge_core::config::DataPlaneConfig;
use microedge_core::units::TpuUnits;
use microedge_metrics::report::Table;
use microedge_models::catalog::ssd_mobilenet_v2;
use microedge_orch::pod::ResourceRequest;
use microedge_sim::stats::SKETCH_RELATIVE_ERROR;
use microedge_sim::time::{SimDuration, SimTime};

use crate::runner::{build_world, SystemConfig};
use microedge_core::runtime::StreamSpec;

/// Frame rate of every camera in the sweep. Kept low so a single TPU
/// serves ~42 cameras and 100k streams need a ~2.4k-TPU cluster rather
/// than a 35k-TPU one.
pub const SCALE_FPS: f64 = 1.0;

/// Frames each camera emits before stopping.
pub const SCALE_FRAME_LIMIT: u64 = 5;

/// One sweep point: `streams` cameras replayed to completion.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Cameras admitted (every requested stream must admit — the cluster
    /// is sized for the fleet).
    pub streams: u64,
    /// tRPis (= TPUs) in the cluster built for this point.
    pub tpus: u32,
    /// Total nodes (tRPis + vRPis).
    pub nodes: u32,
    /// Frames completed across the fleet (deterministic).
    pub frames: u64,
    /// Simulation events the kernel delivered (deterministic).
    pub events: u64,
    /// Heap bytes held by the run's latency/recovery telemetry
    /// (deterministic; constant in frame count).
    pub telemetry_bytes: u64,
    /// Wall-clock seconds spent admitting the fleet (host measurement).
    pub admit_wall_s: f64,
    /// Wall-clock seconds spent replaying frames (host measurement).
    pub run_wall_s: f64,
    /// `VmHWM` after the point, if the platform exposes it. Peak RSS is
    /// monotone over the process lifetime, so successive points report a
    /// running maximum.
    pub peak_rss_bytes: Option<u64>,
}

impl ScalePoint {
    /// Replay throughput: events over replay wall-clock.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.run_wall_s
    }

    /// Telemetry bytes amortised over the fleet (deterministic).
    #[must_use]
    pub fn telemetry_bytes_per_stream(&self) -> f64 {
        self.telemetry_bytes as f64 / self.streams as f64
    }
}

/// Frame-count invariance proof: the smallest point re-run with twice the
/// frames must hold the same number of telemetry bytes.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryInvariance {
    /// Stream count the pair was measured at.
    pub streams: u64,
    /// Telemetry bytes with [`SCALE_FRAME_LIMIT`] frames per camera.
    pub bytes_at_1x_frames: u64,
    /// Telemetry bytes with twice that frame limit.
    pub bytes_at_2x_frames: u64,
}

/// The whole sweep.
#[derive(Debug, Clone)]
pub struct ScaleStudy {
    /// Frames per camera at every point.
    pub frame_limit: u64,
    /// One entry per stream count, ascending.
    pub points: Vec<ScalePoint>,
    /// The constant-memory proof (see [`TelemetryInvariance`]).
    pub invariance: TelemetryInvariance,
}

/// The stream counts the study sweeps: tiny in quick mode (tests, CI
/// smoke), 1k → 100k otherwise.
#[must_use]
pub fn scale_stream_counts(quick: bool) -> &'static [u64] {
    if quick {
        &[100, 250]
    } else {
        &[1_000, 10_000, 50_000, 100_000]
    }
}

/// `VmHWM` (peak resident set) of this process in bytes, from
/// `/proc/self/status`; `None` where the file or field is absent.
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

/// Sizes a cluster for `streams` 1 FPS ssd-mobilenet-v2 cameras: the
/// `(trpis, vrpis)` pair that fits the whole fleet with no headroom. Shared
/// with the sharded study, which sizes each shard's cluster the same way.
#[must_use]
pub fn size_cluster(streams: u64) -> (u32, u32) {
    let units = DataPlaneConfig::calibrated().profiled_units(&ssd_mobilenet_v2(), SCALE_FPS);
    let streams_per_tpu = TpuUnits::ONE.as_micro() / units.as_micro();
    let tpus = u32::try_from(streams.div_ceil(streams_per_tpu)).expect("TPU count fits u32");
    // Pod slots per node are CPU-bound (8 camera pods on a 4 GHz-millis
    // RPi); tRPis host camera pods too, so only the remainder needs vRPis.
    let probe = ClusterBuilder::new().vrpis(1).build();
    let req = ResourceRequest::camera_default();
    let node = &probe.nodes()[0];
    let slots =
        u64::from(node.cpu_millis() / req.cpu_millis()).min(node.mem_bytes() / req.mem_bytes());
    let vrpis = u32::try_from(streams.div_ceil(slots))
        .expect("node count fits u32")
        .saturating_sub(tpus);
    (tpus, vrpis.max(1))
}

/// Runs one sweep point: sizes a cluster for `streams` cameras, admits
/// them all, and replays every frame.
///
/// # Panics
///
/// Panics if any admission fails — the cluster is sized so that all of
/// them fit, so a failure is a sizing or scheduler bug, not load shedding.
#[must_use]
pub fn run_scale_point(streams: u64, frame_limit: u64) -> ScalePoint {
    let (tpus, vrpis) = size_cluster(streams);
    let cluster = ClusterBuilder::new().trpis(tpus).vrpis(vrpis).build();
    let nodes = u32::try_from(cluster.nodes().len()).expect("node count fits u32");
    let mut world = build_world(cluster, SystemConfig::microedge_full());

    let admit_start = Instant::now();
    for i in 0..streams {
        let spec = StreamSpec::builder(&format!("cam-{i}"), "ssd-mobilenet-v2")
            .fps(SCALE_FPS)
            .frame_limit(frame_limit)
            // Spread first frames across the 1-second interval so arrival
            // bursts do not synchronise; 997 is coprime with 1000, so the
            // offsets cycle through every millisecond.
            .start_offset(SimDuration::from_millis((i * 997) % 1000))
            .build();
        world
            .admit_stream(spec)
            .expect("the sweep sizes the cluster for every stream");
    }
    let admit_wall_s = admit_start.elapsed().as_secs_f64();

    let run_start = Instant::now();
    let results = world.run_to_completion(SimTime::from_secs(frame_limit + 3));
    let run_wall_s = run_start.elapsed().as_secs_f64();

    ScalePoint {
        streams,
        tpus,
        nodes,
        frames: results.reports().iter().map(|r| r.completed()).sum(),
        events: results.events_processed(),
        telemetry_bytes: results.telemetry_memory_bytes() as u64,
        admit_wall_s,
        run_wall_s,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// Runs the full sweep plus the frame-count invariance pair.
#[must_use]
pub fn run_scale(quick: bool) -> ScaleStudy {
    let counts = scale_stream_counts(quick);
    let points: Vec<ScalePoint> = counts
        .iter()
        .map(|&n| run_scale_point(n, SCALE_FRAME_LIMIT))
        .collect();
    let doubled = run_scale_point(counts[0], SCALE_FRAME_LIMIT * 2);
    let invariance = TelemetryInvariance {
        streams: counts[0],
        bytes_at_1x_frames: points[0].telemetry_bytes,
        bytes_at_2x_frames: doubled.telemetry_bytes,
    };
    ScaleStudy {
        frame_limit: SCALE_FRAME_LIMIT,
        points,
        invariance,
    }
}

/// Formats an optional byte count as a JSON number or `null`.
pub(crate) fn json_opt_u64(value: Option<u64>) -> String {
    value.map_or_else(|| "null".to_owned(), |v| v.to_string())
}

impl ScaleStudy {
    /// Renders this study's `"points"` array body: per point, one line of
    /// deterministic fields followed by one line of `host_`-prefixed
    /// measurements. CI drops the host lines (`grep -v '"host_'`) before
    /// byte-comparing, so determinism checks and the recorded perf
    /// trajectory coexist in one file.
    #[must_use]
    pub fn points_json(&self) -> String {
        let mut points = String::new();
        for (i, p) in self.points.iter().enumerate() {
            let comma = if i + 1 < self.points.len() { "," } else { "" };
            let _ = write!(
                points,
                "\n    {{\"streams\": {}, \"tpus\": {}, \"nodes\": {}, \"frames\": {}, \"events\": {}, \"telemetry_bytes\": {}, \"telemetry_bytes_per_stream\": {:.3},\n      \"host_events_per_sec\": {:.1}, \"host_replay_wall_s\": {:.3}, \"host_peak_rss_bytes\": {}}}{comma}",
                p.streams,
                p.tpus,
                p.nodes,
                p.frames,
                p.events,
                p.telemetry_bytes,
                p.telemetry_bytes_per_stream(),
                p.events_per_sec(),
                p.run_wall_s,
                json_opt_u64(p.peak_rss_bytes),
            );
        }
        points
    }

    /// Renders the serial half of the `BENCH_scale.json` document.
    /// Deterministic fields are byte-identical across runs and worker
    /// settings; host measurements live on dedicated `host_` lines the CI
    /// compare strips (see [`ScaleStudy::points_json`]). The `repro`
    /// binary appends the sharded study before the closing brace via
    /// [`crate::scale_sharded::render_bench_json`].
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"scale_out_study\",\n  \"workload\": \"N cameras x {frames} frames at {fps} FPS, ssd-mobilenet-v2, {config}\",\n  \"sketch_relative_error\": {err},\n  \"telemetry_invariance\": {{\"streams\": {inv_streams}, \"bytes_at_1x_frames\": {inv_1x}, \"bytes_at_2x_frames\": {inv_2x}}},\n  \"points\": [{points}\n  ]\n}}\n",
            frames = self.frame_limit,
            fps = SCALE_FPS,
            config = SystemConfig::microedge_full().label(),
            err = SKETCH_RELATIVE_ERROR,
            inv_streams = self.invariance.streams,
            inv_1x = self.invariance.bytes_at_1x_frames,
            inv_2x = self.invariance.bytes_at_2x_frames,
            points = self.points_json(),
        )
    }

    /// Renders the human table `repro --scale` prints (wall-clock, replay
    /// throughput, and peak RSS included).
    #[must_use]
    pub fn render_summary(&self) -> String {
        let mut table = Table::new(&[
            "streams",
            "TPUs",
            "nodes",
            "frames",
            "admit (s)",
            "replay (s)",
            "Mev/s",
            "peak RSS (MiB)",
            "telemetry (B)",
            "B/stream",
        ]);
        for p in &self.points {
            table.row_owned(vec![
                p.streams.to_string(),
                p.tpus.to_string(),
                p.nodes.to_string(),
                p.frames.to_string(),
                format!("{:.3}", p.admit_wall_s),
                format!("{:.3}", p.run_wall_s),
                format!("{:.2}", p.events_per_sec() / 1e6),
                p.peak_rss_bytes.map_or_else(
                    || "n/a".to_owned(),
                    |b| format!("{:.1}", b as f64 / (1024.0 * 1024.0)),
                ),
                p.telemetry_bytes.to_string(),
                format!("{:.3}", p.telemetry_bytes_per_stream()),
            ]);
        }
        format!(
            "### Scale-out study — {frames} frames/camera at {fps} FPS (latency percentiles \
             from a log-linear sketch, rel. error ≤ {err:.2}%)\n{table}telemetry is \
             frame-count-invariant: {inv_streams} streams hold {inv_1x} B at {lim}x frames \
             and {inv_2x} B at {lim2}x\n",
            frames = self.frame_limit,
            fps = SCALE_FPS,
            err = SKETCH_RELATIVE_ERROR * 100.0,
            table = table,
            inv_streams = self.invariance.streams,
            inv_1x = self.invariance.bytes_at_1x_frames,
            inv_2x = self.invariance.bytes_at_2x_frames,
            lim = 1,
            lim2 = 2,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_admits_every_stream_and_completes_frames() {
        let p = run_scale_point(96, 3);
        assert_eq!(p.streams, 96);
        assert_eq!(
            p.frames,
            96 * 3,
            "every admitted camera completes its frames"
        );
        assert!(p.events > 0);
        assert!(p.tpus >= 3, "96 cameras at ~42/TPU need at least 3 TPUs");
        assert!(p.telemetry_bytes > 0);
    }

    #[test]
    fn telemetry_is_frame_count_invariant() {
        let short = run_scale_point(64, 2);
        let long = run_scale_point(64, 8);
        assert_eq!(
            short.telemetry_bytes, long.telemetry_bytes,
            "sketch telemetry must not grow with frames"
        );
        assert!(long.frames > short.frames);
    }

    /// The CI filter: the artifact with every `host_` measurement line
    /// removed — exactly what `scripts/check.sh` byte-compares.
    fn strip_host_lines(json: &str) -> String {
        json.lines()
            .filter(|l| !l.contains("\"host_"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn json_is_deterministic_once_host_lines_are_stripped() {
        let study = run_scale(true);
        let again = run_scale(true);
        assert_eq!(
            strip_host_lines(&study.to_json()),
            strip_host_lines(&again.to_json()),
            "filtered JSON must be byte-identical"
        );
        let json = study.to_json();
        // Host measurements are present, but only on their own host_ lines
        // so the CI grep filter removes every one of them.
        assert!(json.contains("\"host_events_per_sec\""));
        let filtered = strip_host_lines(&json);
        assert!(!filtered.contains("wall"), "host fields leak: {filtered}");
        assert!(!filtered.contains("rss"));
        assert!(json.contains("\"telemetry_invariance\""));
        assert_eq!(
            study.invariance.bytes_at_1x_frames,
            study.invariance.bytes_at_2x_frames
        );
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn summary_reports_every_point() {
        let study = run_scale(true);
        let text = study.render_summary();
        for p in &study.points {
            assert!(text.contains(&p.streams.to_string()));
        }
        assert!(text.contains("frame-count-invariant"));
        assert!(text.contains("rel. error"));
    }
}
