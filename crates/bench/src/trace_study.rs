//! The real-world trace study (paper §6.3, Fig. 6a/6b).
//!
//! Replays a synthesised Azure-Functions-style camera trace against five
//! deployment disciplines — the four MicroEdge feature combinations plus
//! the dedicated baseline — and reports per-minute TPU utilization
//! (Fig. 6a) and cameras served (Fig. 6b).
//!
//! Trace churn (arrivals planning against a loaded pool, departures
//! releasing capacity) exercises the indexed admission fast path
//! continuously: every arrival plans through the pool's capacity index
//! into the scheduler's reusable `PlanBuffer`, and every release keeps
//! the index consistent incrementally.

use std::collections::BTreeMap;

use microedge_core::config::Features;
use microedge_core::runtime::{StreamId, StreamSpec};
use microedge_metrics::report::{fmt_f64, Table};
use microedge_sim::time::SimTime;
use microedge_workloads::apps::CameraApp;
use microedge_workloads::trace::{TraceConfig, TraceEvent};

use crate::runner::{build_world, experiment_cluster, SystemConfig};

/// The outcome of replaying one configuration.
#[derive(Debug, Clone)]
pub struct TraceOutcome {
    config: SystemConfig,
    windowed_utilization: Vec<f64>,
    served_series: Vec<f64>,
    admitted: u32,
    rejected: u32,
    events_processed: u64,
}

impl TraceOutcome {
    /// The configuration replayed.
    #[must_use]
    pub fn config(&self) -> SystemConfig {
        self.config
    }

    /// Fleet-average TPU utilization per minute (Fig. 6a).
    #[must_use]
    pub fn windowed_utilization(&self) -> &[f64] {
        &self.windowed_utilization
    }

    /// Average cameras served per minute (Fig. 6b).
    #[must_use]
    pub fn served_series(&self) -> &[f64] {
        &self.served_series
    }

    /// Arrivals admitted.
    #[must_use]
    pub fn admitted(&self) -> u32 {
        self.admitted
    }

    /// Arrivals refused by admission control.
    #[must_use]
    pub fn rejected(&self) -> u32 {
        self.rejected
    }

    /// Simulation events the kernel delivered during the replay — the work
    /// measure the perf harness (`repro --perf`) divides by wall-clock.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Mean utilization across the whole trace.
    #[must_use]
    pub fn mean_utilization(&self) -> f64 {
        if self.windowed_utilization.is_empty() {
            0.0
        } else {
            self.windowed_utilization.iter().sum::<f64>() / self.windowed_utilization.len() as f64
        }
    }

    /// Mean cameras served across the whole trace.
    #[must_use]
    pub fn mean_served(&self) -> f64 {
        if self.served_series.is_empty() {
            0.0
        } else {
            self.served_series.iter().sum::<f64>() / self.served_series.len() as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Arrive(u32),
    Depart(u32),
}

/// Replays `trace` against `config` on a `tpus`-TPU cluster.
///
/// Arrivals that admission control refuses are counted and dropped (the
/// camera "goes unserved", as in the paper's capacity-limited runs).
#[must_use]
pub fn run_trace(
    config: SystemConfig,
    trace: &[TraceEvent],
    trace_config: &TraceConfig,
    tpus: u32,
) -> TraceOutcome {
    let apps = CameraApp::trace_apps();
    let mut world = build_world(experiment_cluster(tpus), config);

    // Merge arrivals and (pre-computable) departures into one timeline.
    let mut actions: Vec<(SimTime, Action)> = Vec::new();
    for ev in trace {
        actions.push((ev.at, Action::Arrive(ev.seq)));
        if let Some(lifetime) = ev.lifetime {
            actions.push((ev.at + lifetime, Action::Depart(ev.seq)));
        }
    }
    actions.sort_by_key(|&(at, action)| (at, matches!(action, Action::Arrive(_))));

    let end = SimTime::ZERO + trace_config.duration;
    let by_seq: BTreeMap<u32, &TraceEvent> = trace.iter().map(|e| (e.seq, e)).collect();
    let mut live: BTreeMap<u32, StreamId> = BTreeMap::new();
    let mut admitted = 0;
    let mut rejected = 0;

    for (at, action) in actions {
        if at >= end {
            break;
        }
        world.run_until(at);
        match action {
            Action::Arrive(seq) => {
                let ev = by_seq[&seq];
                let app = &apps[ev.class.app_index()];
                let spec = StreamSpec::builder(&format!("trace-{seq}"), app.model().as_str())
                    .fps(app.fps())
                    .units(app.units())
                    .collocated(config.collocated())
                    .build();
                match world.admit_stream(spec) {
                    Ok(id) => {
                        live.insert(seq, id);
                        admitted += 1;
                    }
                    Err(_) => rejected += 1,
                }
            }
            Action::Depart(seq) => {
                if let Some(id) = live.remove(&seq) {
                    world.remove_stream(id).expect("live stream can be removed");
                }
            }
        }
    }

    world.run_until(end);
    let (results, served_series) = world.finish_with_served_series(end);
    TraceOutcome {
        config,
        windowed_utilization: results.windowed_utilization().to_vec(),
        served_series,
        admitted,
        rejected,
        events_processed: results.events_processed(),
    }
}

/// The five Fig. 6 configurations, strongest first.
#[must_use]
pub fn fig6_configs() -> [SystemConfig; 5] {
    [
        SystemConfig::MicroEdge(Features::all()),
        SystemConfig::MicroEdge(Features::co_compiling_only()),
        SystemConfig::MicroEdge(Features::partitioning_only()),
        SystemConfig::MicroEdge(Features::none()),
        SystemConfig::Baseline,
    ]
}

/// Replays the trace against all five configurations, one parallel job per
/// configuration (results come back in configuration order, so rendered
/// tables are identical to a serial run).
#[must_use]
pub fn run_fig6(trace: &[TraceEvent], trace_config: &TraceConfig, tpus: u32) -> Vec<TraceOutcome> {
    microedge_sim::par::par_map(fig6_configs().to_vec(), |_, config| {
        run_trace(config, trace, trace_config, tpus)
    })
}

/// Renders only the Fig. 6 summary table (used for the scaled-up run the
/// paper predicts would show "a stronger separation in the results").
#[must_use]
pub fn render_fig6_summary(title: &str, outcomes: &[TraceOutcome]) -> String {
    let mut summary = Table::new(&["config", "mean util", "mean served", "admitted", "rejected"]);
    for o in outcomes {
        summary.row_owned(vec![
            o.config().label(),
            fmt_f64(o.mean_utilization(), 3),
            fmt_f64(o.mean_served(), 2),
            o.admitted().to_string(),
            o.rejected().to_string(),
        ]);
    }
    format!(
        "### {title}
{summary}"
    )
}

/// Renders the Fig. 6a/6b series as minute-by-minute tables plus a summary.
#[must_use]
pub fn render_fig6(outcomes: &[TraceOutcome]) -> String {
    let minutes = outcomes
        .iter()
        .map(|o| o.windowed_utilization().len())
        .max()
        .unwrap_or(0);
    let labels: Vec<String> = outcomes.iter().map(|o| o.config().label()).collect();
    let mut headers: Vec<&str> = vec!["minute"];
    headers.extend(labels.iter().map(String::as_str));

    let mut util = Table::new(&headers);
    let mut served = Table::new(&headers);
    for minute in 0..minutes {
        let mut u_row = vec![minute.to_string()];
        let mut s_row = vec![minute.to_string()];
        for o in outcomes {
            u_row.push(fmt_f64(
                o.windowed_utilization().get(minute).copied().unwrap_or(0.0),
                3,
            ));
            s_row.push(fmt_f64(
                o.served_series().get(minute).copied().unwrap_or(0.0),
                2,
            ));
        }
        util.row_owned(u_row);
        served.row_owned(s_row);
    }

    let mut summary = Table::new(&["config", "mean util", "mean served", "admitted", "rejected"]);
    for o in outcomes {
        summary.row_owned(vec![
            o.config().label(),
            fmt_f64(o.mean_utilization(), 3),
            fmt_f64(o.mean_served(), 2),
            o.admitted().to_string(),
            o.rejected().to_string(),
        ]);
    }
    format!(
        "### Fig. 6a — per-minute avg TPU utilization\n{util}\n### Fig. 6b — cameras served per minute\n{served}\n### Trace summary\n{summary}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use microedge_sim::time::SimDuration;
    use microedge_workloads::trace::synthesize;

    fn short_trace() -> (Vec<TraceEvent>, TraceConfig) {
        let mut cfg = TraceConfig::microedge_downsized();
        cfg.duration = SimDuration::from_secs(5 * 60);
        (synthesize(&cfg, 7), cfg)
    }

    #[test]
    fn full_microedge_beats_baseline_on_both_axes() {
        let (trace, cfg) = short_trace();
        let full = run_trace(SystemConfig::microedge_full(), &trace, &cfg, 6);
        let baseline = run_trace(SystemConfig::Baseline, &trace, &cfg, 6);
        assert!(
            full.mean_served() > baseline.mean_served(),
            "microedge {} vs baseline {}",
            full.mean_served(),
            baseline.mean_served()
        );
        assert!(full.rejected() <= baseline.rejected());
    }

    #[test]
    fn feature_ordering_matches_fig6() {
        let (trace, cfg) = short_trace();
        let outcomes = run_fig6(&trace, &cfg, 6);
        let served: Vec<f64> = outcomes.iter().map(TraceOutcome::mean_served).collect();
        // Strongest configuration serves at least as many as the weakest,
        // and the baseline is last.
        assert!(served[0] >= served[3], "{served:?}");
        assert!(served[3] >= served[4], "{served:?}");
    }

    #[test]
    fn departures_release_capacity() {
        let (trace, cfg) = short_trace();
        let o = run_trace(SystemConfig::microedge_full(), &trace, &cfg, 6);
        assert!(o.admitted() > 0);
        // The served series fluctuates with the workload rather than only
        // growing (paper: "clients coming and going").
        let s = o.served_series();
        let max = s.iter().cloned().fold(0.0, f64::max);
        assert!(s.last().copied().unwrap_or(0.0) < max + 1e-9);
    }

    #[test]
    fn render_mentions_every_config() {
        let (trace, cfg) = short_trace();
        let outcomes = run_fig6(&trace, &cfg, 3);
        let text = render_fig6(&outcomes);
        for o in &outcomes {
            assert!(text.contains(&o.config().label()));
        }
        assert!(text.contains("Fig. 6a"));
        assert!(text.contains("Fig. 6b"));
    }
}
