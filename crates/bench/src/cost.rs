//! Cost-of-ownership comparison (paper Table 1).
//!
//! "How much hardware does each configuration need to support 17 Coral-Pie
//! camera instances?" The TPU count comes from the actual admission-control
//! capacity (not a closed-form guess), the RPi count is one host per camera
//! instance as in the paper, and prices come from the Table 1 cost model.
//!
//! Note one deliberate divergence, recorded in `EXPERIMENTS.md`: 17 cameras
//! of 0.35 TPU units at two-per-TPU need **9** TPUs without workload
//! partitioning (⌈17 / 2⌉); the paper's table lists 8, which only covers 16
//! cameras under its own scheme. We report what admission control actually
//! requires.

use microedge_cluster::cost::CostModel;
use microedge_metrics::report::Table;
use microedge_workloads::apps::CameraApp;

use crate::runner::SystemConfig;
use crate::scalability::max_cameras;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostRow {
    config: SystemConfig,
    tpus: u32,
    rpis: u32,
    total_usd: u32,
}

impl CostRow {
    /// The configuration priced.
    #[must_use]
    pub fn config(&self) -> SystemConfig {
        self.config
    }

    /// TPUs required.
    #[must_use]
    pub fn tpus(&self) -> u32 {
        self.tpus
    }

    /// RPis required.
    #[must_use]
    pub fn rpis(&self) -> u32 {
        self.rpis
    }

    /// Total hardware cost in US dollars.
    #[must_use]
    pub fn total_usd(&self) -> u32 {
        self.total_usd
    }
}

/// The smallest TPU count whose admission capacity covers `cameras`
/// instances of `app` under `config`.
///
/// # Panics
///
/// Panics if even 10 × `cameras` TPUs cannot cover the demand (the
/// configuration cannot run this app at all).
#[must_use]
pub fn tpus_needed(app: &CameraApp, config: SystemConfig, cameras: u32) -> u32 {
    (1..=cameras * 10)
        .find(|&tpus| max_cameras(app, config, tpus) >= cameras)
        .unwrap_or_else(|| panic!("{} cannot support {cameras} cameras", config.label()))
}

/// Computes Table 1 for `cameras` instances of `app`.
#[must_use]
pub fn table1_rows(app: &CameraApp, cameras: u32, prices: CostModel) -> Vec<CostRow> {
    [
        SystemConfig::Baseline,
        SystemConfig::microedge_no_wp(),
        SystemConfig::microedge_full(),
    ]
    .into_iter()
    .map(|config| {
        let tpus = tpus_needed(app, config, cameras);
        let rpis = cameras;
        CostRow {
            config,
            tpus,
            rpis,
            total_usd: prices.total_usd(rpis, tpus),
        }
    })
    .collect()
}

/// Renders Table 1.
#[must_use]
pub fn render_table1(app: &CameraApp, cameras: u32) -> String {
    let prices = CostModel::paper_prices();
    let rows = table1_rows(app, cameras, prices);
    let baseline_cost = rows[0].total_usd();
    let mut table = Table::new(&["config", "#TPUs", "#RPis", "total cost", "saving"]);
    for row in &rows {
        let saving = prices.saving(baseline_cost, row.total_usd());
        table.row_owned(vec![
            row.config().label(),
            row.tpus().to_string(),
            row.rpis().to_string(),
            format!("${}", row.total_usd()),
            format!("{:.0}%", saving * 100.0),
        ]);
    }
    format!(
        "### Table 1 — cost to support {cameras} {} camera instances\n{table}",
        app.name()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_holds() {
        let rows = table1_rows(&CameraApp::coral_pie(), 17, CostModel::paper_prices());
        assert_eq!(rows.len(), 3);
        // Baseline: one TPU per camera.
        assert_eq!(rows[0].tpus(), 17);
        assert_eq!(rows[0].total_usd(), 2550);
        // w/o W.P.: ⌈17/2⌉ = 9 TPUs (the paper's 8 covers only 16 cameras).
        assert_eq!(rows[1].tpus(), 9);
        assert_eq!(rows[1].total_usd(), 1950);
        // w/ W.P.: ⌈17 × 0.35⌉ = 6 TPUs, $1725 exactly as in the paper.
        assert_eq!(rows[2].tpus(), 6);
        assert_eq!(rows[2].total_usd(), 1725);
        // Monotone cost ordering.
        assert!(rows[0].total_usd() > rows[1].total_usd());
        assert!(rows[1].total_usd() > rows[2].total_usd());
    }

    #[test]
    fn full_microedge_saves_about_a_third() {
        let prices = CostModel::paper_prices();
        let rows = table1_rows(&CameraApp::coral_pie(), 17, prices);
        let saving = prices.saving(rows[0].total_usd(), rows[2].total_usd());
        assert!((saving - 0.324).abs() < 0.01, "≈ 33 %, got {saving}");
    }

    #[test]
    fn bodypix_needs_double_tpus_on_baseline() {
        let app = CameraApp::bodypix();
        assert_eq!(tpus_needed(&app, SystemConfig::Baseline, 3), 6);
        assert_eq!(tpus_needed(&app, SystemConfig::microedge_full(), 3), 4);
    }

    #[test]
    fn render_includes_dollar_rows() {
        let text = render_table1(&CameraApp::coral_pie(), 17);
        assert!(text.contains("$2550"));
        assert!(text.contains("$1725"));
        assert!(text.contains("Table 1"));
    }
}
