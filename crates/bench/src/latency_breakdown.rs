//! Per-invoke latency breakdown (paper §6.4.2, Fig. 7b) and the serverless
//! design ablation (§2).
//!
//! The Fig. 7b numbers come from the *measured* data plane — a real
//! simulation run of the Coral-Pie pipeline under each design — not from
//! the analytic path model (which exists in `microedge-baselines` and is
//! used here as a cross-check).

use microedge_baselines::serverless::ServerlessPath;
use microedge_cluster::network::NetworkModel;
use microedge_core::config::DataPlaneConfig;
use microedge_core::runtime::StreamSpec;
use microedge_metrics::latency::Phase;
use microedge_metrics::report::{fmt_f64, Table};
use microedge_models::catalog::Catalog;
use microedge_sim::time::SimTime;
use microedge_workloads::apps::CameraApp;

use crate::runner::{build_world, experiment_cluster, SystemConfig};

/// Mean per-phase latency for one design.
#[derive(Debug, Clone)]
pub struct BreakdownRow {
    label: String,
    phases_ms: [f64; 4],
    total_ms: f64,
}

impl BreakdownRow {
    /// Design label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Mean cost per phase in milliseconds, in pipeline order.
    #[must_use]
    pub fn phases_ms(&self) -> [f64; 4] {
        self.phases_ms
    }

    /// Mean end-to-end cost in milliseconds.
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.total_ms
    }
}

/// Measures the Coral-Pie invoke breakdown under one configuration by
/// actually running the data plane with a single camera.
#[must_use]
pub fn measure_breakdown(config: SystemConfig, frames: u64) -> BreakdownRow {
    let app = CameraApp::coral_pie();
    let mut world = build_world(experiment_cluster(1), config);
    let spec = StreamSpec::builder("probe", app.model().as_str())
        .fps(app.fps())
        .units(app.units())
        .frame_limit(frames)
        .collocated(config.collocated())
        .build();
    world.admit_stream(spec).expect("one camera always fits");
    let results = world.run_to_completion(SimTime::from_secs(600));
    let b = results.breakdowns();
    BreakdownRow {
        label: config.label(),
        phases_ms: [
            b.mean_ms(Phase::PreProcess),
            b.mean_ms(Phase::Transmission),
            b.mean_ms(Phase::Inference),
            b.mean_ms(Phase::PostProcess),
        ],
        total_ms: b.mean_total_ms(),
    }
}

/// The analytic serverless row for the same pipeline (the §2 / §6.4.2
/// design-justification ablation).
#[must_use]
pub fn serverless_row() -> BreakdownRow {
    let catalog = Catalog::builtin();
    let profile = catalog.expect(&"ssd-mobilenet-v2".into());
    let net = NetworkModel::rpi_gigabit();
    let dp = DataPlaneConfig::calibrated();
    let b = ServerlessPath::rpi_calibrated().invoke_breakdown(profile, &net, &dp);
    BreakdownRow {
        label: "serverless (shared queue)".to_owned(),
        phases_ms: [
            b.phase(Phase::PreProcess).as_millis_f64(),
            b.phase(Phase::Transmission).as_millis_f64(),
            b.phase(Phase::Inference).as_millis_f64(),
            b.phase(Phase::PostProcess).as_millis_f64(),
        ],
        total_ms: b.total().as_millis_f64(),
    }
}

/// Renders Fig. 7b (baseline vs MicroEdge) plus the serverless ablation
/// row.
#[must_use]
pub fn render_fig7b(frames: u64) -> String {
    let rows = vec![
        measure_breakdown(SystemConfig::Baseline, frames),
        measure_breakdown(SystemConfig::microedge_full(), frames),
        serverless_row(),
    ];
    let mut table = Table::new(&[
        "design",
        "pre-proc (ms)",
        "transmission (ms)",
        "inference (ms)",
        "post-proc (ms)",
        "total (ms)",
    ]);
    for r in &rows {
        let p = r.phases_ms();
        table.row_owned(vec![
            r.label().to_owned(),
            fmt_f64(p[0], 2),
            fmt_f64(p[1], 2),
            fmt_f64(p[2], 2),
            fmt_f64(p[3], 2),
            fmt_f64(r.total_ms(), 2),
        ]);
    }
    format!("### Fig. 7b — Invoke latency breakdown (Coral-Pie)\n{table}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmission_dominates_microedge_overhead() {
        let baseline = measure_breakdown(SystemConfig::Baseline, 100);
        let microedge = measure_breakdown(SystemConfig::microedge_full(), 100);
        let delta = microedge.total_ms() - baseline.total_ms();
        let trans_delta = microedge.phases_ms()[1] - baseline.phases_ms()[1];
        assert!((delta - 8.0).abs() < 0.3, "≈ 8 ms extra, got {delta}");
        assert!(
            (trans_delta - delta).abs() < 0.05,
            "the whole delta is transmission"
        );
        // Inference and the host-side phases are identical.
        assert!((microedge.phases_ms()[2] - baseline.phases_ms()[2]).abs() < 0.05);
    }

    #[test]
    fn microedge_total_leaves_slo_headroom() {
        let microedge = measure_breakdown(SystemConfig::microedge_full(), 100);
        // Well inside the 66.7 ms frame budget at 15 FPS.
        assert!(microedge.total_ms() < 45.0, "{}", microedge.total_ms());
    }

    #[test]
    fn serverless_is_strictly_worse() {
        let microedge = measure_breakdown(SystemConfig::microedge_full(), 100);
        let serverless = serverless_row();
        assert!(serverless.total_ms() > microedge.total_ms() + 9.0);
    }

    #[test]
    fn render_contains_all_designs() {
        let text = render_fig7b(50);
        assert!(text.contains("baseline"));
        assert!(text.contains("microedge w/ w.p."));
        assert!(text.contains("serverless"));
    }
}
