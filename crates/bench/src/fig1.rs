//! Model processing times on the TPU (paper Fig. 1).
//!
//! For each catalog model: its inference time, and the frame rate that
//! would be needed to drive a dedicated TPU to 100 % utilization (the
//! orange line in the figure). The figure's takeaways are asserted by the
//! accompanying tests: most models need impractical frame rates to
//! saturate a TPU, while a few cannot even sustain 15 FPS alone.

use microedge_metrics::report::{fmt_f64, Table};
use microedge_models::catalog::fig1_models;
use microedge_models::profile::ModelProfile;
use microedge_sim::time::SimDuration;

/// One bar of Fig. 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Row {
    model: String,
    kind: String,
    inference_ms: f64,
    fps_for_full_util: f64,
    sustains_15fps: bool,
}

impl Fig1Row {
    /// Model name.
    #[must_use]
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Inference time in milliseconds.
    #[must_use]
    pub fn inference_ms(&self) -> f64 {
        self.inference_ms
    }

    /// Frame rate for 100 % utilization (the orange line).
    #[must_use]
    pub fn fps_for_full_util(&self) -> f64 {
        self.fps_for_full_util
    }

    /// `true` when a single TPU sustains the model at 15 FPS.
    #[must_use]
    pub fn sustains_15fps(&self) -> bool {
        self.sustains_15fps
    }
}

fn row(m: &ModelProfile) -> Fig1Row {
    let interarrival_15fps = SimDuration::from_millis_f64(1000.0 / 15.0);
    Fig1Row {
        model: m.id().to_string(),
        kind: m.kind().to_string(),
        inference_ms: m.inference_time().as_millis_f64(),
        fps_for_full_util: m.fps_for_full_utilization(),
        sustains_15fps: m.inference_time() <= interarrival_15fps,
    }
}

/// The eight Fig. 1 rows in figure order.
#[must_use]
pub fn fig1_rows() -> Vec<Fig1Row> {
    fig1_models().iter().map(row).collect()
}

/// Renders the Fig. 1 table.
#[must_use]
pub fn render_fig1() -> String {
    let mut table = Table::new(&[
        "model",
        "task",
        "inference (ms)",
        "FPS for 100% util",
        "sustains 15 FPS alone",
    ]);
    for r in fig1_rows() {
        table.row_owned(vec![
            r.model.clone(),
            r.kind.clone(),
            fmt_f64(r.inference_ms, 1),
            fmt_f64(r.fps_for_full_util, 1),
            if r.sustains_15fps { "yes" } else { "no" }.to_owned(),
        ]);
    }
    format!("### Fig. 1 — model processing times on the TPU\n{table}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_models_four_detection_four_classification() {
        let rows = fig1_rows();
        assert_eq!(rows.len(), 8);
        let det = rows.iter().filter(|r| r.kind == "detection").count();
        let cls = rows.iter().filter(|r| r.kind == "classification").count();
        assert_eq!((det, cls), (4, 4));
    }

    #[test]
    fn five_of_eight_need_over_50fps() {
        let over = fig1_rows()
            .iter()
            .filter(|r| r.fps_for_full_util > 50.0)
            .count();
        assert_eq!(over, 5);
    }

    #[test]
    fn three_models_cannot_sustain_15fps() {
        let cannot: Vec<String> = fig1_rows()
            .iter()
            .filter(|r| !r.sustains_15fps)
            .map(|r| r.model.clone())
            .collect();
        assert_eq!(
            cannot,
            vec!["efficientdet-lite0", "efficientnet-lite0", "resnet-50"]
        );
    }

    #[test]
    fn render_mentions_every_model() {
        let text = render_fig1();
        for r in fig1_rows() {
            assert!(text.contains(r.model()), "{}", r.model());
        }
    }
}
