//! Online-defragmentation study (`repro --defrag`).
//!
//! Two sections, one artifact (`BENCH_defrag.json`):
//!
//! 1. **24-hour churn trace** — one round per simulated minute of
//!    arrive/depart churn against an [`ExtendedScheduler`], replayed twice
//!    on the *same* trace: once plain, once with a
//!    [`microedge_core::defrag`] planning cycle every
//!    [`DEFRAG_EVERY_ROUNDS`] rounds. Every round samples packing
//!    efficiency against the Martello–Toth L2 lower bound
//!    ([`crate::packing::l2_lower_bound`]), the pool's fragmentation
//!    ratio, and a unit-conservation audit (pool load must equal the live
//!    multiset, to the micro-unit).
//! 2. **Sharded fleet section** — a 4-cluster [`ShardedWorld`] behind the
//!    front door, where scripted departures shatter every cluster into
//!    0.6-unit holes and late 0.8-unit global admissions only fit if the
//!    epoch-barrier defragmenter has consolidated them.
//!
//! The JSON follows the repo convention: wall-clock measurements ride
//! `host_`-prefixed lines; every other field is a pure function of the
//! trace, so CI strips `host_` lines and byte-compares the artifact
//! across `MICROEDGE_WORKERS` settings.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::time::Instant;

use microedge_cluster::topology::ClusterBuilder;
use microedge_core::config::Features;
use microedge_core::defrag::{run_cycle, DefragConfig};
use microedge_core::runtime::{StreamSpec, WorldCommand};
use microedge_core::scheduler::ExtendedScheduler;
use microedge_core::shard::ShardedWorld;
use microedge_core::units::TpuUnits;
use microedge_metrics::defrag::{packing_efficiency, DefragStats};
use microedge_metrics::report::{fmt_f64, Table};
use microedge_models::catalog::Catalog;
use microedge_orch::lifecycle::Orchestrator;
use microedge_orch::pod::{PodId, PodSpec, ResourceRequest, EXT_MODEL, EXT_TPU_UNITS};
use microedge_sim::rng::DetRng;
use microedge_sim::time::{SimDuration, SimTime};
use microedge_tpu::device::TpuId;

use crate::packing::l2_lower_bound;

/// TPUs in the churn cluster (full mode).
pub const DEFRAG_TPUS: u32 = 24;
/// Churn rounds in full mode: 24 hours at one round per minute.
pub const DEFRAG_ROUNDS: u32 = 1440;
/// Quick-mode cluster size.
pub const DEFRAG_TPUS_QUICK: u32 = 12;
/// Quick-mode rounds (2 hours).
pub const DEFRAG_ROUNDS_QUICK: u32 = 120;
/// A planning cycle runs every this many rounds (= simulated minutes).
pub const DEFRAG_EVERY_ROUNDS: u32 = 3;
/// Per-round probability that a live camera departs. The steady-state
/// fleet is `arrival_rate / DEPART_CHANCE` cameras.
pub const DEPART_CHANCE: f64 = 1.0 / 45.0;
/// Trace seed.
pub const DEFRAG_SEED: u64 = 0x00DE_F7A6;

/// One step of the policy-independent churn trace. Departures name the
/// *arrival ordinal*, not a pod id, so the same trace replays against
/// both arms even when their admission outcomes diverge: departing a
/// camera the arm rejected is a no-op.
#[derive(Debug, Clone)]
pub enum Op {
    /// A camera arrives asking for `micro` micro-units of `model`.
    Arrive {
        /// Catalog name of the camera's model.
        model: &'static str,
        /// Requested TPU units, in micro-units.
        micro: u64,
    },
    /// The `n`-th arrival (if admitted and still live) departs.
    Depart(u32),
}

/// Generates `rounds` rounds of churn. Arrivals are 80% small cameras
/// (0.10–0.50 units) and 20% large (0.70–0.95 units) — the large tail is
/// what fragmentation starves. Departure draws walk the ordinal set the
/// generator itself tracks, so the trace is independent of any arm's
/// admission decisions.
#[must_use]
pub fn churn_trace(rounds: u32, arrival_chance: f64, seed: u64) -> Vec<Vec<Op>> {
    let models = ["mobilenet-v1", "ssd-mobilenet-v2"];
    let mut rng = DetRng::seed_from(seed);
    let mut live: Vec<u32> = Vec::new();
    let mut arrivals = 0u32;
    let mut trace = Vec::with_capacity(rounds as usize);
    for _ in 0..rounds {
        let mut ops = Vec::new();
        // Departures first: holes open before the round's arrival lands.
        let mut idx = 0;
        while idx < live.len() {
            if rng.chance(DEPART_CHANCE) {
                ops.push(Op::Depart(live.swap_remove(idx)));
            } else {
                idx += 1;
            }
        }
        if rng.chance(arrival_chance) {
            let micro = if rng.chance(0.8) {
                rng.uniform_range(100_000, 500_001)
            } else {
                rng.uniform_range(700_000, 950_001)
            };
            let model = models[rng.index(models.len())];
            ops.push(Op::Arrive { model, micro });
            live.push(arrivals);
            arrivals += 1;
        }
        trace.push(ops);
    }
    trace
}

/// One arm of the churn replay: the same trace with or without the
/// defragmenter. Every field except `host_wall_s` is deterministic.
#[derive(Debug, Clone)]
pub struct DefragArm {
    /// Whether the defragmenter ran.
    pub defrag: bool,
    /// Cameras admitted over the trace.
    pub admitted: u64,
    /// Cameras rejected over the trace.
    pub rejected: u64,
    /// Mean packing efficiency (L2 bins / TPUs used) over all rounds.
    pub mean_efficiency: f64,
    /// Mean efficiency over the second half of the trace (steady state).
    pub steady_efficiency: f64,
    /// Worst single-round efficiency.
    pub min_efficiency: f64,
    /// Mean fragmentation ratio (largest free slot / total free).
    pub mean_fragmentation: f64,
    /// Rounds where pool load differed from the live multiset (must be 0).
    pub conservation_violations: u64,
    /// Hourly packing-efficiency samples (one per 60 rounds, plus final).
    pub efficiency_series: Vec<f64>,
    /// Planner counters for this arm (all-zero on the plain arm).
    pub stats: DefragStats,
    /// Wall-clock seconds for the arm (host measurement).
    pub host_wall_s: f64,
}

impl DefragArm {
    /// Admission success rate over the whole trace.
    #[must_use]
    pub fn admit_rate(&self) -> f64 {
        let total = self.admitted + self.rejected;
        if total == 0 {
            return 1.0;
        }
        self.admitted as f64 / total as f64
    }
}

/// Replays `trace` against a `tpus`-TPU cluster, with the defragmenter on
/// or off. Partitioning is disabled (churn regime, matching
/// [`crate::packing`]): each camera places whole, so fragmentation is
/// load-bearing rather than hidden by stage-splitting.
///
/// # Panics
///
/// Panics if the pool's unit ledger ever disagrees with the live-pod
/// multiset mid-replay in debug builds (the release replay records the
/// violation and keeps going, so the artifact reports the count).
#[must_use]
pub fn run_churn_arm(trace: &[Vec<Op>], tpus: u32, defrag: bool) -> DefragArm {
    let start = Instant::now();
    let cluster = ClusterBuilder::new().trpis(tpus).vrpis(4).build();
    let mut sched =
        ExtendedScheduler::new(&cluster, Catalog::builtin(), Features::co_compiling_only());
    let mut orch = Orchestrator::new(cluster);
    // A cron-style repacker gets a fatter budget than the default
    // epoch-barrier config: its cycle window is a whole simulated minute,
    // not a 500 ms barrier.
    let config = DefragConfig {
        interval_epochs: 1,
        cycle_budget: SimDuration::from_secs(20),
        max_moves_per_cycle: 16,
        ..DefragConfig::default()
    };
    let mut stats = DefragStats::default();
    let frozen: BTreeSet<PodId> = BTreeSet::new();

    // Live pods keyed by arrival ordinal; values carry the pod id and the
    // admitted micro-units (the conservation ledger's expected side).
    let mut live: BTreeMap<u32, (PodId, u64)> = BTreeMap::new();
    let mut arrivals = 0u32;
    let (mut admitted, mut rejected) = (0u64, 0u64);
    let mut conservation_violations = 0u64;
    let mut efficiency = Vec::with_capacity(trace.len());
    let mut frag_sum = 0.0;

    for (round, ops) in trace.iter().enumerate() {
        for op in ops {
            match op {
                Op::Arrive { model, micro } => {
                    let ordinal = arrivals;
                    arrivals += 1;
                    let spec = PodSpec::builder(&format!("cam-{ordinal}"), "coral-pie:latest")
                        .resources(ResourceRequest::camera_default())
                        .extension(EXT_MODEL, model)
                        .extension(EXT_TPU_UNITS, &format!("{}", *micro as f64 / 1e6))
                        .build();
                    match sched.deploy(&mut orch, spec) {
                        Ok(deployment) => {
                            live.insert(ordinal, (deployment.pod(), *micro));
                            admitted += 1;
                        }
                        Err(_) => rejected += 1,
                    }
                }
                Op::Depart(ordinal) => {
                    if let Some((pod, _)) = live.remove(ordinal) {
                        sched.teardown(&mut orch, pod).expect("live pod tears down");
                    }
                }
            }
        }
        if defrag && (round as u32).is_multiple_of(DEFRAG_EVERY_ROUNDS) {
            run_cycle(&mut sched, &frozen, &config, &mut stats);
        }

        // Per-round audit: the pool's committed load must equal the live
        // multiset exactly — defrag moves units, it must never mint them.
        let pool_load: u64 = (0..tpus)
            .map(|i| sched.pool().account(TpuId(i)).load().as_micro())
            .sum();
        let live_load: u64 = live.values().map(|(_, micro)| micro).sum();
        if pool_load != live_load {
            debug_assert_eq!(pool_load, live_load, "defrag minted or lost units");
            conservation_violations += 1;
        }

        let units: Vec<TpuUnits> = live
            .values()
            .map(|(_, micro)| TpuUnits::from_micro(*micro))
            .collect();
        efficiency.push(packing_efficiency(
            l2_lower_bound(&units),
            sched.pool().used_tpus(),
        ));
        frag_sum += sched.pool().capacity_summary().fragmentation_ratio();
    }

    let rounds = efficiency.len().max(1) as f64;
    let steady: &[f64] = &efficiency[efficiency.len() / 2..];
    let hourly_stride = (trace.len() / 24).max(1);
    let mut series: Vec<f64> = efficiency.iter().step_by(hourly_stride).copied().collect();
    if let Some(&last) = efficiency.last() {
        series.push(last);
    }
    DefragArm {
        defrag,
        admitted,
        rejected,
        mean_efficiency: efficiency.iter().sum::<f64>() / rounds,
        steady_efficiency: steady.iter().sum::<f64>() / steady.len().max(1) as f64,
        min_efficiency: efficiency.iter().copied().fold(1.0, f64::min),
        mean_fragmentation: frag_sum / rounds,
        conservation_violations,
        efficiency_series: series,
        stats,
        host_wall_s: start.elapsed().as_secs_f64(),
    }
}

/// Fleet-section shape: clusters (= regions) of 2 TPUs each.
pub const FLEET_CLUSTERS: u32 = 4;
const FLEET_STREAMS_PER_CLUSTER: u32 = 4;
const FLEET_LATE_UNITS: u64 = 800_000;

/// One arm of the sharded fleet section: deterministic end-to-end defrag
/// through `ShardedWorld` epoch barriers and the front door.
#[derive(Debug, Clone)]
pub struct DefragFleetArm {
    /// Whether `ShardedWorld::enable_defrag` was armed.
    pub defrag: bool,
    /// Late 0.8-unit global admissions the front door rejected.
    pub admit_rejected: u64,
    /// Late global admissions that found a consolidated slot.
    pub late_admitted: u64,
    /// Merged planner counters across shards.
    pub stats: DefragStats,
    /// Frames completed fleet-wide (work fingerprint).
    pub frames: u64,
}

/// Runs the fleet section once. Each of the four 2-TPU clusters admits
/// four 0.4-unit cameras (two per TPU), then one camera per TPU departs
/// at t=2 s, leaving every TPU 0.4 loaded: 1.2 free units per cluster but
/// a largest hole of only 0.6. At t=6 s one 0.8-unit camera per region
/// arrives through the front door — placeable only where the barrier
/// defragmenter has consolidated the stragglers onto one TPU.
///
/// # Panics
///
/// Panics if a scripted pre-churn admission fails (the fleet is sized so
/// they cannot).
#[must_use]
pub fn run_fleet_arm(defrag: bool) -> DefragFleetArm {
    let fleet = (0..FLEET_CLUSTERS).map(|_| ClusterBuilder::new().trpis(2).vrpis(2).build());
    let mut world =
        ShardedWorld::new(fleet, Features::co_compiling_only()).with_front_door(FLEET_CLUSTERS, 1);
    if defrag {
        world.enable_defrag(DefragConfig {
            interval_epochs: 1,
            ..DefragConfig::default()
        });
    }
    for c in 0..FLEET_CLUSTERS {
        let mut ids = Vec::new();
        for i in 0..FLEET_STREAMS_PER_CLUSTER {
            let id = world
                .admit_stream(
                    c,
                    StreamSpec::builder(&format!("cam-{c}-{i}"), "mobilenet-v1")
                        .units(TpuUnits::from_micro(400_000))
                        .frame_limit(150)
                        .build(),
                )
                .expect("pre-churn fleet has room");
            ids.push(id);
        }
        // First-fit pairs arrivals (0,1) on TPU 0 and (2,3) on TPU 1;
        // removing 0 and 2 leaves one 0.4-unit pod per TPU.
        for &victim in &[0usize, 2] {
            world.schedule_command(
                SimTime::from_secs(2),
                c,
                WorldCommand::Remove(ids[victim].local),
            );
        }
    }
    for region in 0..FLEET_CLUSTERS {
        world.admit_global(
            SimTime::from_secs(6),
            region,
            StreamSpec::builder(&format!("late-{region}"), "mobilenet-v1")
                .units(TpuUnits::from_micro(FLEET_LATE_UNITS))
                .frame_limit(60)
                .build(),
        );
    }
    let (results, report) = world.run_fleet_to_completion(SimTime::from_secs(30));
    DefragFleetArm {
        defrag,
        admit_rejected: report.admit_rejected,
        late_admitted: u64::from(FLEET_CLUSTERS) - report.admit_rejected,
        stats: results.defrag().clone(),
        frames: results.reports().iter().map(|r| r.completed()).sum(),
    }
}

/// The full study: both churn arms plus both fleet arms.
#[derive(Debug, Clone)]
pub struct DefragStudy {
    /// TPUs in the churn cluster.
    pub tpus: u32,
    /// Churn rounds replayed (one per simulated minute).
    pub rounds: u32,
    /// Churn arms: `[plain, defrag]`.
    pub arms: Vec<DefragArm>,
    /// Fleet arms: `[plain, defrag]`.
    pub fleet: Vec<DefragFleetArm>,
}

/// Runs the study. Quick mode shrinks the trace to 2 simulated hours on
/// half the TPUs (tests, CI smoke); arms run in parallel via the
/// deterministic `par_map`, so worker count never touches the results.
#[must_use]
pub fn run_defrag_study(quick: bool) -> DefragStudy {
    let (tpus, rounds, arrival_chance) = if quick {
        (DEFRAG_TPUS_QUICK, DEFRAG_ROUNDS_QUICK, 0.45)
    } else {
        (DEFRAG_TPUS, DEFRAG_ROUNDS, 0.9)
    };
    let trace = churn_trace(rounds, arrival_chance, DEFRAG_SEED);
    let arms = microedge_sim::par::par_map(vec![false, true], |_, defrag| {
        run_churn_arm(&trace, tpus, defrag)
    });
    let fleet = microedge_sim::par::par_map(vec![false, true], |_, defrag| run_fleet_arm(defrag));
    DefragStudy {
        tpus,
        rounds,
        arms,
        fleet,
    }
}

fn arm_label(defrag: bool) -> &'static str {
    if defrag {
        "defrag"
    } else {
        "no-defrag"
    }
}

/// Renders the study as the markdown tables `repro --defrag` prints.
#[must_use]
pub fn render_defrag(study: &DefragStudy) -> String {
    let mut table = Table::new(&[
        "arm",
        "admit rate",
        "mean eff",
        "steady eff",
        "min eff",
        "frag ratio",
        "moves",
        "recovered units",
        "disruption s",
    ]);
    for arm in &study.arms {
        table.row_owned(vec![
            arm_label(arm.defrag).to_owned(),
            fmt_f64(arm.admit_rate(), 4),
            fmt_f64(arm.mean_efficiency, 4),
            fmt_f64(arm.steady_efficiency, 4),
            fmt_f64(arm.min_efficiency, 4),
            fmt_f64(arm.mean_fragmentation, 3),
            arm.stats.moves.to_string(),
            fmt_f64(arm.stats.units_recovered_micro as f64 / 1e6, 2),
            fmt_f64(arm.stats.disruption().as_secs_f64(), 3),
        ]);
    }
    let mut fleet_table = Table::new(&[
        "arm",
        "late admitted",
        "late rejected",
        "moves",
        "recovered units",
        "frames",
    ]);
    for arm in &study.fleet {
        fleet_table.row_owned(vec![
            arm_label(arm.defrag).to_owned(),
            arm.late_admitted.to_string(),
            arm.admit_rejected.to_string(),
            arm.stats.moves.to_string(),
            fmt_f64(arm.stats.units_recovered_micro as f64 / 1e6, 2),
            arm.frames.to_string(),
        ]);
    }
    format!(
        "### Online defragmentation — {rounds}-minute churn trace, {tpus} TPUs \
         (packing efficiency = L2 lower bound / TPUs used)\n{table}\n\
         ### Fleet section — {clusters}×2-TPU clusters, 0.8-unit late admits \
         through the front door\n{fleet_table}\n",
        rounds = study.rounds,
        tpus = study.tpus,
        clusters = FLEET_CLUSTERS,
    )
}

/// Renders the `BENCH_defrag.json` document. Wall-clock measurements ride
/// `host_`-prefixed lines; every other field is a pure function of the
/// seeded trace.
#[must_use]
pub fn to_json(study: &DefragStudy) -> String {
    let mut arms = String::new();
    for (i, a) in study.arms.iter().enumerate() {
        let comma = if i + 1 < study.arms.len() { "," } else { "" };
        let series = a
            .efficiency_series
            .iter()
            .map(|e| format!("{e:.4}"))
            .collect::<Vec<_>>()
            .join(", ");
        let s = &a.stats;
        let _ = write!(
            arms,
            "\n      {{\"arm\": \"{label}\", \"admitted\": {adm}, \"rejected\": {rej}, \
             \"admit_rate\": {rate:.6},\n        \
             \"mean_efficiency\": {mean:.6}, \"steady_efficiency\": {steady:.6}, \
             \"min_efficiency\": {min:.6}, \"mean_fragmentation\": {frag:.6},\n        \
             \"conservation_violations\": {viol},\n        \
             \"cycles\": {cycles}, \"moves\": {moves}, \"pods_migrated\": {pods}, \
             \"units_recovered_micro\": {rec}, \"disruption_ns\": {dis},\n        \
             \"skipped\": {{\"gain\": {sg}, \"guard\": {sgu}, \"budget\": {sb}, \
             \"cost\": {sc}, \"unplaceable\": {su}}},\n        \
             \"efficiency_hourly\": [{series}],\n        \
             \"host_wall_s\": {wall:.3}}}{comma}",
            label = arm_label(a.defrag),
            adm = a.admitted,
            rej = a.rejected,
            rate = a.admit_rate(),
            mean = a.mean_efficiency,
            steady = a.steady_efficiency,
            min = a.min_efficiency,
            frag = a.mean_fragmentation,
            viol = a.conservation_violations,
            cycles = s.cycles,
            moves = s.moves,
            pods = s.pods_migrated,
            rec = s.units_recovered_micro,
            dis = s.disruption_ns,
            sg = s.skipped_gain,
            sgu = s.skipped_guard,
            sb = s.skipped_budget,
            sc = s.skipped_cost,
            su = s.skipped_unplaceable,
            series = series,
            wall = a.host_wall_s,
        );
    }
    let mut fleet = String::new();
    for (i, f) in study.fleet.iter().enumerate() {
        let comma = if i + 1 < study.fleet.len() { "," } else { "" };
        let _ = write!(
            fleet,
            "\n      {{\"arm\": \"{label}\", \"late_admitted\": {la}, \
             \"admit_rejected\": {ar}, \"cycles\": {cycles}, \"moves\": {moves}, \
             \"units_recovered_micro\": {rec}, \"disruption_ns\": {dis}, \
             \"frames\": {frames}}}{comma}",
            label = arm_label(f.defrag),
            la = f.late_admitted,
            ar = f.admit_rejected,
            cycles = f.stats.cycles,
            moves = f.stats.moves,
            rec = f.stats.units_recovered_micro,
            dis = f.stats.disruption_ns,
            frames = f.frames,
        );
    }
    format!(
        "{{\n  \"benchmark\": \"defrag\",\n  \
         \"workload\": \"{rounds}-round churn trace on {tpus} TPUs \
         (1 round = 1 simulated minute; 80% 0.10-0.50-unit cameras, 20% 0.70-0.95; \
         depart p={depart:.4}/round; defrag cycle every {every} rounds) + \
         {clusters}x2-TPU sharded fleet with late 0.8-unit front-door admits\",\n  \
         \"arms\": [{arms}\n  ],\n  \"fleet\": [{fleet}\n  ]\n}}\n",
        rounds = study.rounds,
        tpus = study.tpus,
        depart = DEPART_CHANCE,
        every = DEFRAG_EVERY_ROUNDS,
        clusters = FLEET_CLUSTERS,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_study_defrag_dominates_plain() {
        let study = run_defrag_study(true);
        let plain = &study.arms[0];
        let defrag = &study.arms[1];
        assert!(!plain.defrag && defrag.defrag);
        assert_eq!(plain.conservation_violations, 0);
        assert_eq!(defrag.conservation_violations, 0);
        assert!(defrag.stats.moves > 0, "defrag arm never moved a pod");
        assert_eq!(plain.stats, DefragStats::default());
        assert!(
            defrag.steady_efficiency >= plain.steady_efficiency,
            "defrag {d} < plain {p}",
            d = defrag.steady_efficiency,
            p = plain.steady_efficiency
        );
    }

    #[test]
    fn fleet_defrag_unblocks_late_admits() {
        let plain = run_fleet_arm(false);
        let defrag = run_fleet_arm(true);
        assert_eq!(plain.stats.moves, 0);
        assert!(defrag.stats.moves > 0);
        assert!(
            defrag.late_admitted > plain.late_admitted,
            "defrag {d} vs plain {p} late admits",
            d = defrag.late_admitted,
            p = plain.late_admitted
        );
    }

    #[test]
    fn study_is_deterministic() {
        let a = to_json(&run_defrag_study(true));
        let b = to_json(&run_defrag_study(true));
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("\"host_"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&a), strip(&b));
    }
}
