//! Shared experiment plumbing: system configurations and world builders.
//!
//! Every world built here plans admissions through the indexed
//! `TpuPool` fast path: the `ExtendedScheduler` inside each
//! configuration calls `AdmissionPolicy::plan_into` against the pool's
//! capacity index with a reusable `PlanBuffer`, so experiment sweeps pay
//! O(log M) per admission probe and allocate nothing per decision.

use std::fmt;

use microedge_baselines::dedicated::DedicatedBaseline;
use microedge_cluster::topology::{Cluster, ClusterBuilder};
use microedge_core::config::Features;
use microedge_core::runtime::World;
use microedge_core::scheduler::ExtendedScheduler;
use microedge_models::catalog::Catalog;

/// The deployment disciplines compared throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemConfig {
    /// Bare-metal dedicated TPUs (the paper's baseline).
    Baseline,
    /// MicroEdge with a feature subset (Fig. 5's "w/o W.P." is
    /// `Features::co_compiling_only()`, "w/ W.P." is `Features::all()`).
    MicroEdge(Features),
}

impl SystemConfig {
    /// MicroEdge with both mechanisms (the headline configuration).
    #[must_use]
    pub fn microedge_full() -> Self {
        SystemConfig::MicroEdge(Features::all())
    }

    /// MicroEdge without workload partitioning.
    #[must_use]
    pub fn microedge_no_wp() -> Self {
        SystemConfig::MicroEdge(Features::co_compiling_only())
    }

    /// The three Fig. 5 configurations in plot order.
    #[must_use]
    pub fn fig5_configs() -> [SystemConfig; 3] {
        [
            SystemConfig::Baseline,
            SystemConfig::microedge_no_wp(),
            SystemConfig::microedge_full(),
        ]
    }

    /// `true` when streams under this config run with a host-local TPU
    /// (no network hop).
    #[must_use]
    pub fn collocated(self) -> bool {
        matches!(self, SystemConfig::Baseline)
    }

    /// Short label for tables.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            SystemConfig::Baseline => "baseline".to_owned(),
            SystemConfig::MicroEdge(f) => match (f.workload_partitioning, f.co_compiling) {
                (true, true) => "microedge w/ w.p.".to_owned(),
                (false, true) => "microedge w/o w.p.".to_owned(),
                (true, false) => "microedge w.p. only".to_owned(),
                (false, false) => "microedge neither".to_owned(),
            },
        }
    }
}

impl fmt::Display for SystemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Builds a cluster with `tpus` tRPis and enough vRPis to host any fleet
/// the experiments create.
#[must_use]
pub fn experiment_cluster(tpus: u32) -> Cluster {
    ClusterBuilder::new().trpis(tpus).vrpis(64).build()
}

/// Builds a world over `cluster` under the given system configuration.
#[must_use]
pub fn build_world(cluster: Cluster, config: SystemConfig) -> World {
    match config {
        SystemConfig::Baseline => {
            let sched = ExtendedScheduler::with_policy(
                &cluster,
                Catalog::builtin(),
                Features::none(),
                Box::new(DedicatedBaseline::new()),
            );
            World::with_scheduler(cluster, sched)
        }
        SystemConfig::MicroEdge(features) => World::new(cluster, features),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = [
            SystemConfig::Baseline,
            SystemConfig::microedge_no_wp(),
            SystemConfig::microedge_full(),
            SystemConfig::MicroEdge(Features::partitioning_only()),
            SystemConfig::MicroEdge(Features::none()),
        ]
        .iter()
        .map(|c| c.label())
        .collect();
        let mut unique = labels.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), labels.len());
    }

    #[test]
    fn baseline_is_collocated() {
        assert!(SystemConfig::Baseline.collocated());
        assert!(!SystemConfig::microedge_full().collocated());
    }

    #[test]
    fn build_world_honours_config() {
        let w = build_world(experiment_cluster(2), SystemConfig::microedge_full());
        assert_eq!(w.scheduler().pool().len(), 2);
        let b = build_world(experiment_cluster(3), SystemConfig::Baseline);
        assert_eq!(b.scheduler().pool().len(), 3);
    }
}
