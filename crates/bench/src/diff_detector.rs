//! Difference-detector ablation (paper §1).
//!
//! The paper motivates fine-grained sharing with the observation that
//! adding NoScope's difference detector to Coral-Pie drops TPU utilization
//! from ~30 % to ~20 % — i.e. frame filtering makes dedicated TPUs *even
//! more* wasteful, and fractional sharing *even more* valuable. This
//! ablation quantifies that: capacity and measured utilization on 6 TPUs,
//! with and without the filter, under MicroEdge and the baseline.

use microedge_core::runtime::{RunResults, StreamSpec};
use microedge_metrics::report::{fmt_f64, Table};
use microedge_sim::time::{SimDuration, SimTime};
use microedge_workloads::apps::{CameraApp, DiffDetector};

use crate::runner::{build_world, experiment_cluster, SystemConfig};

/// One row of the ablation.
#[derive(Debug, Clone)]
pub struct DiffDetectorOutcome {
    label: String,
    cameras: u32,
    avg_utilization: f64,
    all_slo_met: bool,
}

impl DiffDetectorOutcome {
    /// Row label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Cameras admitted at capacity.
    #[must_use]
    pub fn cameras(&self) -> u32 {
        self.cameras
    }

    /// Fleet utilization at capacity.
    #[must_use]
    pub fn avg_utilization(&self) -> f64 {
        self.avg_utilization
    }

    /// Whether every camera held 15 FPS.
    #[must_use]
    pub fn all_slo_met(&self) -> bool {
        self.all_slo_met
    }
}

fn spec(
    app: &CameraApp,
    detector: Option<DiffDetector>,
    index: u32,
    frames: u64,
    config: SystemConfig,
) -> StreamSpec {
    let fraction = (f64::from(index) * 0.618_033_988_749_895) % 1.0;
    let mut builder = StreamSpec::builder(&format!("cam-{index}"), app.model().as_str())
        .fps(app.fps())
        .frame_limit(frames)
        .start_offset(app.frame_interval().mul_f64(fraction))
        .collocated(config.collocated());
    builder = match detector {
        Some(dd) => builder
            .units(dd.effective_units(app.units()))
            .frame_filter(dd.pass_rate(), u64::from(index)),
        None => builder.units(app.units()),
    };
    builder.build()
}

fn run(
    config: SystemConfig,
    detector: Option<DiffDetector>,
    tpus: u32,
    frames: u64,
) -> DiffDetectorOutcome {
    let app = CameraApp::coral_pie();
    let mut world = build_world(experiment_cluster(tpus), config);
    let mut admitted = 0;
    while world
        .admit_stream(spec(&app, detector, admitted, frames, config))
        .is_ok()
    {
        admitted += 1;
    }
    let horizon = SimTime::ZERO + app.frame_interval() * (frames + 20) + SimDuration::from_secs(5);
    let results: RunResults = world.run_to_completion(horizon);
    DiffDetectorOutcome {
        label: format!(
            "{}, {}",
            config.label(),
            if detector.is_some() {
                "with diff detector"
            } else {
                "raw frames"
            }
        ),
        cameras: admitted,
        avg_utilization: results.average_utilization(),
        all_slo_met: results.all_met_fps(),
    }
}

/// The four (system × filter) combinations on `tpus` TPUs.
#[must_use]
pub fn run_diff_detector_ablation(tpus: u32, frames: u64) -> Vec<DiffDetectorOutcome> {
    let dd = DiffDetector::coral_pie_calibrated();
    vec![
        run(SystemConfig::Baseline, None, tpus, frames),
        run(SystemConfig::Baseline, Some(dd), tpus, frames),
        run(SystemConfig::microedge_full(), None, tpus, frames),
        run(SystemConfig::microedge_full(), Some(dd), tpus, frames),
    ]
}

/// Renders the ablation.
#[must_use]
pub fn render_diff_detector(tpus: u32, frames: u64) -> String {
    let rows = run_diff_detector_ablation(tpus, frames);
    let mut table = Table::new(&["config", "cameras", "avg TPU utilization", "SLO"]);
    for r in &rows {
        table.row_owned(vec![
            r.label().to_owned(),
            r.cameras().to_string(),
            fmt_f64(r.avg_utilization(), 3),
            if r.all_slo_met() { "met" } else { "VIOLATED" }.to_owned(),
        ]);
    }
    format!("### Ablation — NoScope difference detector on Coral-Pie ({tpus} TPUs)\n{table}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_wastes_dedicated_tpus_and_grows_microedge_capacity() {
        let rows = run_diff_detector_ablation(3, 200);
        let (bl_raw, bl_dd, me_raw, me_dd) = (&rows[0], &rows[1], &rows[2], &rows[3]);

        // Baseline capacity is TPU-bound either way; the filter only drops
        // its utilization (the paper's 30 % → 20 % observation).
        assert_eq!(bl_raw.cameras(), 3);
        assert_eq!(bl_dd.cameras(), 3);
        assert!((bl_raw.avg_utilization() - 0.35).abs() < 0.02);
        assert!(
            (bl_dd.avg_utilization() - 0.233).abs() < 0.03,
            "got {}",
            bl_dd.avg_utilization()
        );

        // MicroEdge converts the freed duty cycle into capacity:
        // ⌊3 / 0.2333⌋ = 12 filtered cameras vs ⌊3 / 0.35⌋ = 8 raw.
        assert_eq!(me_raw.cameras(), 8);
        assert_eq!(me_dd.cameras(), 12);
        for r in &rows {
            assert!(r.all_slo_met(), "{}", r.label());
        }
    }

    #[test]
    fn render_lists_all_rows() {
        let text = render_diff_detector(2, 60);
        assert!(text.contains("with diff detector"));
        assert!(text.contains("raw frames"));
    }
}
