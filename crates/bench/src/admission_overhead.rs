//! One-time admission-control overhead (paper §6.4.1, Fig. 7a).
//!
//! Compares the end-to-end latency of launching a camera instance under:
//!
//! - **native K3s** — the base pod-launch distribution;
//! - **MicroEdge** — base launch plus the extended scheduler's work: the
//!   admission decision itself (measured, microseconds), the LBS
//!   configuration push, and a model `Load` into TPU memory when the model
//!   is already compiled;
//! - **MicroEdge + co-compile** — the camera brings a *new* model, so the
//!   co-compiler runs — in a separate process, **in parallel** with the
//!   extended scheduler, exactly as the paper describes: the mean barely
//!   moves but the variance grows because the launch completes at
//!   `max(base path, compile path)`.
//!
//! The admission algorithm's own cost is also measured directly with the
//! host clock to substantiate the paper's scalability claim (O(M), trivial
//! at edge-cluster sizes).
//!
//! ## The admission-throughput sweep (`repro --perf`)
//!
//! [`run_admission_perf`] measures the control-plane fast path head to
//! head against the linear-scan reference at fleet sizes from 16 to
//! 16 384 TPUs, on the workload that is *worst* for a linear scan: every
//! TPU except the last holds 0.75 units, so a whole-request 0.35 plan
//! must reject M − 1 candidates before the one that fits. The reference
//! policy walks all of them; the indexed policy answers with one
//! capacity-index descent. Only `plan_into` is timed (into a reused
//! [`PlanBuffer`], no commits), so the number is the pure planning cost.
//! The result renders as the "Admission scalability" table
//! ([`crate::scalability::render_admission_scalability`]) and serializes
//! as `BENCH_admission.json`.

use std::fmt::Write as _;
use std::time::Instant;

use microedge_core::admission::{reference, AdmissionPolicy, FirstFit, PlanBuffer};
use microedge_core::config::Features;
use microedge_core::pool::{Allocation, TpuPool};
use microedge_core::units::TpuUnits;
use microedge_metrics::report::{fmt_f64, Table};
use microedge_models::catalog::{self, Catalog};
use microedge_models::profile::ModelProfile;
use microedge_orch::control_latency::ControlPlaneModel;
use microedge_sim::rng::DetRng;
use microedge_sim::stats::OnlineStats;
use microedge_sim::time::SimDuration;
use microedge_tpu::cocompile::CoCompiler;
use microedge_tpu::spec::TpuSpec;

/// Launch-latency statistics for one configuration.
#[derive(Debug, Clone)]
pub struct OverheadStats {
    label: &'static str,
    mean_ms: f64,
    std_ms: f64,
    overhead_pct: f64,
}

impl OverheadStats {
    /// Configuration label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Mean launch latency in milliseconds.
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        self.mean_ms
    }

    /// Standard deviation in milliseconds.
    #[must_use]
    pub fn std_ms(&self) -> f64 {
        self.std_ms
    }

    /// Mean overhead relative to the native launch.
    #[must_use]
    pub fn overhead_pct(&self) -> f64 {
        self.overhead_pct
    }
}

/// The MicroEdge control-plane additions for one launch, derived from a
/// **real deployment** on a live scheduler: `rpcs` control-plane calls
/// (model `Load`s plus the LBS configuration push) at the modelled per-RPC
/// cost, plus the USB parameter transfer for each newly loaded model.
fn microedge_additions(
    cp: &ControlPlaneModel,
    spec: TpuSpec,
    rpcs: u32,
    loaded_bytes: u64,
) -> SimDuration {
    cp.rpc_cost() * u64::from(rpcs) + spec.swap_time(loaded_bytes)
}

/// Performs two real deployments on a fresh scheduler and returns their
/// measured control-RPC counts and newly-loaded parameter bytes:
/// `(repeat-model camera, new-model camera)`. The first camera deploys a
/// model that is already resident; the second brings a model that must be
/// loaded (triggering a co-compilation).
fn probe_control_plane() -> ((u32, u64), (u32, u64)) {
    use microedge_core::config::Features;
    use microedge_core::scheduler::ExtendedScheduler;
    use microedge_orch::lifecycle::Orchestrator;
    use microedge_orch::pod::{PodSpec, EXT_MODEL, EXT_TPU_UNITS};

    let cluster = crate::runner::experiment_cluster(6);
    let mut orch = Orchestrator::new(cluster.clone());
    let mut sched = ExtendedScheduler::new(&cluster, Catalog::builtin(), Features::all());
    let camera = |name: &str, model: &str, units: &str| {
        PodSpec::builder(name, "camera:latest")
            .extension(EXT_MODEL, model)
            .extension(EXT_TPU_UNITS, units)
            .build()
    };
    // Warm the pool with the common model.
    sched
        .deploy(&mut orch, camera("warm", "ssd-mobilenet-v2", "0.35"))
        .expect("warm deployment fits");
    let repeat = sched
        .deploy(&mut orch, camera("repeat", "ssd-mobilenet-v2", "0.35"))
        .expect("repeat deployment fits");
    let fresh = sched
        .deploy(&mut orch, camera("fresh", "mobilenet-v1", "0.215"))
        .expect("fresh deployment fits");
    let loaded_bytes = |d: &microedge_core::scheduler::Deployment| -> u64 {
        d.stages()
            .iter()
            .map(|s| {
                s.newly_loaded().len() as u64 * sched.catalog().expect(s.model()).param_bytes()
            })
            .sum()
    };
    (
        (repeat.control_rpcs(), loaded_bytes(&repeat)),
        (fresh.control_rpcs(), loaded_bytes(&fresh)),
    )
}

/// Samples the three Fig. 7a configurations `samples` times each. The
/// MicroEdge additions come from real deployments on a live scheduler;
/// only the base K3s launch and the co-compiler's process noise are
/// sampled.
#[must_use]
pub fn run_overhead(samples: u32, seed: u64) -> Vec<OverheadStats> {
    let cp = ControlPlaneModel::rpi_k3s();
    let spec = TpuSpec::coral_usb();
    let cocompiler = CoCompiler::new(spec);
    let mut rng = DetRng::seed_from(seed);

    let ((repeat_rpcs, repeat_bytes), (fresh_rpcs, fresh_bytes)) = probe_control_plane();
    // A camera whose model is resident still pays per-TPU Load RPCs when
    // partitioned; Fig. 7a's "MicroEdge" bar is the common repeat-model
    // launch plus one model load (the paper launches each camera with its
    // model available but not necessarily resident).
    let me_extra = microedge_additions(&cp, spec, repeat_rpcs + 1, repeat_bytes)
        + spec.swap_time(catalog::ssd_mobilenet_v2().param_bytes());
    let cc_extra = microedge_additions(&cp, spec, fresh_rpcs, fresh_bytes);

    // The co-compile plan a new model triggers (two resident models).
    let plan = cocompiler
        .plan(&[catalog::mobilenet_v1(), catalog::ssd_mobilenet_v2()])
        .expect("distinct models");
    let compile_nominal = cocompiler.compile_time(&plan);

    // Draw the random inputs serially, in the exact per-sample order a
    // serial fold would see them (base launch, then compile noise), so the
    // RNG stream — and hence every statistic — is identical to the
    // pre-parallel implementation. The three configurations then fold the
    // shared draws concurrently; Welford accumulation per configuration is
    // still in sample order, so the means and variances are bit-identical.
    let draws: Vec<(SimDuration, SimDuration)> = (0..samples)
        .map(|_| {
            let base = cp.sample_base_launch(&mut rng);
            let compile = rng.normal_duration(
                compile_nominal + SimDuration::from_millis(300),
                SimDuration::from_millis(500),
            );
            (base, compile)
        })
        .collect();

    enum Config {
        Native,
        MicroEdge,
        WithCompile,
    }
    let folded = microedge_sim::par::par_map(
        vec![Config::Native, Config::MicroEdge, Config::WithCompile],
        |_, config| {
            let mut stats = OnlineStats::new();
            for &(base, compile) in &draws {
                let launch = match config {
                    Config::Native => base,
                    Config::MicroEdge => base + me_extra,
                    // Co-compilation runs in a parallel process; the launch
                    // finishes at the later of the two paths. Compile time
                    // itself is noisy (it runs on the shared control-plane
                    // server).
                    Config::WithCompile => {
                        let cc = base + cc_extra;
                        if compile > cc {
                            compile
                        } else {
                            cc
                        }
                    }
                };
                stats.record_duration(launch);
            }
            stats
        },
    );

    let base_mean = folded[0].mean();
    let stats = |label, s: &OnlineStats| OverheadStats {
        label,
        mean_ms: s.mean(),
        std_ms: s.std_dev(),
        overhead_pct: (s.mean() / base_mean - 1.0) * 100.0,
    };
    vec![
        stats("native k3s", &folded[0]),
        stats("microedge", &folded[1]),
        stats("microedge + co-compile", &folded[2]),
    ]
}

/// Measures the wall-clock cost of the admission algorithm itself at a
/// given pool size — the paper's O(M) scalability argument.
#[must_use]
pub fn measure_admission_micros(tpus: u32, iterations: u32) -> f64 {
    let cluster = crate::runner::experiment_cluster(tpus);
    let mut pool = TpuPool::from_cluster(&cluster, TpuSpec::coral_usb());
    let catalog = Catalog::builtin();
    let profile = catalog.expect(&"ssd-mobilenet-v2".into()).clone();
    let mut policy = FirstFit::new();
    // Pre-load the pool to a realistic 50 % so scans do real work.
    let half = TpuUnits::from_f64(0.5);
    for account in pool.accounts().to_vec() {
        pool.commit(
            &profile,
            &[microedge_core::pool::Allocation::new(account.id(), half)],
        );
    }
    let start = Instant::now();
    for _ in 0..iterations {
        let plan = policy.plan(&pool, &profile, TpuUnits::from_f64(0.35), Features::all());
        std::hint::black_box(&plan);
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(iterations)
}

/// TPU counts the admission-throughput sweep covers, with the
/// `plan_into` iteration count timed at each size. Iterations shrink as
/// the fleet grows because the *linear* side's cost grows with M; the
/// largest point still times hundreds of plans per round.
pub const ADMISSION_SWEEP: [(u32, u32); 4] =
    [(16, 20_000), (256, 5_000), (4096, 1_000), (16_384, 300)];

/// The sweep's workload, also embedded in `BENCH_admission.json`.
pub const ADMISSION_WORKLOAD: &str =
    "near-full fleet: every TPU except the last at 0.75 units, whole-request 0.35 plan";

/// One fleet size of the admission-throughput sweep.
#[derive(Debug, Clone)]
pub struct AdmissionSweepPoint {
    tpus: u32,
    iterations: u32,
    linear_ns: f64,
    indexed_ns: f64,
}

impl AdmissionSweepPoint {
    /// Fleet size.
    #[must_use]
    pub fn tpus(&self) -> u32 {
        self.tpus
    }

    /// Plans timed per round at this size.
    #[must_use]
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Nanoseconds per plan for the linear-scan reference (pre).
    #[must_use]
    pub fn linear_ns(&self) -> f64 {
        self.linear_ns
    }

    /// Nanoseconds per plan for the indexed fast path (post).
    #[must_use]
    pub fn indexed_ns(&self) -> f64 {
        self.indexed_ns
    }

    /// Linear-scan admission decisions per second.
    #[must_use]
    pub fn linear_plans_per_sec(&self) -> f64 {
        1e9 / self.linear_ns
    }

    /// Indexed admission decisions per second.
    #[must_use]
    pub fn indexed_plans_per_sec(&self) -> f64 {
        1e9 / self.indexed_ns
    }

    /// Indexed-over-linear speedup at this size.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.linear_ns / self.indexed_ns
    }
}

/// The admission-throughput sweep result (`BENCH_admission.json`).
#[derive(Debug, Clone)]
pub struct AdmissionPerf {
    rounds: u32,
    pre_label: &'static str,
    post_label: &'static str,
    points: Vec<AdmissionSweepPoint>,
}

impl AdmissionPerf {
    /// Per-size measurements, ascending fleet size.
    #[must_use]
    pub fn points(&self) -> &[AdmissionSweepPoint] {
        &self.points
    }

    /// Rounds each point was timed (best round reported).
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// The sweep's workload description.
    #[must_use]
    pub fn workload(&self) -> &'static str {
        ADMISSION_WORKLOAD
    }

    /// Indexed-over-linear speedup at a given fleet size, if measured.
    #[must_use]
    pub fn speedup_at(&self, tpus: u32) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.tpus == tpus)
            .map(AdmissionSweepPoint::speedup)
    }

    /// Renders the `BENCH_admission.json` document: per-size pre
    /// (linear-scan reference) and post (indexed) planning throughput.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut points = String::new();
        for (i, p) in self.points.iter().enumerate() {
            let comma = if i + 1 < self.points.len() { "," } else { "" };
            let _ = write!(
                points,
                "\n    {{\"tpus\": {tpus}, \"iterations\": {iters}, \
                 \"pre\": {{\"algorithm\": \"{pre}\", \"ns_per_plan\": {lns:.1}, \"plans_per_sec\": {lps:.0}}}, \
                 \"post\": {{\"algorithm\": \"{post}\", \"ns_per_plan\": {ins:.1}, \"plans_per_sec\": {ips:.0}}}, \
                 \"speedup\": {speedup:.2}}}{comma}",
                tpus = p.tpus,
                iters = p.iterations,
                pre = self.pre_label,
                lns = p.linear_ns,
                lps = p.linear_plans_per_sec(),
                post = self.post_label,
                ins = p.indexed_ns,
                ips = p.indexed_plans_per_sec(),
                speedup = p.speedup(),
            );
        }
        let at_4096 = self
            .speedup_at(4096)
            .map_or_else(|| "null".to_owned(), |s| format!("{s:.2}"));
        format!(
            "{{\n  \"benchmark\": \"admission_plan_throughput\",\n  \
             \"workload\": \"{workload}\",\n  \"rounds\": {rounds},\n  \
             \"speedup_at_4096\": {at_4096},\n  \"points\": [{points}\n  ]\n}}\n",
            workload = ADMISSION_WORKLOAD,
            rounds = self.rounds,
        )
    }
}

/// Builds the sweep's adversarial pool: all TPUs but the last at 0.75
/// load, so a 0.35 whole-request plan fits only on the final TPU.
fn near_full_pool(tpus: u32, profile: &ModelProfile) -> TpuPool {
    assert!(tpus >= 2, "the sweep needs at least two TPUs");
    let cluster = crate::runner::experiment_cluster(tpus);
    let mut pool = TpuPool::from_cluster(&cluster, TpuSpec::coral_usb());
    let load = TpuUnits::from_f64(0.75);
    let allocations: Vec<Allocation> = pool
        .accounts()
        .iter()
        .take(tpus as usize - 1)
        .map(|account| Allocation::new(account.id(), load))
        .collect();
    pool.commit(profile, &allocations);
    pool
}

/// Times `iterations` `plan_into` calls (into a reused buffer, no
/// commits) and returns the best-of-`rounds` nanoseconds per plan.
fn time_plan_ns(
    policy: &mut dyn AdmissionPolicy,
    pool: &TpuPool,
    profile: &ModelProfile,
    iterations: u32,
    rounds: u32,
) -> f64 {
    let units = TpuUnits::from_f64(0.35);
    let mut buffer = PlanBuffer::new();
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        for _ in 0..iterations {
            let admitted = policy.plan_into(pool, profile, units, Features::all(), &mut buffer);
            std::hint::black_box(admitted);
            std::hint::black_box(buffer.allocations());
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    best * 1e9 / f64::from(iterations)
}

/// Runs the admission-throughput sweep over custom `(tpus, iterations)`
/// sizes. Each size first cross-checks that the indexed and reference
/// policies produce the identical plan on the sweep pool, then times
/// both.
#[must_use]
pub fn run_admission_perf_with(sizes: &[(u32, u32)], rounds: u32) -> AdmissionPerf {
    assert!(rounds > 0, "at least one round");
    let catalog = Catalog::builtin();
    let profile = catalog.expect(&"ssd-mobilenet-v2".into()).clone();
    let mut indexed = FirstFit::new();
    let mut linear = reference::FirstFit::new();
    let points = sizes
        .iter()
        .map(|&(tpus, iterations)| {
            let pool = near_full_pool(tpus, &profile);
            let units = TpuUnits::from_f64(0.35);
            assert_eq!(
                indexed.plan(&pool, &profile, units, Features::all()),
                linear.plan(&pool, &profile, units, Features::all()),
                "indexed and reference plans diverged at {tpus} TPUs"
            );
            AdmissionSweepPoint {
                tpus,
                iterations,
                linear_ns: time_plan_ns(&mut linear, &pool, &profile, iterations, rounds),
                indexed_ns: time_plan_ns(&mut indexed, &pool, &profile, iterations, rounds),
            }
        })
        .collect();
    AdmissionPerf {
        rounds,
        pre_label: linear.name(),
        post_label: indexed.name(),
        points,
    }
}

/// Runs the standard sweep ([`ADMISSION_SWEEP`]): 16 / 256 / 4096 /
/// 16 384 TPUs.
#[must_use]
pub fn run_admission_perf(rounds: u32) -> AdmissionPerf {
    run_admission_perf_with(&ADMISSION_SWEEP, rounds)
}

/// Renders the Fig. 7a table.
#[must_use]
pub fn render_fig7a(samples: u32, seed: u64) -> String {
    let rows = run_overhead(samples, seed);
    let mut table = Table::new(&["config", "mean launch (ms)", "std (ms)", "overhead"]);
    for r in &rows {
        table.row_owned(vec![
            r.label().to_owned(),
            fmt_f64(r.mean_ms(), 1),
            fmt_f64(r.std_ms(), 1),
            format!("{:+.1}%", r.overhead_pct()),
        ]);
    }
    let algo_us = measure_admission_micros(100, 10_000);
    // The decision cost sits well under a microsecond; printing the raw
    // sub-µs digits would make the report differ run to run on host-clock
    // noise alone, so bucket it (the claim being substantiated is only
    // "O(M) and trivial at edge-cluster sizes").
    let algo = if algo_us < 1.0 {
        "< 1".to_owned()
    } else {
        format!("{algo_us:.0}")
    };
    format!(
        "### Fig. 7a — admission-control overhead ({samples} launches)\n{table}\n\
         admission algorithm itself at 100 TPUs: {algo} µs per decision (measured)\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microedge_overhead_is_about_ten_percent() {
        let rows = run_overhead(4000, 11);
        let native = &rows[0];
        let me = &rows[1];
        assert!((native.mean_ms() - 2000.0).abs() < 20.0);
        assert!(
            (8.0..15.0).contains(&me.overhead_pct()),
            "paper reports ≈ 10 %, got {:.1}%",
            me.overhead_pct()
        );
    }

    #[test]
    fn cocompile_grows_variance_not_mean() {
        let rows = run_overhead(4000, 13);
        let me = &rows[1];
        let cc = &rows[2];
        // Mean within ~2 % of plain MicroEdge (the paper: "the average
        // value does not increase because the co-compilation runs on a
        // different process in parallel")...
        assert!(
            (cc.mean_ms() - me.mean_ms()).abs() / me.mean_ms() < 0.025,
            "means {:.0} vs {:.0}",
            cc.mean_ms(),
            me.mean_ms()
        );
        // ...but visibly larger spread.
        assert!(
            cc.std_ms() > me.std_ms() * 1.10,
            "stds {:.0} vs {:.0}",
            cc.std_ms(),
            me.std_ms()
        );
    }

    #[test]
    fn admission_algorithm_is_microseconds_at_100_tpus() {
        let us = measure_admission_micros(100, 2000);
        assert!(
            us < 1000.0,
            "O(M) scan should be far under 1 ms, got {us} µs"
        );
    }

    #[test]
    fn sweep_measures_every_size() {
        let perf = run_admission_perf_with(&[(16, 50), (64, 50)], 1);
        assert_eq!(perf.points().len(), 2);
        assert_eq!(perf.points()[0].tpus(), 16);
        assert_eq!(perf.points()[1].tpus(), 64);
        for p in perf.points() {
            assert!(p.linear_ns() > 0.0);
            assert!(p.indexed_ns() > 0.0);
            assert!(p.indexed_plans_per_sec() > 0.0);
        }
        assert!(perf.speedup_at(64).is_some());
        assert!(perf.speedup_at(4096).is_none());
    }

    #[test]
    fn indexed_path_wins_clearly_on_a_large_pool() {
        // Debug-build timing, so the bar is far below the release-build
        // criterion gate (≥ 10x at 4096) — but even unoptimized, one
        // index descent against a 4095-account scan is no contest.
        let perf = run_admission_perf_with(&[(4096, 40)], 1);
        let speedup = perf.speedup_at(4096).unwrap();
        assert!(speedup > 2.0, "expected a clear win, got {speedup:.1}x");
    }

    #[test]
    fn admission_json_has_pre_and_post_throughput() {
        let perf = run_admission_perf_with(&[(16, 20), (4096, 20)], 1);
        let json = perf.to_json();
        assert!(json.contains("\"benchmark\": \"admission_plan_throughput\""));
        assert!(json.contains("\"pre\""));
        assert!(json.contains("\"post\""));
        assert!(json.contains("\"plans_per_sec\""));
        assert!(json.contains("\"speedup_at_4096\""));
        assert!(!json.contains("\"speedup_at_4096\": null"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn render_has_three_rows() {
        let text = render_fig7a(500, 3);
        assert!(text.contains("native k3s"));
        assert!(text.contains("microedge + co-compile"));
        assert!(text.contains("µs per decision"));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_overhead(100, 5);
        let b = run_overhead(100, 5);
        assert_eq!(a[1].mean_ms(), b[1].mean_ms());
    }
}
