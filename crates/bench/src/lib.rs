#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # microedge-bench — the evaluation harness
//!
//! One module per paper artifact, each with a `run_*` entry point returning
//! structured results and a `render_*` function printing the table the
//! paper's figure reports:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`fig1`] | Fig. 1 — model processing times |
//! | [`scalability`] | Fig. 5a–5d — cameras supported & TPU utilization |
//! | [`cost`] | Table 1 — cost of ownership |
//! | [`trace_study`] | Fig. 6a/6b — trace-driven utilization & cameras served |
//! | [`admission_overhead`] | Fig. 7a — one-time admission overhead |
//! | [`latency_breakdown`] | Fig. 7b — Invoke latency breakdown (+ serverless ablation) |
//! | [`packing`] | packing-heuristic ablation (DESIGN.md ◊3) |
//! | [`pipeline_ablation`] | multi-model pipeline hop optimization (§8 extension) |
//! | [`diff_detector`] | NoScope frame-filter ablation (§1 motivation) |
//! | [`tail_latency`] | per-frame latency vs load curve (queueing behaviour) |
//! | [`chaos`] | chaos / failure-recovery study (§7 robustness extension) |
//! | [`scale`] | 100k-stream scale-out study (§6.3's "much larger configuration") |
//! | [`scale_sharded`] | sharded 1M-stream replay (deterministic epoch-barrier parallelism) |
//! | [`fleet`] | federated fleet front door: O(log C) placement + whole-cluster chaos tiers |
//! | [`netchaos`] | lossy-transport study: QoS classes across loss tiers + flapping partitions |
//! | [`defrag`] | online defragmentation: packing efficiency vs the L2 bound under 24 h churn |
//!
//! The `repro` binary prints every artifact; the Criterion benches under
//! `benches/` time the underlying computations.

pub mod admission_overhead;
pub mod chaos;
pub mod cost;
pub mod csv;
pub mod defrag;
pub mod diff_detector;
pub mod fig1;
pub mod fleet;
pub mod latency_breakdown;
pub mod netchaos;
pub mod packing;
pub mod perf;
pub mod pipeline_ablation;
pub mod runner;
pub mod scalability;
pub mod scale;
pub mod scale_sharded;
pub mod tail_latency;
pub mod trace_study;

pub use runner::{build_world, experiment_cluster, SystemConfig};
