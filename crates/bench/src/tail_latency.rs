//! Tail latency vs load (beyond the paper's figures).
//!
//! The paper argues transient queueing under shared TPUs is harmless as
//! long as admission control caps the load at 1 TPU unit (§6.4.2: the
//! latency budget at 15 FPS is 66.7 ms). This experiment traces the whole
//! queueing curve: per-frame end-to-end mean and p99 latency as cameras
//! are added up to the admission limit — latency grows gracefully and the
//! p99 stays inside the frame budget even at ≈ 100 % utilization.

use microedge_core::runtime::StreamSpec;
use microedge_metrics::report::{fmt_f64, Table};
use microedge_sim::time::SimTime;
use microedge_workloads::apps::CameraApp;

use crate::runner::{build_world, experiment_cluster, SystemConfig};

/// One load point of the curve.
#[derive(Debug, Clone)]
pub struct TailLatencyPoint {
    cameras: u32,
    load: f64,
    mean_ms: f64,
    p99_ms: f64,
    max_queue_depth: usize,
    all_slo_met: bool,
}

impl TailLatencyPoint {
    /// Cameras running.
    #[must_use]
    pub fn cameras(&self) -> u32 {
        self.cameras
    }

    /// Offered load in TPU units per TPU.
    #[must_use]
    pub fn load(&self) -> f64 {
        self.load
    }

    /// Mean per-frame end-to-end latency.
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        self.mean_ms
    }

    /// 99th-percentile per-frame latency.
    #[must_use]
    pub fn p99_ms(&self) -> f64 {
        self.p99_ms
    }

    /// Deepest backlog any TPU Service saw.
    #[must_use]
    pub fn max_queue_depth(&self) -> usize {
        self.max_queue_depth
    }

    /// Whether every camera held 15 FPS.
    #[must_use]
    pub fn all_slo_met(&self) -> bool {
        self.all_slo_met
    }
}

/// Runs Coral-Pie fleets of 1..=max cameras on `tpus` TPUs and measures
/// the latency curve. Each load point is an independent simulation, so the
/// curve is swept in parallel; results return in load order.
#[must_use]
pub fn run_tail_latency(tpus: u32, frames: u64) -> Vec<TailLatencyPoint> {
    let app = CameraApp::coral_pie();
    let capacity = (f64::from(tpus) / 0.35).floor() as u32;
    microedge_sim::par::par_map((1..=capacity).collect(), |_, cameras| {
        let mut world = build_world(experiment_cluster(tpus), SystemConfig::microedge_full());
        for i in 0..cameras {
            let fraction = (f64::from(i) * 0.618_033_988_749_895) % 1.0;
            let spec = StreamSpec::builder(&format!("cam-{i}"), "ssd-mobilenet-v2")
                .frame_limit(frames)
                .start_offset(app.frame_interval().mul_f64(fraction))
                .build();
            world.admit_stream(spec).expect("within capacity");
        }
        let results = world.run_to_completion(SimTime::from_secs(600));
        let p99 = results
            .breakdowns()
            .total_percentile_ms(99.0)
            .expect("frames ran");
        TailLatencyPoint {
            cameras,
            load: f64::from(cameras) * 0.35 / f64::from(tpus),
            mean_ms: results.breakdowns().mean_total_ms(),
            p99_ms: p99,
            max_queue_depth: results
                .max_queue_depths()
                .iter()
                .copied()
                .max()
                .unwrap_or(0),
            all_slo_met: results.all_met_fps(),
        }
    })
}

/// Renders the curve.
#[must_use]
pub fn render_tail_latency(tpus: u32, frames: u64) -> String {
    let points = run_tail_latency(tpus, frames);
    let mut table = Table::new(&[
        "cameras",
        "load",
        "mean e2e (ms)",
        "p99 e2e (ms)",
        "max backlog",
        "SLO",
    ]);
    for p in &points {
        table.row_owned(vec![
            p.cameras().to_string(),
            fmt_f64(p.load(), 3),
            fmt_f64(p.mean_ms(), 2),
            fmt_f64(p.p99_ms(), 2),
            p.max_queue_depth().to_string(),
            if p.all_slo_met() { "met" } else { "VIOLATED" }.to_owned(),
        ]);
    }
    format!(
        "### Tail latency vs load (Coral-Pie on {tpus} TPUs; 15 FPS budget = 66.7 ms; \
         percentiles from a log-linear sketch, rel. error ≤ {:.2}%)\n{table}",
        microedge_sim::stats::SKETCH_RELATIVE_ERROR * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_gracefully_and_stays_inside_the_budget() {
        let points = run_tail_latency(2, 300);
        assert_eq!(points.len(), 5, "⌊2 / 0.35⌋ cameras");
        // Monotone-ish: the saturated point has higher p99 than the idle one.
        let first = &points[0];
        let last = points.last().unwrap();
        assert!(last.p99_ms() >= first.p99_ms());
        for p in &points {
            assert!(p.all_slo_met(), "{} cameras", p.cameras());
            // Mean latency stays inside one frame budget; at exact
            // saturation (a TPU at 1.00 load) the p99 may transiently
            // spill into a second interval without hurting throughput.
            assert!(
                p.mean_ms() < 66.7,
                "{} cameras: mean {}",
                p.cameras(),
                p.mean_ms()
            );
            assert!(
                p.p99_ms() < 2.0 * 66.7,
                "{} cameras: p99 {} beyond two frame intervals",
                p.cameras(),
                p.p99_ms()
            );
        }
        // Uncontended latency is the Fig. 7b total.
        assert!((first.mean_ms() - 39.33).abs() < 0.1);
    }

    #[test]
    fn render_has_one_row_per_load_point() {
        let text = render_tail_latency(1, 60);
        assert!(text.contains("Tail latency"));
        assert_eq!(
            text.lines().count(),
            5,
            "title + header + rule + 2 rows (⌊1/0.35⌋ cameras)"
        );
    }
}
