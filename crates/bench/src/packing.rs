//! Packing-heuristic ablation (DESIGN.md ◊3).
//!
//! The paper chooses First-Fit for its 1.7 asymptotic approximation ratio.
//! This ablation feeds identical random request sequences to First-Fit,
//! Best-Fit, Worst-Fit, and Next-Fit and compares TPUs used and requests
//! rejected.

use microedge_core::admission::{
    AdmissionPolicy, BestFit, FirstFit, NextFit, NextKFit, PlanBuffer, WorstFit,
};
use microedge_core::config::Features;
use microedge_core::pool::TpuPool;
use microedge_core::units::TpuUnits;
use microedge_metrics::report::{fmt_f64, Table};
use microedge_models::catalog::{fig1_models, Catalog};
use microedge_models::profile::ModelProfile;
use microedge_sim::rng::DetRng;
use microedge_tpu::spec::TpuSpec;

use crate::runner::experiment_cluster;

/// Outcome of one policy on one request sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct PackingOutcome {
    policy: &'static str,
    admitted: u32,
    rejected: u32,
    tpus_used: usize,
    fragmentation: Vec<f64>,
}

impl PackingOutcome {
    /// Policy name.
    #[must_use]
    pub fn policy(&self) -> &'static str {
        self.policy
    }

    /// Requests admitted.
    #[must_use]
    pub fn admitted(&self) -> u32 {
        self.admitted
    }

    /// Requests rejected.
    #[must_use]
    pub fn rejected(&self) -> u32 {
        self.rejected
    }

    /// TPUs carrying load after the sequence.
    #[must_use]
    pub fn tpus_used(&self) -> usize {
        self.tpus_used
    }

    /// Per-round fragmentation ratio (largest-free-slot / total-free,
    /// [`PoolCapacity::fragmentation_ratio`]), sampled after every churn
    /// op — the metric the defrag study shares with this ablation. Empty
    /// for arrival-only runs, where nothing ever fragments the pool.
    ///
    /// [`PoolCapacity::fragmentation_ratio`]: microedge_core::pool::PoolCapacity::fragmentation_ratio
    #[must_use]
    pub fn fragmentation(&self) -> &[f64] {
        &self.fragmentation
    }

    /// Average of the per-round fragmentation samples (1.0 — unfragmented
    /// by convention — when nothing was sampled).
    #[must_use]
    pub fn mean_fragmentation(&self) -> f64 {
        if self.fragmentation.is_empty() {
            1.0
        } else {
            self.fragmentation.iter().sum::<f64>() / self.fragmentation.len() as f64
        }
    }
}

/// A random request: a Fig. 1 model (small ones, so the Model Size Rule is
/// exercised but not degenerate) and a unit demand in `[0.1, 0.7]`.
fn random_requests(count: u32, seed: u64) -> Vec<(ModelProfile, TpuUnits)> {
    let small_models: Vec<ModelProfile> = fig1_models()
        .into_iter()
        .filter(|m| m.param_bytes() <= 4 * 1024 * 1024)
        .collect();
    let mut rng = DetRng::seed_from(seed);
    (0..count)
        .map(|_| {
            let model = small_models[rng.index(small_models.len())].clone();
            let units = TpuUnits::from_micro(rng.uniform_range(100_000, 700_001));
            (model, units)
        })
        .collect()
}

/// The §4.2 heuristic list: First-, Best-, Worst-, Next-, and Next-k-Fit.
fn policy_set() -> Vec<Box<dyn AdmissionPolicy>> {
    vec![
        Box::new(FirstFit::new()),
        Box::new(BestFit::new()),
        Box::new(WorstFit::new()),
        Box::new(NextFit::new()),
        Box::new(NextKFit::new(2)),
    ]
}

fn run_policy(
    mut policy: Box<dyn AdmissionPolicy>,
    requests: &[(ModelProfile, TpuUnits)],
    tpus: u32,
    features: Features,
) -> PackingOutcome {
    let cluster = experiment_cluster(tpus);
    let mut pool = TpuPool::from_cluster(&cluster, TpuSpec::coral_usb());
    let mut buffer = PlanBuffer::new();
    let mut admitted = 0;
    let mut rejected = 0;
    for (model, units) in requests {
        if policy.plan_into(&pool, model, *units, features, &mut buffer) {
            pool.commit(model, buffer.allocations());
            admitted += 1;
        } else {
            rejected += 1;
        }
    }
    PackingOutcome {
        policy: policy.name(),
        admitted,
        rejected,
        tpus_used: pool.used_tpus(),
        fragmentation: Vec::new(),
    }
}

/// One step of a churn workload: a camera arrives, or a previously
/// admitted camera departs.
#[derive(Debug, Clone)]
enum ChurnOp {
    Arrive(ModelProfile, TpuUnits),
    /// Departs the `n`-th *successfully admitted* camera, if still live.
    Depart(usize),
}

/// A random arrive/depart sequence. Departures create the fragmentation
/// holes that make the packing heuristics diverge.
fn churn_ops(count: u32, seed: u64) -> Vec<ChurnOp> {
    let requests = random_requests(count, seed);
    let mut rng = DetRng::seed_from(seed ^ 0xC0FF_EE00);
    let mut ops = Vec::with_capacity(count as usize);
    let mut arrivals = 0usize;
    for (model, units) in requests {
        if arrivals > 2 && rng.chance(0.4) {
            ops.push(ChurnOp::Depart(rng.index(arrivals)));
        } else {
            ops.push(ChurnOp::Arrive(model, units));
            arrivals += 1;
        }
    }
    ops
}

fn run_policy_churn(
    mut policy: Box<dyn AdmissionPolicy>,
    ops: &[ChurnOp],
    tpus: u32,
    features: Features,
) -> PackingOutcome {
    let cluster = experiment_cluster(tpus);
    let mut pool = TpuPool::from_cluster(&cluster, TpuSpec::coral_usb());
    let mut buffer = PlanBuffer::new();
    // Live assignments go into a slab whose freed slots are recycled, so
    // memory is bounded by the *concurrent* pod count, not the run length.
    // `arrival_slot` maps each arrival op's ordinal (what `Depart` indexes,
    // policy-independently) to its slab slot while the pod is live.
    let mut slab: Vec<Option<(ModelProfile, Vec<microedge_core::pool::Allocation>)>> = Vec::new();
    let mut free_slots: Vec<usize> = Vec::new();
    let mut arrival_slot: Vec<Option<usize>> = Vec::new();
    let mut admitted = 0;
    let mut rejected = 0;
    let mut fragmentation = Vec::with_capacity(ops.len());
    for op in ops {
        match op {
            ChurnOp::Arrive(model, units) => {
                if policy.plan_into(&pool, model, *units, features, &mut buffer) {
                    pool.commit(model, buffer.allocations());
                    let entry = Some((model.clone(), buffer.allocations().to_vec()));
                    let slot = match free_slots.pop() {
                        Some(i) => {
                            slab[i] = entry;
                            i
                        }
                        None => {
                            slab.push(entry);
                            slab.len() - 1
                        }
                    };
                    arrival_slot.push(Some(slot));
                    admitted += 1;
                } else {
                    arrival_slot.push(None);
                    rejected += 1;
                }
            }
            ChurnOp::Depart(idx) => {
                if let Some(slot) = arrival_slot.get_mut(*idx).and_then(Option::take) {
                    let (model, plan) = slab[slot].take().expect("departing pod is live");
                    pool.release(model.id(), &plan);
                    free_slots.push(slot);
                }
            }
        }
        fragmentation.push(pool.capacity_summary().fragmentation_ratio());
    }
    PackingOutcome {
        policy: policy.name(),
        admitted,
        rejected,
        tpus_used: pool.used_tpus(),
        fragmentation,
    }
}

/// Runs all four heuristics on the same arrive/depart sequence. Departures
/// leave fragmentation holes, which is where scan order starts to matter —
/// especially with workload partitioning disabled.
#[must_use]
pub fn run_churn_ablation(
    ops_count: u32,
    tpus: u32,
    features: Features,
    seed: u64,
) -> Vec<PackingOutcome> {
    let ops = churn_ops(ops_count, seed);
    policy_set()
        .into_iter()
        .map(|p| run_policy_churn(p, &ops, tpus, features))
        .collect()
}

/// Runs all four heuristics on the same sequence.
#[must_use]
pub fn run_packing_ablation(
    requests: u32,
    tpus: u32,
    features: Features,
    seed: u64,
) -> Vec<PackingOutcome> {
    let sequence = random_requests(requests, seed);
    policy_set()
        .into_iter()
        .map(|p| run_policy(p, &sequence, tpus, features))
        .collect()
}

/// Renders the ablation averaged over `seeds` sequences, in two regimes:
/// arrival-only with workload partitioning (where the heuristics tie —
/// partitioning eliminates fragmentation), and churn without partitioning
/// (where scan order matters).
#[must_use]
pub fn render_packing(requests: u32, tpus: u32, seeds: u64) -> String {
    let regimes: [(&str, Features, bool); 2] = [
        ("arrivals only, w/ partitioning", Features::all(), false),
        (
            "churn, w/o partitioning",
            Features::co_compiling_only(),
            true,
        ),
    ];
    let mut out = String::new();
    for (label, features, churn) in regimes {
        let mut admitted = [0u32; 5];
        let mut used = [0usize; 5];
        let mut frag = [0.0f64; 5];
        let mut names = ["", "", "", "", ""];
        // Seeds are independent sequences; run them in parallel and fold
        // the returned outcomes in seed order, so the averages are the
        // exact integers a serial loop would produce.
        let per_seed = microedge_sim::par::par_map((0..seeds).collect(), |_, seed| {
            if churn {
                run_churn_ablation(requests, tpus, features, seed)
            } else {
                run_packing_ablation(requests, tpus, features, seed)
            }
        });
        for outcomes in &per_seed {
            for (i, o) in outcomes.iter().enumerate() {
                admitted[i] += o.admitted();
                used[i] += o.tpus_used();
                frag[i] += o.mean_fragmentation();
                names[i] = o.policy();
            }
        }
        // The churn regime reports the fragmentation its departures leave
        // behind — the metric the defrag study (`bench::defrag`) shares
        // with this ablation. Arrival-only pools never fragment, so that
        // regime keeps the original columns.
        let headers: &[&str] = if churn {
            &["policy", "avg admitted", "avg TPUs used", "avg frag ratio"]
        } else {
            &["policy", "avg admitted", "avg TPUs used"]
        };
        let mut table = Table::new(headers);
        for i in 0..5 {
            let mut row = vec![
                names[i].to_owned(),
                fmt_f64(f64::from(admitted[i]) / seeds as f64, 1),
                fmt_f64(used[i] as f64 / seeds as f64, 1),
            ];
            if churn {
                row.push(fmt_f64(frag[i] / seeds as f64, 3));
            }
            table.row_owned(row);
        }
        out.push_str(&format!(
            "### Ablation — packing heuristics, {label} ({requests} ops, {tpus} TPUs, {seeds} seeds)\n{table}\n"
        ));
    }

    // First-Fit against the exact optimum (classic bin packing, ≤ 10 items
    // per instance so the branch-and-bound solver is instant).
    let mut ff_total = 0u32;
    let mut opt_total = 0u32;
    let mut worst_ratio = 1.0f64;
    let per_seed = microedge_sim::par::par_map((0..seeds).collect(), |_, seed| {
        let items: Vec<TpuUnits> = random_requests(10, seed ^ 0xBEEF)
            .into_iter()
            .map(|(_, u)| TpuUnits::from_micro(u.as_micro().min(1_000_000)))
            .collect();
        (first_fit_bins(&items), optimal_bins(&items))
    });
    for (ff, opt) in per_seed {
        ff_total += ff;
        opt_total += opt;
        worst_ratio = worst_ratio.max(f64::from(ff) / f64::from(opt.max(1)));
    }
    out.push_str(&format!(
        "### Ablation — First-Fit vs exact optimum ({seeds} random 10-item instances)\navg bins: first-fit {:.1} vs optimal {:.1}; worst observed ratio {:.2} (paper's asymptotic bound: 1.7)\n",
        f64::from(ff_total) / seeds as f64,
        f64::from(opt_total) / seeds as f64,
        worst_ratio,
    ));
    out
}

/// Bin capacity in micro-units for the classic (no-partitioning) packing
/// helpers: one whole TPU.
const BIN_CAP: u64 = 1_000_000;

/// The Martello–Toth **L2** lower bound on the optimal bin count.
///
/// For a threshold `t ≤ cap/2`, items split into `J1 = {x > cap − t}`
/// (each needs a private bin no `≥ t` item can share), `J2 =
/// {cap − t ≥ x > cap/2}` (pairwise incompatible, one bin each, with
/// `|J2|·cap − Σ J2` spare room), and `J3 = {cap/2 ≥ x ≥ t}` (volume that
/// must go into J2's spare room or new bins). Items below `t` are
/// discarded — that is what makes the bound beat plain volume rounding:
///
/// `L(t) = |J1| + |J2| + max(0, ⌈(Σ J3 − (|J2|·cap − Σ J2)) / cap⌉)`
///
/// and `L2 = max over t ∈ {0} ∪ {distinct sizes ≤ cap/2}`. At `t = 0` this
/// reduces to (at least) the volume bound `⌈Σ/cap⌉`, so L2 dominates L1.
///
/// # Panics
///
/// Panics if any item exceeds one whole TPU.
#[must_use]
pub fn l2_lower_bound(items: &[TpuUnits]) -> u32 {
    let mut sizes: Vec<u64> = items.iter().map(|u| u.as_micro()).collect();
    assert!(
        sizes.iter().all(|&s| s <= BIN_CAP),
        "classic bin packing requires items ≤ 1 TPU"
    );
    sizes.retain(|&s| s > 0);
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    l2_of_sorted(&sizes)
}

/// [`l2_lower_bound`] over positive sizes already sorted descending.
fn l2_of_sorted(sizes: &[u64]) -> u32 {
    let mut thresholds: Vec<u64> = vec![0];
    thresholds.extend(sizes.iter().copied().filter(|&s| s <= BIN_CAP / 2));
    thresholds.dedup(); // sorted input keeps duplicates adjacent
    let mut best = 0u64;
    for t in thresholds {
        let mut j1 = 0u64;
        let mut j2 = 0u64;
        let mut j2_sum = 0u64;
        let mut j3_sum = 0u64;
        for &x in sizes {
            if x > BIN_CAP - t {
                j1 += 1;
            } else if x > BIN_CAP / 2 {
                j2 += 1;
                j2_sum += x;
            } else if x >= t {
                j3_sum += x;
            }
        }
        let j2_spare = j2 * BIN_CAP - j2_sum;
        let overflow_bins = j3_sum.saturating_sub(j2_spare).div_ceil(BIN_CAP);
        best = best.max(j1 + j2 + overflow_bins);
    }
    best as u32
}

/// First-Fit-Decreasing over positive sizes already sorted descending —
/// the branch-and-bound's initial upper bound (FFD is within 11/9·OPT + 1,
/// and frequently exact, so the search often only has to prove optimality).
fn ffd_of_sorted(sizes: &[u64]) -> u32 {
    let mut bins: Vec<u64> = Vec::new();
    for &size in sizes {
        match bins.iter_mut().find(|b| **b + size <= BIN_CAP) {
            Some(bin) => *bin += size,
            None => bins.push(size),
        }
    }
    bins.len() as u32
}

/// Exact minimal bin count for classic bin packing (bins of capacity
/// [`TpuUnits::ONE`]) by pruned branch and bound. Validates the paper's
/// choice of First-Fit (asymptotic approximation ratio 1.7, §4.2) against
/// the true optimum.
///
/// The search places items largest-first and prunes with:
///
/// - an **FFD upper bound** seeding `best` before the search starts;
/// - the **L2 lower bound** ([`l2_lower_bound`]) for instant exit when FFD
///   already meets it, plus a per-node **residual-volume bound**
///   (`open bins + ⌈(remaining volume − open free space) / cap⌉`);
/// - **perfect-fit dominance**: when the largest remaining item exactly
///   fills some open bin, that placement is committed without branching
///   (an exchange argument shows some optimal completion does this);
/// - **equal-residual symmetry**: among open bins with identical loads
///   only the first is tried;
/// - a **visited-state memo** keyed on (items left, sorted open-bin
///   residuals): permutations of equally sized items and different
///   placement orders reaching the same state are explored once. Re-visits
///   are safe to cut because `best` only ever decreases, so a repeat
///   exploration could not beat the first.
///
/// Together these carry the solver well past the ~14-item limit of naive
/// branch and bound (see `tests/packing_optimality.rs` for 40-item runs).
///
/// # Panics
///
/// Panics if any item exceeds one whole TPU (classic bin packing only —
/// that is exactly the regime without workload partitioning).
#[must_use]
pub fn optimal_bins(items: &[TpuUnits]) -> u32 {
    let mut sizes: Vec<u64> = items.iter().map(|u| u.as_micro()).collect();
    assert!(
        sizes.iter().all(|&s| s <= BIN_CAP),
        "classic bin packing requires items ≤ 1 TPU"
    );
    sizes.retain(|&s| s > 0);
    // Largest first tightens every bound quickly.
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    if sizes.is_empty() {
        return 0;
    }
    let total: u64 = sizes.iter().sum();
    let lower = l2_of_sorted(&sizes).max(1);
    let mut best = ffd_of_sorted(&sizes);
    if best == lower {
        return best;
    }

    fn search(
        items: &[u64],
        remaining: u64,
        bins: &mut Vec<u64>,
        best: &mut u32,
        lower: u32,
        memo: &mut std::collections::BTreeSet<(usize, Vec<u64>)>,
    ) {
        if *best == lower {
            return; // cannot beat the global lower bound
        }
        let Some((&first, rest)) = items.split_first() else {
            *best = (*best).min(bins.len() as u32);
            return;
        };
        // Residual-volume bound: even packing the open free space
        // perfectly, the leftover volume forces this many bins.
        let open_free: u64 = bins.iter().map(|b| BIN_CAP - b).sum();
        let at_least = bins.len() as u64 + remaining.saturating_sub(open_free).div_ceil(BIN_CAP);
        if at_least >= u64::from(*best) {
            return;
        }
        // Visited-state memo on the canonical (item count, residuals) key.
        let mut key = bins.clone();
        key.sort_unstable();
        if !memo.insert((items.len(), key)) {
            return;
        }
        // Perfect-fit dominance: filling a bin exactly with the largest
        // remaining item never hurts — commit it, skip all other branches.
        if let Some(i) = bins.iter().position(|&b| b + first == BIN_CAP) {
            bins[i] += first;
            search(rest, remaining - first, bins, best, lower, memo);
            bins[i] -= first;
            return;
        }
        // Try existing bins, skipping symmetric (equal-load) duplicates.
        let mut tried = std::collections::BTreeSet::new();
        for i in 0..bins.len() {
            if bins[i] + first <= BIN_CAP && tried.insert(bins[i]) {
                bins[i] += first;
                search(rest, remaining - first, bins, best, lower, memo);
                bins[i] -= first;
            }
        }
        // Or open a new bin (pointless if that alone reaches `best`).
        if bins.len() as u32 + 1 < *best {
            bins.push(first);
            search(rest, remaining - first, bins, best, lower, memo);
            bins.pop();
        }
    }

    // BTreeSet keeps the memo hash-free: membership-only today, but a
    // deterministic structure can never leak iteration order into results.
    let mut memo = std::collections::BTreeSet::new();
    search(&sizes, total, &mut Vec::new(), &mut best, lower, &mut memo);
    best
}

/// Bins used by classic First-Fit (no splitting) on the same items, in
/// arrival order — the paper's admission discipline without workload
/// partitioning.
///
/// # Panics
///
/// Panics if any item exceeds one whole TPU.
#[must_use]
pub fn first_fit_bins(items: &[TpuUnits]) -> u32 {
    let mut bins: Vec<u64> = Vec::new();
    for item in items {
        let size = item.as_micro();
        assert!(
            size <= BIN_CAP,
            "classic bin packing requires items ≤ 1 TPU"
        );
        if size == 0 {
            continue;
        }
        match bins.iter_mut().find(|b| **b + size <= BIN_CAP) {
            Some(bin) => *bin += size,
            None => bins.push(size),
        }
    }
    bins.len() as u32
}

/// Verifies the paper's First-Fit invariants hold across a request
/// sequence: every TPU's load ≤ 1 and every TPU's live model bytes fit the
/// budget. Used by integration/property tests.
#[must_use]
pub fn first_fit_invariants_hold(requests: u32, tpus: u32, seed: u64) -> bool {
    let sequence = random_requests(requests, seed);
    let cluster = experiment_cluster(tpus);
    let mut pool = TpuPool::from_cluster(&cluster, TpuSpec::coral_usb());
    let mut policy = FirstFit::new();
    let catalog = Catalog::builtin();
    for (model, units) in &sequence {
        if let Some(plan) = policy.plan(&pool, model, *units, Features::all()) {
            pool.commit(model, &plan);
        }
    }
    pool.accounts().iter().all(|a| {
        let live_bytes: u64 = a
            .live_models()
            .iter()
            .map(|m| catalog.expect(m).param_bytes())
            .sum();
        a.load() <= TpuUnits::ONE && live_bytes <= pool.param_budget()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_policies_respect_capacity() {
        for seed in 0..5 {
            for o in run_packing_ablation(60, 8, Features::all(), seed) {
                assert!(o.admitted() + o.rejected() == 60);
                assert!(o.tpus_used() <= 8);
            }
        }
    }

    #[test]
    fn same_sequence_same_outcome() {
        let a = run_packing_ablation(40, 6, Features::all(), 3);
        let b = run_packing_ablation(40, 6, Features::all(), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn first_fit_is_competitive() {
        // Averaged over seeds, First-Fit admits at least as much as
        // Next-Fit (it dominates by construction: it scans strictly more
        // TPUs from a fixed origin).
        let seeds = 10;
        let mut ff = 0;
        let mut nf = 0;
        for seed in 0..seeds {
            let outcomes = run_packing_ablation(60, 6, Features::all(), seed);
            ff += outcomes[0].admitted();
            nf += outcomes[3].admitted();
        }
        assert!(ff >= nf, "first-fit {ff} vs next-fit {nf}");
    }

    #[test]
    fn invariants_hold_for_many_seeds() {
        for seed in 0..20 {
            assert!(first_fit_invariants_hold(80, 6, seed), "seed {seed}");
        }
    }

    #[test]
    fn render_lists_four_policies_and_both_regimes() {
        let text = render_packing(30, 6, 3);
        for name in [
            "first-fit",
            "best-fit",
            "worst-fit",
            "next-fit",
            "next-k-fit",
        ] {
            assert!(text.contains(name));
        }
        assert!(text.contains("arrivals only"));
        assert!(text.contains("churn"));
    }

    #[test]
    fn churn_ablation_is_deterministic_and_capacity_safe() {
        let a = run_churn_ablation(80, 6, Features::co_compiling_only(), 5);
        let b = run_churn_ablation(80, 6, Features::co_compiling_only(), 5);
        assert_eq!(a, b);
        for o in &a {
            assert!(o.tpus_used() <= 6);
            assert!(o.admitted() > 0);
        }
    }

    #[test]
    fn churn_reports_per_round_fragmentation() {
        for o in run_churn_ablation(80, 6, Features::co_compiling_only(), 5) {
            assert_eq!(o.fragmentation().len(), 80, "one sample per op");
            assert!(o
                .fragmentation()
                .iter()
                .all(|f| (0.0..=1.0).contains(f) && f.is_finite()));
            let mean = o.mean_fragmentation();
            assert!((0.0..=1.0).contains(&mean));
        }
        // Arrival-only runs never fragment and sample nothing.
        for o in run_packing_ablation(40, 6, Features::all(), 5) {
            assert!(o.fragmentation().is_empty());
            assert!((o.mean_fragmentation() - 1.0).abs() < f64::EPSILON);
        }
    }

    fn units(micro: &[u64]) -> Vec<TpuUnits> {
        micro.iter().map(|&m| TpuUnits::from_micro(m)).collect()
    }

    #[test]
    fn optimal_solver_handles_edges() {
        assert_eq!(optimal_bins(&[]), 0);
        assert_eq!(optimal_bins(&units(&[0, 0])), 0, "zero items are free");
        assert_eq!(optimal_bins(&units(&[1_000_000])), 1);
        assert_eq!(optimal_bins(&units(&[500_000, 500_000])), 1);
        assert_eq!(optimal_bins(&units(&[500_001, 500_001])), 2);
    }

    #[test]
    fn l2_bound_beats_volume_on_pairwise_incompatible_items() {
        // Three 0.6 items: volume bound says ⌈1.8⌉ = 2, but no two can
        // share a bin — L2 (at t = 0: three J2 items) says 3.
        let items = units(&[600_000, 600_000, 600_000]);
        assert_eq!(l2_lower_bound(&items), 3);
        assert_eq!(optimal_bins(&items), 3);
    }

    #[test]
    fn pruned_solver_handles_the_adversarial_ffd_case() {
        // Three 0.33 + three 0.67: FFD pairs them perfectly (3 bins); the
        // classic First-Fit in arrival order (0.33s first) needs 4. The
        // solver must find 3 and prove it instantly via L2.
        let mut items = units(&[330_000, 330_000, 330_000, 670_000, 670_000, 670_000]);
        assert_eq!(optimal_bins(&items), 3);
        items.reverse();
        assert_eq!(optimal_bins(&items), 3, "order-independent");
    }

    #[test]
    fn pruned_solver_scales_past_toy_sizes() {
        // 40 items was hopeless for the unpruned search; the L2 bound,
        // FFD seed, dominance, and memo make it instant.
        let items: Vec<TpuUnits> = (0..40)
            .map(|i| TpuUnits::from_micro(150_000 + (i * 37_507) % 700_000))
            .collect();
        let opt = optimal_bins(&items);
        let l2 = l2_lower_bound(&items);
        let ff = first_fit_bins(&items);
        assert!(l2 <= opt, "lower bound {l2} must not exceed optimum {opt}");
        assert!(opt <= ff, "optimum {opt} cannot exceed first-fit {ff}");
        let total: u64 = items.iter().map(|u| u.as_micro()).sum();
        assert!(u64::from(opt) * 1_000_000 >= total, "volume feasibility");
    }

    #[test]
    fn churn_without_partitioning_differentiates_policies() {
        // Aggregated over seeds, the four heuristics should not all admit
        // identical counts once departures fragment the pool.
        let mut distinct = false;
        for seed in 0..8 {
            let outcomes = run_churn_ablation(100, 5, Features::co_compiling_only(), seed);
            let first = outcomes[0].admitted();
            if outcomes.iter().any(|o| o.admitted() != first) {
                distinct = true;
                break;
            }
        }
        assert!(distinct, "expected at least one seed to separate policies");
    }
}
