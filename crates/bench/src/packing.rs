//! Packing-heuristic ablation (DESIGN.md ◊3).
//!
//! The paper chooses First-Fit for its 1.7 asymptotic approximation ratio.
//! This ablation feeds identical random request sequences to First-Fit,
//! Best-Fit, Worst-Fit, and Next-Fit and compares TPUs used and requests
//! rejected.

use microedge_core::admission::{AdmissionPolicy, BestFit, FirstFit, NextFit, NextKFit, WorstFit};
use microedge_core::config::Features;
use microedge_core::pool::TpuPool;
use microedge_core::units::TpuUnits;
use microedge_metrics::report::{fmt_f64, Table};
use microedge_models::catalog::{fig1_models, Catalog};
use microedge_models::profile::ModelProfile;
use microedge_sim::rng::DetRng;
use microedge_tpu::spec::TpuSpec;

use crate::runner::experiment_cluster;

/// Outcome of one policy on one request sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct PackingOutcome {
    policy: &'static str,
    admitted: u32,
    rejected: u32,
    tpus_used: usize,
}

impl PackingOutcome {
    /// Policy name.
    #[must_use]
    pub fn policy(&self) -> &'static str {
        self.policy
    }

    /// Requests admitted.
    #[must_use]
    pub fn admitted(&self) -> u32 {
        self.admitted
    }

    /// Requests rejected.
    #[must_use]
    pub fn rejected(&self) -> u32 {
        self.rejected
    }

    /// TPUs carrying load after the sequence.
    #[must_use]
    pub fn tpus_used(&self) -> usize {
        self.tpus_used
    }
}

/// A random request: a Fig. 1 model (small ones, so the Model Size Rule is
/// exercised but not degenerate) and a unit demand in `[0.1, 0.7]`.
fn random_requests(count: u32, seed: u64) -> Vec<(ModelProfile, TpuUnits)> {
    let small_models: Vec<ModelProfile> = fig1_models()
        .into_iter()
        .filter(|m| m.param_bytes() <= 4 * 1024 * 1024)
        .collect();
    let mut rng = DetRng::seed_from(seed);
    (0..count)
        .map(|_| {
            let model = small_models[rng.index(small_models.len())].clone();
            let units = TpuUnits::from_micro(rng.uniform_range(100_000, 700_001));
            (model, units)
        })
        .collect()
}

/// The §4.2 heuristic list: First-, Best-, Worst-, Next-, and Next-k-Fit.
fn policy_set() -> Vec<Box<dyn AdmissionPolicy>> {
    vec![
        Box::new(FirstFit::new()),
        Box::new(BestFit::new()),
        Box::new(WorstFit::new()),
        Box::new(NextFit::new()),
        Box::new(NextKFit::new(2)),
    ]
}

fn run_policy(
    mut policy: Box<dyn AdmissionPolicy>,
    requests: &[(ModelProfile, TpuUnits)],
    tpus: u32,
    features: Features,
) -> PackingOutcome {
    let cluster = experiment_cluster(tpus);
    let mut pool = TpuPool::from_cluster(&cluster, TpuSpec::coral_usb());
    let mut admitted = 0;
    let mut rejected = 0;
    for (model, units) in requests {
        match policy.plan(&pool, model, *units, features) {
            Some(plan) => {
                pool.commit(model, &plan);
                admitted += 1;
            }
            None => rejected += 1,
        }
    }
    PackingOutcome {
        policy: policy.name(),
        admitted,
        rejected,
        tpus_used: pool.used_tpus(),
    }
}

/// One step of a churn workload: a camera arrives, or a previously
/// admitted camera departs.
#[derive(Debug, Clone)]
enum ChurnOp {
    Arrive(ModelProfile, TpuUnits),
    /// Departs the `n`-th *successfully admitted* camera, if still live.
    Depart(usize),
}

/// A random arrive/depart sequence. Departures create the fragmentation
/// holes that make the packing heuristics diverge.
fn churn_ops(count: u32, seed: u64) -> Vec<ChurnOp> {
    let requests = random_requests(count, seed);
    let mut rng = DetRng::seed_from(seed ^ 0xC0FF_EE00);
    let mut ops = Vec::with_capacity(count as usize);
    let mut arrivals = 0usize;
    for (model, units) in requests {
        if arrivals > 2 && rng.chance(0.4) {
            ops.push(ChurnOp::Depart(rng.index(arrivals)));
        } else {
            ops.push(ChurnOp::Arrive(model, units));
            arrivals += 1;
        }
    }
    ops
}

fn run_policy_churn(
    mut policy: Box<dyn AdmissionPolicy>,
    ops: &[ChurnOp],
    tpus: u32,
    features: Features,
) -> PackingOutcome {
    let cluster = experiment_cluster(tpus);
    let mut pool = TpuPool::from_cluster(&cluster, TpuSpec::coral_usb());
    // One slot per arrival op (policy-independent indexing): holds the
    // committed assignment if this policy admitted that arrival and it has
    // not yet departed.
    let mut slots: Vec<Option<(ModelProfile, Vec<microedge_core::pool::Allocation>)>> = Vec::new();
    let mut admitted = 0;
    let mut rejected = 0;
    for op in ops {
        match op {
            ChurnOp::Arrive(model, units) => match policy.plan(&pool, model, *units, features) {
                Some(plan) => {
                    pool.commit(model, &plan);
                    slots.push(Some((model.clone(), plan)));
                    admitted += 1;
                }
                None => {
                    slots.push(None);
                    rejected += 1;
                }
            },
            ChurnOp::Depart(idx) => {
                if let Some(Some((model, plan))) = slots.get_mut(*idx).map(Option::take) {
                    pool.release(model.id(), &plan);
                }
            }
        }
    }
    PackingOutcome {
        policy: policy.name(),
        admitted,
        rejected,
        tpus_used: pool.used_tpus(),
    }
}

/// Runs all four heuristics on the same arrive/depart sequence. Departures
/// leave fragmentation holes, which is where scan order starts to matter —
/// especially with workload partitioning disabled.
#[must_use]
pub fn run_churn_ablation(
    ops_count: u32,
    tpus: u32,
    features: Features,
    seed: u64,
) -> Vec<PackingOutcome> {
    let ops = churn_ops(ops_count, seed);
    policy_set()
        .into_iter()
        .map(|p| run_policy_churn(p, &ops, tpus, features))
        .collect()
}

/// Runs all four heuristics on the same sequence.
#[must_use]
pub fn run_packing_ablation(
    requests: u32,
    tpus: u32,
    features: Features,
    seed: u64,
) -> Vec<PackingOutcome> {
    let sequence = random_requests(requests, seed);
    policy_set()
        .into_iter()
        .map(|p| run_policy(p, &sequence, tpus, features))
        .collect()
}

/// Renders the ablation averaged over `seeds` sequences, in two regimes:
/// arrival-only with workload partitioning (where the heuristics tie —
/// partitioning eliminates fragmentation), and churn without partitioning
/// (where scan order matters).
#[must_use]
pub fn render_packing(requests: u32, tpus: u32, seeds: u64) -> String {
    let regimes: [(&str, Features, bool); 2] = [
        ("arrivals only, w/ partitioning", Features::all(), false),
        (
            "churn, w/o partitioning",
            Features::co_compiling_only(),
            true,
        ),
    ];
    let mut out = String::new();
    for (label, features, churn) in regimes {
        let mut admitted = [0u32; 5];
        let mut used = [0usize; 5];
        let mut names = ["", "", "", "", ""];
        // Seeds are independent sequences; run them in parallel and fold
        // the returned outcomes in seed order, so the averages are the
        // exact integers a serial loop would produce.
        let per_seed = crate::par::par_map((0..seeds).collect(), |_, seed| {
            if churn {
                run_churn_ablation(requests, tpus, features, seed)
            } else {
                run_packing_ablation(requests, tpus, features, seed)
            }
        });
        for outcomes in &per_seed {
            for (i, o) in outcomes.iter().enumerate() {
                admitted[i] += o.admitted();
                used[i] += o.tpus_used();
                names[i] = o.policy();
            }
        }
        let mut table = Table::new(&["policy", "avg admitted", "avg TPUs used"]);
        for i in 0..5 {
            table.row_owned(vec![
                names[i].to_owned(),
                fmt_f64(f64::from(admitted[i]) / seeds as f64, 1),
                fmt_f64(used[i] as f64 / seeds as f64, 1),
            ]);
        }
        out.push_str(&format!(
            "### Ablation — packing heuristics, {label} ({requests} ops, {tpus} TPUs, {seeds} seeds)\n{table}\n"
        ));
    }

    // First-Fit against the exact optimum (classic bin packing, ≤ 10 items
    // per instance so the branch-and-bound solver is instant).
    let mut ff_total = 0u32;
    let mut opt_total = 0u32;
    let mut worst_ratio = 1.0f64;
    let per_seed = crate::par::par_map((0..seeds).collect(), |_, seed| {
        let items: Vec<TpuUnits> = random_requests(10, seed ^ 0xBEEF)
            .into_iter()
            .map(|(_, u)| TpuUnits::from_micro(u.as_micro().min(1_000_000)))
            .collect();
        (first_fit_bins(&items), optimal_bins(&items))
    });
    for (ff, opt) in per_seed {
        ff_total += ff;
        opt_total += opt;
        worst_ratio = worst_ratio.max(f64::from(ff) / f64::from(opt.max(1)));
    }
    out.push_str(&format!(
        "### Ablation — First-Fit vs exact optimum ({seeds} random 10-item instances)\navg bins: first-fit {:.1} vs optimal {:.1}; worst observed ratio {:.2} (paper's asymptotic bound: 1.7)\n",
        f64::from(ff_total) / seeds as f64,
        f64::from(opt_total) / seeds as f64,
        worst_ratio,
    ));
    out
}

/// Exact minimal bin count for classic bin packing (bins of capacity
/// [`TpuUnits::ONE`]), by branch and bound with sum lower-bounding —
/// tractable for the ≤ ~14 items the optimality tests use. Validates the
/// paper's choice of First-Fit (asymptotic approximation ratio 1.7,
/// §4.2) against the true optimum.
///
/// # Panics
///
/// Panics if any item exceeds one whole TPU (classic bin packing only —
/// that is exactly the regime without workload partitioning).
#[must_use]
pub fn optimal_bins(items: &[TpuUnits]) -> u32 {
    const CAP: u64 = 1_000_000;
    let mut sizes: Vec<u64> = items.iter().map(|u| u.as_micro()).collect();
    assert!(
        sizes.iter().all(|&s| s <= CAP),
        "classic bin packing requires items ≤ 1 TPU"
    );
    sizes.retain(|&s| s > 0);
    // Largest first tightens the bound quickly.
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = sizes.iter().sum();
    let lower = total.div_ceil(CAP) as u32;

    fn search(items: &[u64], bins: &mut Vec<u64>, best: &mut u32, lower: u32) {
        if *best == lower {
            return; // cannot beat the volume bound
        }
        let Some((&first, rest)) = items.split_first() else {
            *best = (*best).min(bins.len() as u32);
            return;
        };
        if bins.len() as u32 + 1 > *best {
            return;
        }
        // Try existing bins, skipping symmetric (equal-load) duplicates.
        let mut tried = std::collections::BTreeSet::new();
        for i in 0..bins.len() {
            if bins[i] + first <= CAP && tried.insert(bins[i]) {
                bins[i] += first;
                search(rest, bins, best, lower);
                bins[i] -= first;
            }
        }
        // Or open a new bin.
        if (bins.len() as u32) < *best {
            bins.push(first);
            search(rest, bins, best, lower);
            bins.pop();
        }
    }

    if sizes.is_empty() {
        return 0;
    }
    let mut best = sizes.len() as u32; // one bin per item always works
    search(&sizes, &mut Vec::new(), &mut best, lower.max(1));
    best
}

/// Bins used by classic First-Fit (no splitting) on the same items, in
/// arrival order — the paper's admission discipline without workload
/// partitioning.
///
/// # Panics
///
/// Panics if any item exceeds one whole TPU.
#[must_use]
pub fn first_fit_bins(items: &[TpuUnits]) -> u32 {
    const CAP: u64 = 1_000_000;
    let mut bins: Vec<u64> = Vec::new();
    for item in items {
        let size = item.as_micro();
        assert!(size <= CAP, "classic bin packing requires items ≤ 1 TPU");
        if size == 0 {
            continue;
        }
        match bins.iter_mut().find(|b| **b + size <= CAP) {
            Some(bin) => *bin += size,
            None => bins.push(size),
        }
    }
    bins.len() as u32
}

/// Verifies the paper's First-Fit invariants hold across a request
/// sequence: every TPU's load ≤ 1 and every TPU's live model bytes fit the
/// budget. Used by integration/property tests.
#[must_use]
pub fn first_fit_invariants_hold(requests: u32, tpus: u32, seed: u64) -> bool {
    let sequence = random_requests(requests, seed);
    let cluster = experiment_cluster(tpus);
    let mut pool = TpuPool::from_cluster(&cluster, TpuSpec::coral_usb());
    let mut policy = FirstFit::new();
    let catalog = Catalog::builtin();
    for (model, units) in &sequence {
        if let Some(plan) = policy.plan(&pool, model, *units, Features::all()) {
            pool.commit(model, &plan);
        }
    }
    pool.accounts().iter().all(|a| {
        let live_bytes: u64 = a
            .live_models()
            .iter()
            .map(|m| catalog.expect(m).param_bytes())
            .sum();
        a.load() <= TpuUnits::ONE && live_bytes <= pool.param_budget()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_policies_respect_capacity() {
        for seed in 0..5 {
            for o in run_packing_ablation(60, 8, Features::all(), seed) {
                assert!(o.admitted() + o.rejected() == 60);
                assert!(o.tpus_used() <= 8);
            }
        }
    }

    #[test]
    fn same_sequence_same_outcome() {
        let a = run_packing_ablation(40, 6, Features::all(), 3);
        let b = run_packing_ablation(40, 6, Features::all(), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn first_fit_is_competitive() {
        // Averaged over seeds, First-Fit admits at least as much as
        // Next-Fit (it dominates by construction: it scans strictly more
        // TPUs from a fixed origin).
        let seeds = 10;
        let mut ff = 0;
        let mut nf = 0;
        for seed in 0..seeds {
            let outcomes = run_packing_ablation(60, 6, Features::all(), seed);
            ff += outcomes[0].admitted();
            nf += outcomes[3].admitted();
        }
        assert!(ff >= nf, "first-fit {ff} vs next-fit {nf}");
    }

    #[test]
    fn invariants_hold_for_many_seeds() {
        for seed in 0..20 {
            assert!(first_fit_invariants_hold(80, 6, seed), "seed {seed}");
        }
    }

    #[test]
    fn render_lists_four_policies_and_both_regimes() {
        let text = render_packing(30, 6, 3);
        for name in [
            "first-fit",
            "best-fit",
            "worst-fit",
            "next-fit",
            "next-k-fit",
        ] {
            assert!(text.contains(name));
        }
        assert!(text.contains("arrivals only"));
        assert!(text.contains("churn"));
    }

    #[test]
    fn churn_ablation_is_deterministic_and_capacity_safe() {
        let a = run_churn_ablation(80, 6, Features::co_compiling_only(), 5);
        let b = run_churn_ablation(80, 6, Features::co_compiling_only(), 5);
        assert_eq!(a, b);
        for o in &a {
            assert!(o.tpus_used() <= 6);
            assert!(o.admitted() > 0);
        }
    }

    #[test]
    fn churn_without_partitioning_differentiates_policies() {
        // Aggregated over seeds, the four heuristics should not all admit
        // identical counts once departures fragment the pool.
        let mut distinct = false;
        for seed in 0..8 {
            let outcomes = run_churn_ablation(100, 5, Features::co_compiling_only(), seed);
            let first = outcomes[0].admitted();
            if outcomes.iter().any(|o| o.admitted() != first) {
                distinct = true;
                break;
            }
        }
        assert!(distinct, "expected at least one seed to separate policies");
    }
}
