//! The scalability study (paper §6.2, Fig. 5a–5d).
//!
//! For each configuration and TPU count the experiment admits camera
//! instances one at a time until admission control refuses the next one,
//! then runs the admitted fleet through the full data plane and audits
//! every stream's FPS SLO and the fleet's TPU utilization.
//!
//! Beyond the paper's 1–6 TPU range, the module also renders the
//! *control-plane* scalability story: the admission-throughput sweep
//! ([`crate::admission_overhead::run_admission_perf`]) at 16–16 384
//! TPUs, comparing the indexed pool against the linear-scan reference.

use microedge_core::runtime::{RunResults, StreamSpec, World};
use microedge_metrics::report::{fmt_f64, Table};
use microedge_sim::time::{SimDuration, SimTime};
use microedge_workloads::apps::CameraApp;
use microedge_workloads::camera::camera_instance;

use crate::runner::{build_world, experiment_cluster, SystemConfig};

/// One point of Fig. 5: a (configuration, #TPUs) pair.
#[derive(Debug, Clone)]
pub struct ScalabilityPoint {
    config: SystemConfig,
    tpus: u32,
    max_cameras: u32,
    avg_utilization: f64,
    all_slo_met: bool,
}

impl ScalabilityPoint {
    /// The configuration measured.
    #[must_use]
    pub fn config(&self) -> SystemConfig {
        self.config
    }

    /// Number of TPUs in the cluster.
    #[must_use]
    pub fn tpus(&self) -> u32 {
        self.tpus
    }

    /// Cameras the configuration could admit (Fig. 5a/5c y-axis).
    #[must_use]
    pub fn max_cameras(&self) -> u32 {
        self.max_cameras
    }

    /// Fleet-average TPU utilization at that load (Fig. 5b/5d y-axis).
    #[must_use]
    pub fn avg_utilization(&self) -> f64 {
        self.avg_utilization
    }

    /// `true` when every admitted camera held its FPS SLO.
    #[must_use]
    pub fn all_slo_met(&self) -> bool {
        self.all_slo_met
    }
}

/// Golden-ratio start-offset stagger: well spread for any fleet size
/// without knowing the size in advance.
fn stagger(app: &CameraApp, index: u32) -> SimDuration {
    let fraction = (f64::from(index) * 0.618_033_988_749_895) % 1.0;
    app.frame_interval().mul_f64(fraction)
}

fn instance(app: &CameraApp, index: u32, frames: u64, config: SystemConfig) -> StreamSpec {
    camera_instance(
        app,
        &format!("{}-{index}", app.name()),
        frames,
        stagger(app, index),
        config.collocated(),
    )
}

/// Admits cameras of `app` until the first rejection; returns the world and
/// the admitted count.
fn fill_world(app: &CameraApp, config: SystemConfig, tpus: u32, frames: u64) -> (World, u32) {
    let mut world = build_world(experiment_cluster(tpus), config);
    let mut admitted = 0;
    loop {
        let spec = instance(app, admitted, frames, config);
        match world.admit_stream(spec) {
            Ok(_) => admitted += 1,
            Err(_) => break,
        }
        assert!(admitted < 10_000, "admission never saturated");
    }
    (world, admitted)
}

/// The admission-only capacity question: how many cameras fit?
#[must_use]
pub fn max_cameras(app: &CameraApp, config: SystemConfig, tpus: u32) -> u32 {
    let (_, admitted) = fill_world(app, config, tpus, 1);
    admitted
}

/// Runs one Fig. 5 point end to end: fill to capacity, process `frames`
/// frames per camera, audit SLOs and utilization.
#[must_use]
pub fn run_point(
    app: &CameraApp,
    config: SystemConfig,
    tpus: u32,
    frames: u64,
) -> ScalabilityPoint {
    let (world, admitted) = fill_world(app, config, tpus, frames);
    let horizon = SimTime::ZERO + app.frame_interval() * (frames + 20) + SimDuration::from_secs(5);
    let results: RunResults = world.run_to_completion(horizon);
    ScalabilityPoint {
        config,
        tpus,
        max_cameras: admitted,
        avg_utilization: results.average_utilization(),
        all_slo_met: results.all_met_fps(),
    }
}

/// The full Fig. 5 sweep for one application: every configuration × TPU
/// count `1..=max_tpus`. Points are independent simulations, so they run
/// through [`microedge_sim::par::par_map`] (bounded by the host's parallelism, or
/// the `MICROEDGE_WORKERS` override); results come back in deterministic
/// `(config, tpus)` order regardless of completion order.
#[must_use]
pub fn fig5_sweep(
    app: &CameraApp,
    configs: &[SystemConfig],
    max_tpus: u32,
    frames: u64,
) -> Vec<ScalabilityPoint> {
    let jobs: Vec<(SystemConfig, u32)> = configs
        .iter()
        .flat_map(|&config| (1..=max_tpus).map(move |tpus| (config, tpus)))
        .collect();
    microedge_sim::par::par_map(jobs, |_, (config, tpus)| {
        run_point(app, config, tpus, frames)
    })
}

/// Renders a sweep as the pair of tables behind Fig. 5a/5b (or 5c/5d).
#[must_use]
pub fn render_sweep(app: &CameraApp, points: &[ScalabilityPoint]) -> String {
    let mut cameras = Table::new(&["config", "#TPUs", "max cameras", "SLO met"]);
    let mut utilization = Table::new(&["config", "#TPUs", "avg TPU utilization"]);
    for p in points {
        cameras.row_owned(vec![
            p.config().label(),
            p.tpus().to_string(),
            p.max_cameras().to_string(),
            if p.all_slo_met() { "yes" } else { "NO" }.to_owned(),
        ]);
        utilization.row_owned(vec![
            p.config().label(),
            p.tpus().to_string(),
            fmt_f64(p.avg_utilization(), 3),
        ]);
    }
    format!(
        "### {} — cameras supported (Fig. 5a/5c)\n{cameras}\n### {} — TPU utilization (Fig. 5b/5d)\n{utilization}",
        app.name(),
        app.name()
    )
}

/// Renders the admission-scalability table: planning cost of the indexed
/// pool versus the linear-scan reference across fleet sizes far beyond
/// the paper's six TPUs.
#[must_use]
pub fn render_admission_scalability(perf: &crate::admission_overhead::AdmissionPerf) -> String {
    let mut table = Table::new(&[
        "#TPUs",
        "linear ns/plan",
        "indexed ns/plan",
        "indexed plans/s",
        "speedup",
    ]);
    for p in perf.points() {
        table.row_owned(vec![
            p.tpus().to_string(),
            fmt_f64(p.linear_ns(), 0),
            fmt_f64(p.indexed_ns(), 0),
            fmt_f64(p.indexed_plans_per_sec(), 0),
            format!("{:.1}x", p.speedup()),
        ]);
    }
    format!(
        "### Admission scalability — indexed pool vs linear scan (best of {} rounds)\n{table}\n\
         workload: {}\n",
        perf.rounds(),
        perf.workload(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coral_pie_capacity_formulas() {
        let app = CameraApp::coral_pie();
        // Baseline: one camera per TPU.
        assert_eq!(max_cameras(&app, SystemConfig::Baseline, 3), 3);
        // Without partitioning: ⌊1 / 0.35⌋ = 2 per TPU.
        assert_eq!(max_cameras(&app, SystemConfig::microedge_no_wp(), 3), 6);
        // With partitioning: ⌊3 / 0.35⌋ = 8.
        assert_eq!(max_cameras(&app, SystemConfig::microedge_full(), 3), 8);
    }

    #[test]
    fn coral_pie_6_tpus_reaches_17_cameras_2_8x() {
        let app = CameraApp::coral_pie();
        let baseline = max_cameras(&app, SystemConfig::Baseline, 6);
        let microedge = max_cameras(&app, SystemConfig::microedge_full(), 6);
        assert_eq!(baseline, 6);
        assert_eq!(microedge, 17, "⌊6 / 0.35⌋ = 17 cameras");
        let ratio = f64::from(microedge) / f64::from(baseline);
        assert!((ratio - 2.83).abs() < 0.01, "the paper's 2.8×, got {ratio}");
    }

    #[test]
    fn bodypix_capacity_formulas() {
        let app = CameraApp::bodypix();
        // Baseline needs two dedicated TPUs per camera.
        assert_eq!(max_cameras(&app, SystemConfig::Baseline, 6), 3);
        // With partitioning: ⌊6 / 1.2⌋ = 5.
        assert_eq!(max_cameras(&app, SystemConfig::microedge_full(), 6), 5);
        // Without partitioning BodyPix cannot run at all (> 1 unit).
        assert_eq!(max_cameras(&app, SystemConfig::microedge_no_wp(), 6), 0);
    }

    #[test]
    fn full_point_meets_slo_and_utilization() {
        let app = CameraApp::coral_pie();
        let p = run_point(&app, SystemConfig::microedge_full(), 2, 150);
        assert_eq!(p.max_cameras(), 5, "⌊2 / 0.35⌋");
        assert!(p.all_slo_met(), "all cameras must hold 15 FPS");
        // 5 × 0.35 / 2 = 0.875 expected utilization.
        assert!(
            (p.avg_utilization() - 0.875).abs() < 0.03,
            "{}",
            p.avg_utilization()
        );
    }

    #[test]
    fn baseline_point_underutilizes() {
        let app = CameraApp::coral_pie();
        let p = run_point(&app, SystemConfig::Baseline, 2, 150);
        assert_eq!(p.max_cameras(), 2);
        assert!(p.all_slo_met());
        assert!(
            (p.avg_utilization() - 0.35).abs() < 0.02,
            "{}",
            p.avg_utilization()
        );
    }

    #[test]
    fn admission_scalability_render_has_every_size() {
        let perf = crate::admission_overhead::run_admission_perf_with(&[(16, 20), (64, 20)], 1);
        let text = render_admission_scalability(&perf);
        assert!(text.contains("Admission scalability"));
        assert!(text.contains("#TPUs"));
        assert!(text.contains("16"));
        assert!(text.contains("64"));
        assert!(text.contains("speedup"));
    }

    #[test]
    fn render_contains_all_rows() {
        let app = CameraApp::coral_pie();
        let points = fig5_sweep(
            &app,
            &[SystemConfig::Baseline, SystemConfig::microedge_full()],
            2,
            30,
        );
        assert_eq!(points.len(), 4);
        let text = render_sweep(&app, &points);
        assert!(text.contains("baseline"));
        assert!(text.contains("microedge w/ w.p."));
        assert!(text.contains("Fig. 5a"));
    }
}
