//! Deterministic parallel map — re-exported from `microedge_sim::par`.
//!
//! The implementation moved into the sim crate so the core crate's sharded
//! replay can step shards on the same worker pool the bench sweeps use.
//! Bench callers keep importing it from here.

pub use microedge_sim::par::{par_map, par_map_with_workers, worker_count, WORKERS_ENV};
