//! Chaos / failure-recovery study (`repro --chaos`).
//!
//! Replays the *same* deterministic fault schedule against three recovery
//! disciplines — no healing (displaced streams are dropped), self-healing
//! reconciliation, and self-healing plus graceful degradation — across a
//! sweep of failure-rate multipliers. Every run shares one cluster shape
//! and workload, so the disciplines differ only in how the control plane
//! reacts: the study isolates the availability value of the reconciler and
//! of fairness-tier degradation.
//!
//! All numbers derive from simulated time only, so `BENCH_chaos.json` is
//! byte-identical across runs and `MICROEDGE_WORKERS` settings.

use std::fmt::Write as _;

use microedge_core::faults::{ChaosConfig, ClassRates, FaultModel, FaultSchedule};
use microedge_core::runtime::{StreamSpec, World};
use microedge_metrics::recovery::RecoveryPhase;
use microedge_sim::time::{SimDuration, SimTime};

use crate::runner::{build_world, experiment_cluster, SystemConfig};

/// TPUs in the chaos cluster.
pub const CHAOS_TPUS: u32 = 6;
/// Camera streams admitted before faults start.
pub const CHAOS_STREAMS: u64 = 12;
/// Seed for the generated fault schedule.
pub const CHAOS_SEED: u64 = 42;

/// The three recovery disciplines compared.
pub const MODES: [&str; 3] = ["no-heal", "heal", "heal+degrade"];

/// Failure-rate multipliers applied to every component class's MTBF.
pub const RATES: [u32; 3] = [1, 2, 4];

/// One (discipline, failure-rate) cell of the study.
#[derive(Debug, Clone)]
pub struct ChaosPoint {
    /// Recovery discipline label (one of [`MODES`]).
    pub mode: &'static str,
    /// Failure-rate multiplier (one of [`RATES`]).
    pub rate: u32,
    /// Streams that ended the run lost with no pending recovery.
    pub lost: usize,
    /// Streams still waiting in the pending-restart queue at end of run.
    pub parked: usize,
    /// Re-admissions the reconciler completed.
    pub restarts: u32,
    /// Completed recovery events (with latency breakdowns).
    pub recoveries: u64,
    /// Mean fault-to-serving time in milliseconds (0 when no recovery
    /// completed).
    pub mttr_ms: f64,
    /// Mean detection phase (heartbeat-lease expiry) in milliseconds.
    pub detection_ms: f64,
    /// Mean rescheduling phase (replanning RPCs) in milliseconds.
    pub rescheduling_ms: f64,
    /// Mean swap-in phase (parameter streaming) in milliseconds.
    pub swap_in_ms: f64,
    /// Mean per-stream availability over the horizon (serving at any
    /// rate counts as available).
    pub availability: f64,
    /// Summed downtime across all streams, in seconds.
    pub downtime_s: f64,
    /// Summed reduced-rate serving time across all streams, in seconds.
    pub degraded_s: f64,
    /// Frames dropped by dead components during the run.
    pub frames_dropped: u64,
    /// Simulation events processed (work fingerprint).
    pub events: u64,
}

/// The chaos configuration backing a discipline label.
///
/// # Panics
///
/// Panics on a label not in [`MODES`].
#[must_use]
pub fn config_for(mode: &str) -> ChaosConfig {
    match mode {
        "no-heal" => ChaosConfig::no_heal(),
        "heal" => ChaosConfig::heal_only(),
        "heal+degrade" => ChaosConfig::heal_degrade(),
        other => panic!("unknown chaos mode {other}"),
    }
}

/// The fault model at a failure-rate multiplier: MTBFs shrink by `rate`,
/// repair times stay physical.
#[must_use]
pub fn fault_model(rate: u32) -> FaultModel {
    let scale = f64::from(rate);
    FaultModel {
        tpu: Some(ClassRates::new(
            SimDuration::from_secs_f64(150.0 / scale),
            SimDuration::from_secs(45),
        )),
        node: Some(ClassRates::new(
            SimDuration::from_secs_f64(600.0 / scale),
            SimDuration::from_secs(60),
        )),
        link: Some(ClassRates::new(
            SimDuration::from_secs_f64(300.0 / scale),
            SimDuration::from_secs(8),
        )),
    }
}

fn build_chaos_world(mode: &'static str) -> World {
    let mut world = build_world(
        experiment_cluster(CHAOS_TPUS),
        SystemConfig::microedge_full(),
    );
    world.enable_chaos(config_for(mode));
    // Cycle the three trace-study models so recoveries sometimes land on a
    // TPU that must stream parameters in (a non-trivial swap-in phase).
    let apps = microedge_workloads::apps::CameraApp::trace_apps();
    for i in 0..CHAOS_STREAMS {
        let app = &apps[(i % apps.len() as u64) as usize];
        world
            .admit_stream(
                StreamSpec::builder(&format!("cam-{i:02}"), app.model().as_str())
                    .start_offset(SimDuration::from_millis(i * 7))
                    .build(),
            )
            .expect("chaos workload fits the healthy cluster");
    }
    world
}

/// Runs one cell of the study over `horizon` of simulated time.
#[must_use]
pub fn run_chaos_point(mode: &'static str, rate: u32, horizon: SimTime) -> ChaosPoint {
    let mut world = build_chaos_world(mode);
    let cluster = experiment_cluster(CHAOS_TPUS);
    let schedule = FaultSchedule::generate(&fault_model(rate), &cluster, horizon, CHAOS_SEED);
    world.inject_faults(&schedule);
    world.run_until(horizon);
    let results = world.finish(horizon);

    let window = SimDuration::from_nanos(horizon.as_nanos());
    let mut availability_sum = 0.0;
    let mut downtime_s = 0.0;
    let mut degraded_s = 0.0;
    let mut restarts = 0;
    for avail in results.availabilities().values() {
        availability_sum += avail.availability(window);
        downtime_s += avail.downtime.as_secs_f64();
        degraded_s += avail.degraded.as_secs_f64();
        restarts += avail.restarts;
    }
    let lineages = results.availabilities().len().max(1);
    let recovery = results.recovery();
    ChaosPoint {
        mode,
        rate,
        lost: results.lost_streams().len(),
        parked: results.parked_streams().len(),
        restarts,
        recoveries: recovery.count(),
        mttr_ms: recovery.mean_total_ms(),
        detection_ms: recovery.mean_ms(RecoveryPhase::Detection),
        rescheduling_ms: recovery.mean_ms(RecoveryPhase::Rescheduling),
        swap_in_ms: recovery.mean_ms(RecoveryPhase::SwapIn),
        availability: availability_sum / lineages as f64,
        downtime_s,
        degraded_s,
        frames_dropped: results.frames_dropped(),
        events: results.events_processed(),
    }
}

/// Runs the full study: every discipline at every failure rate, through
/// the deterministic parallel executor. Result order is fixed regardless
/// of worker count.
#[must_use]
pub fn run_chaos(horizon: SimTime) -> Vec<ChaosPoint> {
    let cells: Vec<(&'static str, u32)> = MODES
        .iter()
        .flat_map(|&mode| RATES.iter().map(move |&rate| (mode, rate)))
        .collect();
    microedge_sim::par::par_map(cells, |_, (mode, rate)| {
        run_chaos_point(mode, rate, horizon)
    })
}

/// The study horizon: 15 simulated minutes (3 under `--quick`).
#[must_use]
pub fn chaos_horizon(quick: bool) -> SimTime {
    if quick {
        SimTime::from_secs(180)
    } else {
        SimTime::from_secs(900)
    }
}

/// Renders the comparison table `repro --chaos` prints.
#[must_use]
pub fn render_chaos(points: &[ChaosPoint], horizon: SimTime) -> String {
    let mut table = microedge_metrics::report::Table::new(&[
        "discipline",
        "fault rate",
        "lost",
        "parked",
        "restarts",
        "recoveries",
        "MTTR (ms)",
        "detect (ms)",
        "resched (ms)",
        "swap (ms)",
        "availability",
        "downtime (s)",
        "degraded (s)",
    ]);
    for p in points {
        table.row_owned(vec![
            p.mode.to_owned(),
            format!("{}x", p.rate),
            p.lost.to_string(),
            p.parked.to_string(),
            p.restarts.to_string(),
            p.recoveries.to_string(),
            format!("{:.1}", p.mttr_ms),
            format!("{:.1}", p.detection_ms),
            format!("{:.1}", p.rescheduling_ms),
            format!("{:.1}", p.swap_in_ms),
            format!("{:.4}", p.availability),
            format!("{:.1}", p.downtime_s),
            format!("{:.1}", p.degraded_s),
        ]);
    }
    format!(
        "### Chaos / failure recovery — {} streams on {} TPUs, {:.0} min horizon, seed {}\n{table}",
        CHAOS_STREAMS,
        CHAOS_TPUS,
        horizon.as_secs_f64() / 60.0,
        CHAOS_SEED,
    )
}

/// Renders the `BENCH_chaos.json` document. Purely a function of the
/// simulated results — byte-identical across hosts, runs, and worker
/// counts.
#[must_use]
pub fn to_json(points: &[ChaosPoint], horizon: SimTime) -> String {
    let mut body = String::new();
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = write!(
            body,
            "\n    {{\"mode\": \"{}\", \"rate\": {}, \"lost\": {}, \"parked\": {}, \
             \"restarts\": {}, \"recoveries\": {}, \"mttr_ms\": {:.3}, \
             \"detection_ms\": {:.3}, \"rescheduling_ms\": {:.3}, \"swap_in_ms\": {:.3}, \
             \"availability\": {:.6}, \"downtime_s\": {:.3}, \"degraded_s\": {:.3}, \
             \"frames_dropped\": {}, \"events\": {}}}{comma}",
            p.mode,
            p.rate,
            p.lost,
            p.parked,
            p.restarts,
            p.recoveries,
            p.mttr_ms,
            p.detection_ms,
            p.rescheduling_ms,
            p.swap_in_ms,
            p.availability,
            p.downtime_s,
            p.degraded_s,
            p.frames_dropped,
            p.events,
        );
    }
    format!(
        "{{\n  \"benchmark\": \"chaos_failure_recovery\",\n  \"workload\": \"{streams} mixed-model streams, {tpus} TPUs, seed {seed}\",\n  \"horizon_s\": {horizon_s},\n  \"points\": [{body}\n  ]\n}}\n",
        streams = CHAOS_STREAMS,
        tpus = CHAOS_TPUS,
        seed = CHAOS_SEED,
        horizon_s = horizon.as_nanos() / 1_000_000_000,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healing_strictly_beats_no_heal_on_the_same_schedule() {
        let horizon = chaos_horizon(true);
        let no_heal = run_chaos_point("no-heal", 4, horizon);
        let degrade = run_chaos_point("heal+degrade", 4, horizon);
        assert!(
            no_heal.lost > 0,
            "the 4x schedule must displace someone: {no_heal:?}"
        );
        assert!(
            degrade.lost < no_heal.lost,
            "healing loses strictly fewer streams: {} vs {}",
            degrade.lost,
            no_heal.lost
        );
        assert!(
            degrade.downtime_s < no_heal.downtime_s,
            "healing accrues strictly less downtime: {} vs {}",
            degrade.downtime_s,
            no_heal.downtime_s
        );
        assert!(degrade.availability > no_heal.availability);
    }

    #[test]
    fn recovery_latency_decomposes_into_three_phases() {
        let horizon = chaos_horizon(true);
        let p = run_chaos_point("heal", 2, horizon);
        assert!(p.recoveries > 0, "{p:?}");
        // Detection is dominated by the 4 s heartbeat lease.
        assert!(p.detection_ms >= 1_000.0, "{p:?}");
        assert!(p.rescheduling_ms > 0.0, "{p:?}");
        assert!(p.swap_in_ms > 0.0, "{p:?}");
        let sum = p.detection_ms + p.rescheduling_ms + p.swap_in_ms;
        assert!(
            (sum - p.mttr_ms).abs() < 1.0,
            "phases sum to MTTR: {sum} vs {}",
            p.mttr_ms
        );
    }

    #[test]
    fn study_is_deterministic_and_json_stable() {
        let horizon = chaos_horizon(true);
        let a = to_json(&run_chaos(horizon), horizon);
        let b = to_json(&run_chaos(horizon), horizon);
        assert_eq!(a, b);
        assert!(a.contains("\"benchmark\": \"chaos_failure_recovery\""));
        assert!(a.contains("\"mode\": \"no-heal\""));
        assert!(a.contains("\"mode\": \"heal+degrade\""));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn table_lists_every_cell() {
        let horizon = chaos_horizon(true);
        let points = run_chaos(horizon);
        assert_eq!(points.len(), MODES.len() * RATES.len());
        let text = render_chaos(&points, horizon);
        for mode in MODES {
            assert!(text.contains(mode));
        }
        assert!(text.contains("Chaos / failure recovery"));
    }
}
