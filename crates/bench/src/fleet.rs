//! Federated fleet front-door study (`repro --fleet`).
//!
//! Two parts, both feeding `BENCH_fleet.json`:
//!
//! 1. **Placement throughput** — the fleet-level analogue of the
//!    admission sweep in [`crate::admission_overhead`]: stream→cluster
//!    placement over per-cluster capacity summaries, indexed
//!    ([`FrontDoor`], one range-restricted segment-tree descent per probe,
//!    O(log C)) head to head against the preserved linear fleet scan
//!    ([`reference::LinearFrontDoor`], O(C)), at 64 / 512 / 4096 clusters.
//!    The workload is *worst* for the scan: only the last cluster can
//!    host the pipeline and every other cluster is busy. Placements
//!    stream in from a rotation of home regions whose ring distance to
//!    the open cluster's region exceeds the spill radius, so every
//!    admission walks home, the spill rings, and the global fallback to
//!    the far end. Each size first cross-checks that both doors pick the
//!    identical cluster from every home — on the timed fleet and on a
//!    variant with a mid-fleet decoy whose max-free block matches but
//!    whose total headroom falls short (the continue-past-decoy path) —
//!    then times `place` best-of-rounds. Timing numbers ride
//!    `host_`-prefixed lines; the deterministic fields around them are
//!    byte-compared across `MICROEDGE_WORKERS` settings by CI.
//!
//! 2. **Fleet chaos** — whole-cluster failure tiers on a live
//!    [`ShardedWorld`]: kill 1 / 4 / 16 of the fleet's clusters at the
//!    same instant and let the front door drain the dead summaries,
//!    evacuate their streams, and re-place them on survivors at the next
//!    epoch barrier. Reports per-tier availability nines over the run
//!    window plus the evacuation/readmission counters — all derived from
//!    simulated time, so byte-identical at any worker count.

use std::fmt::Write as _;
use std::time::Instant;

use microedge_cluster::topology::ClusterBuilder;
use microedge_core::config::Features;
use microedge_core::fleet::{reference, ClusterId, ClusterSummary, FrontDoor, StreamDemand};
use microedge_core::runtime::StreamSpec;
use microedge_core::shard::{FleetReport, ShardedWorld};
use microedge_core::units::TpuUnits;
use microedge_metrics::recovery::availability_nines;
use microedge_metrics::report::Table;
use microedge_sim::time::{SimDuration, SimTime};

/// Regions the placement-sweep fleet is partitioned into (the chaos tier
/// sizes its own). The probed streams are homed in
/// [`SWEEP_HOME_ROTATION`] while the only fitting cluster sits at the
/// far end of the fleet, so every placement walks home, the spill rings,
/// and the global fallback.
pub const SWEEP_REGIONS: u32 = 8;

/// Spill radius of the sweep doors: one ring per side.
pub const SWEEP_SPILL: u32 = 1;

/// Home regions the timed placements rotate through: every region whose
/// ring distance to the open cluster's region (`SWEEP_REGIONS - 1`)
/// exceeds [`SWEEP_SPILL`] — the ring wraps, so regions 0 and 6 are
/// *adjacent* to region 7 and excluded. Rotating homes keeps the
/// measurement an admission stream rather than one address pattern
/// repeated into a warmed prefetcher, and every placement still travels
/// the full probe plan.
pub const SWEEP_HOME_ROTATION: [u32; 5] = [1, 2, 3, 4, 5];

/// The sweep's workload, also embedded in `BENCH_fleet.json`.
pub const SWEEP_WORKLOAD: &str = "near-full fleet: last cluster open, rest busy; 2-stage \
     pipelines streaming from a rotation of home regions, spill radius 1";

/// Cluster counts the placement sweep covers with the number of home-
/// rotation passes timed at each size (each pass is one `place` per home
/// in [`SWEEP_HOME_ROTATION`]; the linear side's cost grows with C, so
/// passes shrink as the fleet grows).
pub const FLEET_SWEEP: [(u32, u32); 3] = [(64, 20_000), (512, 5_000), (4096, 2_000)];

/// The probed demand: a two-stage pipeline (0.35 + 0.55 units). The
/// largest stage exceeds every busy cluster's best block, and the total
/// exceeds the cross-check decoy's headroom while the largest stage fits
/// its max-free block.
#[must_use]
pub fn sweep_demand() -> StreamDemand {
    StreamDemand::from_stages([TpuUnits::from_f64(0.35), TpuUnits::from_f64(0.55)])
}

/// Builds the sweep's adversarial summary vector for `clusters` clusters:
/// busy everywhere, the single open cluster last.
#[must_use]
pub fn sweep_summaries(clusters: u32) -> Vec<ClusterSummary> {
    assert!(clusters >= 2, "the sweep needs at least two clusters");
    (0..clusters)
        .map(|c| {
            if c == clusters - 1 {
                // The one cluster that can host the pipeline.
                ClusterSummary {
                    max_free: 1_000_000,
                    total_free: 4_000_000,
                    available_tpus: 4,
                    total_tpus: 4,
                    live_streams: 0,
                }
            } else {
                // Busy: best block below the largest stage.
                ClusterSummary {
                    max_free: 300_000,
                    total_free: 650_000,
                    available_tpus: 4,
                    total_tpus: 4,
                    live_streams: 12,
                }
            }
        })
        .collect()
}

/// [`sweep_summaries`] plus a decoy at the fleet midpoint whose max-free
/// block fits the largest stage but whose total headroom falls short of
/// the pipeline: the indexed door's probe stops there and must continue
/// past (cursor resume), the linear scan rejects it on the second
/// comparison. Used by the sweep's cross-check (fleets of ≥ 3 clusters;
/// the differential proptests churn this path far harder).
#[must_use]
pub fn sweep_decoy_summaries(clusters: u32) -> Vec<ClusterSummary> {
    let mut summaries = sweep_summaries(clusters);
    if clusters >= 3 {
        summaries[clusters as usize / 2] = ClusterSummary {
            max_free: 600_000,
            total_free: 600_000,
            available_tpus: 4,
            total_tpus: 4,
            live_streams: 10,
        };
    }
    summaries
}

/// One fleet size of the placement-throughput sweep.
#[derive(Debug, Clone)]
pub struct FleetSweepPoint {
    clusters: u32,
    iterations: u32,
    linear_ns: f64,
    indexed_ns: f64,
}

impl FleetSweepPoint {
    /// Fleet size in clusters.
    #[must_use]
    pub fn clusters(&self) -> u32 {
        self.clusters
    }

    /// Home-rotation passes timed per round at this size (placements per
    /// round = this × [`SWEEP_HOME_ROTATION`]'s length).
    #[must_use]
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Nanoseconds per placement for the linear fleet scan (pre).
    #[must_use]
    pub fn linear_ns(&self) -> f64 {
        self.linear_ns
    }

    /// Nanoseconds per placement for the indexed front door (post).
    #[must_use]
    pub fn indexed_ns(&self) -> f64 {
        self.indexed_ns
    }

    /// Indexed placement decisions per second.
    #[must_use]
    pub fn indexed_placements_per_sec(&self) -> f64 {
        1e9 / self.indexed_ns
    }

    /// Indexed-over-linear speedup at this size.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.linear_ns / self.indexed_ns
    }
}

/// The placement-throughput sweep result.
#[derive(Debug, Clone)]
pub struct FleetPerf {
    rounds: u32,
    points: Vec<FleetSweepPoint>,
}

impl FleetPerf {
    /// Per-size measurements, ascending cluster count.
    #[must_use]
    pub fn points(&self) -> &[FleetSweepPoint] {
        &self.points
    }

    /// Rounds each point was timed (best round reported).
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Indexed-over-linear speedup at a given fleet size, if measured.
    #[must_use]
    pub fn speedup_at(&self, clusters: u32) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.clusters == clusters)
            .map(FleetSweepPoint::speedup)
    }
}

/// Times `iterations` passes over the home rotation against the indexed
/// door and returns the best-of-`rounds` nanoseconds per placement.
fn time_indexed_ns(door: &FrontDoor, demand: StreamDemand, iters: u32, rounds: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        for _ in 0..iters {
            for home in SWEEP_HOME_ROTATION {
                std::hint::black_box(door.place(std::hint::black_box(home), demand));
            }
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    best * 1e9 / f64::from(iters) / SWEEP_HOME_ROTATION.len() as f64
}

/// [`time_indexed_ns`] for the linear reference door.
fn time_linear_ns(
    door: &reference::LinearFrontDoor,
    demand: StreamDemand,
    iters: u32,
    rounds: u32,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        for _ in 0..iters {
            for home in SWEEP_HOME_ROTATION {
                std::hint::black_box(door.place(std::hint::black_box(home), demand));
            }
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    best * 1e9 / f64::from(iters) / SWEEP_HOME_ROTATION.len() as f64
}

/// Runs the placement sweep over custom `(clusters, iterations)` sizes.
/// Each size first cross-checks that the indexed and linear doors pick
/// the identical cluster, then times both.
///
/// # Panics
///
/// Panics if `rounds` is zero or the doors ever disagree.
#[must_use]
pub fn run_fleet_perf_with(sizes: &[(u32, u32)], rounds: u32) -> FleetPerf {
    assert!(rounds > 0, "at least one round");
    let demand = sweep_demand();
    let points = sizes
        .iter()
        .map(|&(clusters, iterations)| {
            let summaries = sweep_summaries(clusters);
            let indexed = FrontDoor::new(summaries.clone(), SWEEP_REGIONS, SWEEP_SPILL);
            let linear = reference::LinearFrontDoor::new(summaries, SWEEP_REGIONS, SWEEP_SPILL);
            let decoyed = sweep_decoy_summaries(clusters);
            let indexed_decoy = FrontDoor::new(decoyed.clone(), SWEEP_REGIONS, SWEEP_SPILL);
            let linear_decoy = reference::LinearFrontDoor::new(decoyed, SWEEP_REGIONS, SWEEP_SPILL);
            for home in SWEEP_HOME_ROTATION {
                assert_eq!(
                    indexed.place(home, demand),
                    linear.place(home, demand),
                    "indexed and linear placements diverged at {clusters} clusters"
                );
                assert_eq!(
                    indexed_decoy.place(home, demand),
                    linear_decoy.place(home, demand),
                    "placements diverged past the decoy at {clusters} clusters"
                );
                assert_eq!(
                    indexed
                        .place(home, demand)
                        .expect("the open cluster hosts the pipeline")
                        .cluster,
                    ClusterId(clusters - 1),
                    "the sweep must traverse the whole fleet"
                );
            }
            FleetSweepPoint {
                clusters,
                iterations,
                linear_ns: time_linear_ns(&linear, demand, iterations, rounds),
                indexed_ns: time_indexed_ns(&indexed, demand, iterations, rounds),
            }
        })
        .collect();
    FleetPerf { rounds, points }
}

/// Runs the standard sweep ([`FLEET_SWEEP`]): 64 / 512 / 4096 clusters.
#[must_use]
pub fn run_fleet_perf(rounds: u32) -> FleetPerf {
    run_fleet_perf_with(&FLEET_SWEEP, rounds)
}

// ───────────────────────── fleet chaos tiers ─────────────────────────

/// TPUs per cluster in the chaos fleet.
pub const CHAOS_VRPIS: u32 = 4;
/// Streams admitted per cluster before the kill (each 0.35 units on a
/// one-TPU cluster, so a survivor has room for exactly one evacuee).
pub const CHAOS_STREAMS_PER_CLUSTER: u64 = 1;
/// The instant every cluster in the tier dies.
pub const CHAOS_KILL_AT_MS: u64 = 5_200;
/// Frames per camera (20 s at 15 FPS — the run outlives the kill, the
/// deadline outlives the restarted incarnations).
pub const CHAOS_FRAME_LIMIT: u64 = 300;

/// One whole-cluster-failure tier.
#[derive(Debug, Clone)]
pub struct FleetChaosTier {
    /// Clusters in the fleet.
    pub clusters: u32,
    /// Regions the fleet is partitioned into.
    pub regions: u32,
    /// Clusters killed at [`CHAOS_KILL_AT_MS`].
    pub killed: u32,
    /// The fleet-tier counters of the run.
    pub report: FleetReport,
    /// Mean availability across every admitted stream over the run window
    /// (unaffected streams count as fully available).
    pub availability: f64,
    /// [`availability`](Self::availability) expressed as nines.
    pub nines: f64,
    /// Summed downtime across evacuated lineages, in seconds.
    pub downtime_s: f64,
    /// Frames completed fleet-wide (deterministic work fingerprint).
    pub frames: u64,
    /// Simulation events processed.
    pub events: u64,
}

/// Runs one tier: a `clusters`-cluster fleet, one camera per cluster
/// admitted through the front door, then `killed` clusters (spread evenly
/// across the fleet) die at the same instant.
///
/// # Panics
///
/// Panics if `killed >= clusters` or the fleet shape rejects the
/// pre-kill admissions.
#[must_use]
pub fn run_fleet_chaos_tier(clusters: u32, regions: u32, killed: u32) -> FleetChaosTier {
    assert!(killed < clusters, "someone must survive");
    let fleet = (0..clusters).map(|_| ClusterBuilder::new().trpis(1).vrpis(CHAOS_VRPIS).build());
    let mut world = ShardedWorld::new(fleet, Features::all()).with_front_door(regions, 1);
    let total_streams = u64::from(clusters) * CHAOS_STREAMS_PER_CLUSTER;
    for c in 0..clusters {
        for i in 0..CHAOS_STREAMS_PER_CLUSTER {
            // One camera homed at each cluster's region: the pre-kill
            // fleet is evenly loaded, one stream per cluster.
            let region = c * regions / clusters;
            world.admit_global(
                SimTime::ZERO,
                region,
                StreamSpec::builder(&format!("cam-{c}-{i}"), "ssd-mobilenet-v2")
                    .frame_limit(CHAOS_FRAME_LIMIT)
                    .start_offset(SimDuration::from_millis(
                        (u64::from(c) * 997 + i * 131) % 1000,
                    ))
                    .build(),
            );
        }
    }
    let kill_at = SimTime::from_millis(CHAOS_KILL_AT_MS);
    let stride = clusters / killed.max(1);
    for k in 0..killed {
        world.kill_cluster(kill_at, ClusterId(k * stride));
    }
    let deadline = SimTime::from_secs(CHAOS_FRAME_LIMIT / 15 + 20);
    let (results, report) = world.run_fleet_to_completion(deadline);

    let window = SimDuration::from_nanos(results.end().as_nanos());
    let mut availability_sum = 0.0;
    let mut downtime_s = 0.0;
    for avail in results.availabilities().values() {
        availability_sum += avail.availability(window);
        downtime_s += avail.downtime.as_secs_f64();
    }
    // Streams that never lost their cluster have no availability entry:
    // they were serving the whole window.
    let untouched = total_streams - results.availabilities().len() as u64;
    let availability = (availability_sum + untouched as f64) / total_streams as f64;
    FleetChaosTier {
        clusters,
        regions,
        killed,
        report,
        availability,
        nines: availability_nines(availability),
        downtime_s,
        frames: results.reports().iter().map(|r| r.completed()).sum(),
        events: results.events_processed(),
    }
}

/// The chaos fleet shape: 32 clusters in 4 regions with kill tiers
/// 1 / 4 / 16 (quick: 12 clusters, kill 1 / 4).
#[must_use]
pub fn chaos_tiers(quick: bool) -> (u32, u32, &'static [u32]) {
    if quick {
        (12, 4, &[1, 4])
    } else {
        (32, 4, &[1, 4, 16])
    }
}

/// Runs every chaos tier for the given mode.
#[must_use]
pub fn run_fleet_chaos(quick: bool) -> Vec<FleetChaosTier> {
    let (clusters, regions, kills) = chaos_tiers(quick);
    kills
        .iter()
        .map(|&killed| run_fleet_chaos_tier(clusters, regions, killed))
        .collect()
}

// ───────────────────────── rendering ─────────────────────────

/// Renders the human tables `repro --fleet` prints.
#[must_use]
pub fn render_fleet(perf: &FleetPerf, tiers: &[FleetChaosTier]) -> String {
    let mut sweep = Table::new(&[
        "clusters",
        "linear (ns)",
        "indexed (ns)",
        "placements/s",
        "speedup",
    ]);
    for p in perf.points() {
        sweep.row_owned(vec![
            p.clusters().to_string(),
            format!("{:.0}", p.linear_ns()),
            format!("{:.0}", p.indexed_ns()),
            format!("{:.0}", p.indexed_placements_per_sec()),
            format!("{:.1}x", p.speedup()),
        ]);
    }
    let mut chaos = Table::new(&[
        "clusters",
        "killed",
        "evacuated",
        "readmitted",
        "unplaced",
        "availability",
        "nines",
        "downtime (s)",
    ]);
    for t in tiers {
        chaos.row_owned(vec![
            t.clusters.to_string(),
            t.killed.to_string(),
            t.report.evacuated.to_string(),
            t.report.readmitted.to_string(),
            t.report.unplaced.to_string(),
            format!("{:.6}", t.availability),
            format!("{:.2}", t.nines),
            format!("{:.1}", t.downtime_s),
        ]);
    }
    format!(
        "### Fleet front door — placement throughput ({workload})\n{sweep}\n\
         ### Fleet chaos — whole-cluster kill tiers ({streams} stream/cluster, kill at {at} ms)\n{chaos}",
        workload = SWEEP_WORKLOAD,
        streams = CHAOS_STREAMS_PER_CLUSTER,
        at = CHAOS_KILL_AT_MS,
    )
}

/// Renders the `BENCH_fleet.json` document. Host-dependent measurements
/// (timings, speedups) ride `host_`-prefixed lines; everything else is a
/// pure function of the simulated workload and byte-identical across
/// hosts, runs, and `MICROEDGE_WORKERS` settings.
#[must_use]
pub fn to_json(perf: &FleetPerf, tiers: &[FleetChaosTier]) -> String {
    let mut points = String::new();
    for (i, p) in perf.points().iter().enumerate() {
        let comma = if i + 1 < perf.points().len() { "," } else { "" };
        let _ = write!(
            points,
            "\n      {{\"clusters\": {clusters}, \"regions\": {regions}, \"iterations\": {iters},\n        \
             \"host_linear_ns\": {lns:.1}, \"host_indexed_ns\": {ins:.1}, \
             \"host_placements_per_sec\": {pps:.0}, \"host_speedup\": {speedup:.2}}}{comma}",
            clusters = p.clusters(),
            regions = SWEEP_REGIONS,
            iters = p.iterations(),
            lns = p.linear_ns(),
            ins = p.indexed_ns(),
            pps = p.indexed_placements_per_sec(),
            speedup = p.speedup(),
        );
    }
    let at_4096 = perf
        .speedup_at(4096)
        .map_or_else(|| "null".to_owned(), |s| format!("{s:.2}"));
    let mut chaos = String::new();
    for (i, t) in tiers.iter().enumerate() {
        let comma = if i + 1 < tiers.len() { "," } else { "" };
        let _ = write!(
            chaos,
            "\n      {{\"clusters\": {clusters}, \"regions\": {regions}, \"killed\": {killed}, \
             \"evacuated\": {evacuated}, \"readmitted\": {readmitted}, \"unplaced\": {unplaced}, \
             \"readmit_failures\": {failures}, \"placed_home\": {home}, \"placed_spill\": {spills}, \
             \"placed_fallback\": {fallbacks}, \"availability\": {availability:.6}, \
             \"nines\": {nines:.3}, \"downtime_s\": {downtime:.3}, \"frames\": {frames}, \
             \"events\": {events}}}{comma}",
            clusters = t.clusters,
            regions = t.regions,
            killed = t.killed,
            evacuated = t.report.evacuated,
            readmitted = t.report.readmitted,
            unplaced = t.report.unplaced,
            failures = t.report.readmit_failures,
            home = t.report.placement.home,
            spills = t.report.placement.spills,
            fallbacks = t.report.placement.fallbacks,
            availability = t.availability,
            nines = t.nines,
            downtime = t.downtime_s,
            frames = t.frames,
            events = t.events,
        );
    }
    format!(
        "{{\n  \"benchmark\": \"fleet_front_door\",\n  \"placement\": {{\n    \
         \"workload\": \"{workload}\",\n    \"rounds\": {rounds},\n    \
         \"host_speedup_at_4096\": {at_4096},\n    \"points\": [{points}\n    ]\n  }},\n  \
         \"chaos\": {{\n    \"workload\": \"{streams} stream per cluster, kill at {at} ms, \
         evacuees re-placed at the next epoch barrier\",\n    \"tiers\": [{chaos}\n    ]\n  }}\n}}\n",
        workload = SWEEP_WORKLOAD,
        rounds = perf.rounds(),
        streams = CHAOS_STREAMS_PER_CLUSTER,
        at = CHAOS_KILL_AT_MS,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip_host_lines(json: &str) -> String {
        json.lines()
            .filter(|l| !l.contains("\"host_"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn sweep_measures_every_size_and_finds_the_far_cluster() {
        let perf = run_fleet_perf_with(&[(64, 50), (256, 50)], 1);
        assert_eq!(perf.points().len(), 2);
        for p in perf.points() {
            assert!(p.linear_ns() > 0.0);
            assert!(p.indexed_ns() > 0.0);
            assert!(p.indexed_placements_per_sec() > 0.0);
        }
        assert!(perf.speedup_at(256).is_some());
        assert!(perf.speedup_at(4096).is_none());
    }

    #[test]
    fn indexed_door_wins_clearly_on_a_large_fleet() {
        // Debug-build timing: far below the release-build ≥50x criterion,
        // but one descent against a 4096-cluster walk is no contest.
        let perf = run_fleet_perf_with(&[(4096, 40)], 1);
        let speedup = perf.speedup_at(4096).unwrap();
        assert!(speedup > 2.0, "expected a clear win, got {speedup:.1}x");
    }

    #[test]
    fn chaos_tier_evacuates_and_recovers() {
        let t = run_fleet_chaos_tier(12, 4, 4);
        assert_eq!(t.report.clusters_killed, 4);
        // First-fit packs two 0.35-unit streams per one-TPU cluster, so
        // the evenly-strided kill lands on fully-loaded clusters.
        assert_eq!(t.report.evacuated, 8);
        assert_eq!(t.report.readmitted, 8);
        assert_eq!(t.report.unplaced, 0);
        assert!(t.availability < 1.0, "the kill cost some serving time");
        assert!(t.availability > 0.9, "but the fleet recovered");
        assert!(t.nines > 0.0 && t.nines < 9.0);
        assert!(t.downtime_s > 0.0);
    }

    #[test]
    fn deeper_kill_tiers_cost_more_availability() {
        let one = run_fleet_chaos_tier(12, 4, 1);
        let four = run_fleet_chaos_tier(12, 4, 4);
        assert!(four.availability < one.availability);
        assert!(four.nines < one.nines);
    }

    #[test]
    fn fleet_json_is_stable_and_host_lines_strip_clean() {
        let perf = run_fleet_perf_with(&[(64, 20)], 1);
        let tiers = run_fleet_chaos(true);
        let json = to_json(&perf, &tiers);
        assert!(json.contains("\"benchmark\": \"fleet_front_door\""));
        assert!(json.contains("\"host_speedup_at_4096\": null"));
        assert!(json.contains("\"nines\""));
        assert!(json.ends_with("}\n"));
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
        // Every timing figure sits on a strippable host_ line.
        let stripped = strip_host_lines(&json);
        assert!(!stripped.contains("_ns"));
        assert!(!stripped.contains("speedup"));
        // And the deterministic remainder is reproducible.
        let again = to_json(&run_fleet_perf_with(&[(64, 20)], 1), &run_fleet_chaos(true));
        assert_eq!(stripped, strip_host_lines(&again));
    }

    #[test]
    fn render_lists_both_studies() {
        let perf = run_fleet_perf_with(&[(64, 20)], 1);
        let tiers = vec![run_fleet_chaos_tier(12, 4, 1)];
        let text = render_fleet(&perf, &tiers);
        assert!(text.contains("placement throughput"));
        assert!(text.contains("whole-cluster kill tiers"));
        assert!(text.contains("nines"));
    }
}
