//! Minimal CSV export for the `repro` binary (`--csv <dir>`), so every
//! figure's series can be re-plotted outside this crate.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Quotes a field if it contains a comma, quote, or newline.
fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Writes one CSV file `<dir>/<name>.csv` with a header row.
///
/// # Errors
///
/// Propagates filesystem errors (directory creation, write).
pub fn write_csv(
    dir: &Path,
    name: &str,
    headers: &[&str],
    rows: &[Vec<String>],
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        debug_assert_eq!(row.len(), headers.len(), "ragged CSV row");
        out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    fs::write(&path, out)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_quoted_csv() {
        let dir = std::env::temp_dir().join(format!("microedge-csv-{}", std::process::id()));
        let path = write_csv(
            &dir,
            "test",
            &["a", "b"],
            &[
                vec!["1".into(), "plain".into()],
                vec!["2".into(), "with,comma".into()],
                vec!["3".into(), "with\"quote".into()],
            ],
        )
        .unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(
            text,
            "a,b\n1,plain\n2,\"with,comma\"\n3,\"with\"\"quote\"\n"
        );
        fs::remove_dir_all(dir).unwrap();
    }
}
