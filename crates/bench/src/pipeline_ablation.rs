//! Pipeline data-plane ablation (paper §8 extension).
//!
//! Quantifies the benefit of the same-TPU hop optimization for multi-model
//! pipelines: when consecutive stages of a pipeline land on one TPU, the
//! inter-stage frame transfer is host-local and free; without the
//! optimization every stage boundary crosses the cluster network.

use microedge_core::config::{DataPlaneConfig, Features};
use microedge_core::runtime::{StreamSpec, World};
use microedge_metrics::latency::Phase;
use microedge_metrics::report::{fmt_f64, Table};
use microedge_sim::time::SimTime;

use crate::runner::experiment_cluster;

/// Measured outcome of one pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    label: &'static str,
    transmission_ms: f64,
    total_ms: f64,
    met_fps: bool,
}

impl PipelineOutcome {
    /// Configuration label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Mean per-frame transmission cost.
    #[must_use]
    pub fn transmission_ms(&self) -> f64 {
        self.transmission_ms
    }

    /// Mean per-frame end-to-end latency.
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.total_ms
    }

    /// Whether the stream held its FPS SLO.
    #[must_use]
    pub fn met_fps(&self) -> bool {
        self.met_fps
    }
}

fn run(label: &'static str, local_hop: bool, frames: u64) -> PipelineOutcome {
    let mut world = World::new(experiment_cluster(1), Features::all());
    let mut dp = DataPlaneConfig::calibrated();
    dp.pipeline_local_hop = local_hop;
    world.set_data_plane(dp);
    let cam = world
        .admit_stream(
            StreamSpec::builder("pipeline", "unet-v2")
                .then("mobilenet-v1")
                .frame_limit(frames)
                .build(),
        )
        .expect("0.89 units fit one TPU");
    let results = world.run_to_completion(SimTime::from_secs(600));
    PipelineOutcome {
        label,
        transmission_ms: results.breakdowns().mean_ms(Phase::Transmission),
        total_ms: results.breakdowns().mean_total_ms(),
        met_fps: results.report(cam).expect("stream exists").met_fps(),
    }
}

/// Runs the two-stage UNet→MobileNet pipeline with and without the
/// optimization.
#[must_use]
pub fn run_pipeline_ablation(frames: u64) -> Vec<PipelineOutcome> {
    vec![
        run("same-TPU hop free (shipped)", true, frames),
        run("every hop crosses the network", false, frames),
    ]
}

/// Renders the ablation table.
#[must_use]
pub fn render_pipeline_ablation(frames: u64) -> String {
    let rows = run_pipeline_ablation(frames);
    let mut table = Table::new(&["data plane", "transmission (ms)", "total (ms)", "SLO"]);
    for r in &rows {
        table.row_owned(vec![
            r.label().to_owned(),
            fmt_f64(r.transmission_ms(), 2),
            fmt_f64(r.total_ms(), 2),
            if r.met_fps() { "met" } else { "VIOLATED" }.to_owned(),
        ]);
    }
    format!("### Ablation — pipeline same-TPU hop optimization (UNet→MobileNet, one TPU)\n{table}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimization_removes_the_second_hop() {
        let rows = run_pipeline_ablation(80);
        let with = &rows[0];
        let without = &rows[1];
        // Without the optimization the classification stage's 224×224
        // input crosses the network (≈ 4.9 ms extra per frame).
        let extra = without.transmission_ms() - with.transmission_ms();
        assert!((extra - 4.9).abs() < 0.3, "extra hop ≈ 4.9 ms, got {extra}");
        assert!((without.total_ms() - with.total_ms() - extra).abs() < 0.1);
        assert!(with.met_fps() && without.met_fps());
    }
}
