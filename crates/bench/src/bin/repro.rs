//! Regenerates every table and figure of the MicroEdge paper.
//!
//! ```text
//! repro [--fig1] [--fig5] [--table1] [--fig6] [--fig7a] [--fig7b] [--ablations]
//!       [--perf] [--chaos] [--scale] [--fleet] [--net] [--defrag] [--quick] [--csv <dir>]
//! ```
//!
//! With no selection flags, every paper artifact runs (`--perf`,
//! `--chaos`, `--scale`, `--fleet`, `--net`, and `--defrag` only run when asked
//! for). `--quick` shrinks
//! frame counts and trace length for a fast smoke pass; `--csv <dir>`
//! additionally dumps each selected artifact's series as CSV for external
//! plotting. `--perf` times the simulation kernel on the fixed reference
//! workload and the admission control plane on the 16–16 384-TPU sweep,
//! writing `BENCH_kernel.json` and `BENCH_admission.json` (to the `--csv`
//! directory if given, else the working directory); it also runs the
//! scale-out study. `--chaos` runs the fault-injection study (three
//! recovery disciplines × three failure rates on one deterministic fault
//! schedule) and writes `BENCH_chaos.json` the same way; its numbers are
//! simulated time, so the file is byte-identical across runs and
//! `MICROEDGE_WORKERS` settings. `--scale` sweeps the 1k→100k-stream
//! serial scale-out study plus the sharded 100k/1M-stream replay (tiny
//! fleets under `--quick`) and writes `BENCH_scale.json`; host
//! measurements (wall-clock, events/s, RSS, worker count) live on
//! dedicated `host_`-prefixed lines that CI strips before byte-comparing,
//! every other field is deterministic. `--fleet` runs the federated
//! front-door study — indexed vs linear-scan placement throughput at
//! 64/512/4096 clusters plus the whole-cluster kill tiers — and writes
//! `BENCH_fleet.json` under the same `host_` convention. `--net` runs
//! the lossy-transport study — the QoS classes across loss tiers
//! 0/0.1/1/10 % and a flapping-partition tier that drives the lease
//! detector into reconciled false positives — and writes
//! `BENCH_net.json`, again `host_`-strippable to a byte-stable core.
//! `--defrag` replays the 24 h churn trace with and without the online
//! defragmenter and writes `BENCH_defrag.json` (packing efficiency vs the
//! Martello-Toth L2 bound, admission rates, migration disruption).
//!
//! The artifacts are independent, so they run concurrently through the
//! deterministic executor ([`microedge_sim::par`]); each job renders its
//! whole stdout contribution into a `String`, which is printed in the
//! fixed artifact order afterwards — the output is byte-identical to a
//! serial run. The perf harness is the exception: it is a timing
//! measurement and always runs alone, after everything else.

use std::fmt::Write as _;
use std::path::PathBuf;

use microedge_bench::csv::write_csv;
use microedge_bench::runner::SystemConfig;
use microedge_bench::{
    admission_overhead, cost, diff_detector, fig1, latency_breakdown, packing, pipeline_ablation,
    scalability, trace_study,
};
use microedge_cluster::cost::CostModel;
use microedge_sim::time::SimDuration;
use microedge_workloads::apps::CameraApp;
use microedge_workloads::trace::{synthesize, TraceConfig};

struct Options {
    fig1: bool,
    fig5: bool,
    table1: bool,
    fig6: bool,
    fig7a: bool,
    fig7b: bool,
    ablations: bool,
    perf: bool,
    chaos: bool,
    scale: bool,
    fleet: bool,
    net: bool,
    defrag: bool,
    quick: bool,
    csv: Option<PathBuf>,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut csv = None;
    let mut perf = false;
    let mut chaos = false;
    let mut scale = false;
    let mut fleet = false;
    let mut net = false;
    let mut defrag = false;
    let mut selections: Vec<String> = Vec::new();
    let known = [
        "--fig1",
        "--fig5",
        "--table1",
        "--fig6",
        "--fig7a",
        "--fig7b",
        "--ablations",
    ];
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--perf" => perf = true,
            "--chaos" => chaos = true,
            "--scale" => scale = true,
            "--fleet" => fleet = true,
            "--net" => net = true,
            "--defrag" => defrag = true,
            "--csv" => match iter.next() {
                Some(dir) => csv = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--csv requires a directory argument");
                    std::process::exit(2);
                }
            },
            flag if known.contains(&flag) => selections.push(arg),
            other => {
                eprintln!(
                    "unknown flag {other}; known: {} --perf --chaos --scale --fleet --net --defrag --quick --csv <dir>",
                    known.join(" ")
                );
                std::process::exit(2);
            }
        }
    }
    let has = |flag: &str| selections.iter().any(|a| a == flag);
    // `--perf` / `--chaos` / `--scale` alone mean "just that study", not
    // "everything".
    let none_selected =
        selections.is_empty() && !perf && !chaos && !scale && !fleet && !net && !defrag;
    Options {
        fig1: none_selected || has("--fig1"),
        fig5: none_selected || has("--fig5"),
        table1: none_selected || has("--table1"),
        fig6: none_selected || has("--fig6"),
        fig7a: none_selected || has("--fig7a"),
        fig7b: none_selected || has("--fig7b"),
        ablations: none_selected || has("--ablations"),
        perf,
        chaos,
        scale,
        fleet,
        net,
        defrag,
        quick,
        csv,
    }
}

fn dump(csv: Option<&PathBuf>, name: &str, headers: &[&str], rows: &[Vec<String>]) {
    if let Some(dir) = csv {
        match write_csv(dir, name, headers, rows) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {name}.csv: {e}"),
        }
    }
}

/// One artifact: renders its stdout contribution as a `String`. CSV side
/// files are written from inside the job (their names never collide across
/// artifacts), so jobs can run concurrently. The `bool` marks artifacts
/// containing a host-clock measurement (Fig. 7a's admission
/// microbenchmark): those run alone after the parallel batch so concurrent
/// load cannot contaminate the measured value — which would also make the
/// output differ from a serial run.
type Job<'a> = Box<dyn Fn() -> String + Send + Sync + 'a>;

fn main() {
    let opts = parse_args();
    let frames: u64 = if opts.quick { 150 } else { 1000 };
    let quick = opts.quick;
    let csv = opts.csv.as_ref();

    println!("MicroEdge reproduction — paper artifacts\n");

    let mut jobs: Vec<(bool, Job)> = Vec::new();

    if opts.fig1 {
        jobs.push((
            false,
            Box::new(move || {
                let mut out = String::new();
                let _ = writeln!(out, "{}", fig1::render_fig1());
                let rows: Vec<Vec<String>> = fig1::fig1_rows()
                    .iter()
                    .map(|r| {
                        vec![
                            r.model().to_owned(),
                            format!("{:.1}", r.inference_ms()),
                            format!("{:.1}", r.fps_for_full_util()),
                            r.sustains_15fps().to_string(),
                        ]
                    })
                    .collect();
                dump(
                    csv,
                    "fig1",
                    &[
                        "model",
                        "inference_ms",
                        "fps_for_full_util",
                        "sustains_15fps",
                    ],
                    &rows,
                );
                out
            }),
        ));
    }

    if opts.fig5 {
        jobs.push((
            false,
            Box::new(move || {
                let mut out = String::new();
                for (app, configs) in [
                    (
                        CameraApp::coral_pie(),
                        SystemConfig::fig5_configs().to_vec(),
                    ),
                    (
                        CameraApp::bodypix(),
                        vec![SystemConfig::Baseline, SystemConfig::microedge_full()],
                    ),
                ] {
                    let points = scalability::fig5_sweep(&app, &configs, 6, frames);
                    let _ = writeln!(out, "{}", scalability::render_sweep(&app, &points));
                    let rows: Vec<Vec<String>> = points
                        .iter()
                        .map(|p| {
                            vec![
                                p.config().label(),
                                p.tpus().to_string(),
                                p.max_cameras().to_string(),
                                format!("{:.4}", p.avg_utilization()),
                                p.all_slo_met().to_string(),
                            ]
                        })
                        .collect();
                    dump(
                        csv,
                        &format!("fig5_{}", app.name()),
                        &[
                            "config",
                            "tpus",
                            "max_cameras",
                            "avg_utilization",
                            "slo_met",
                        ],
                        &rows,
                    );
                }
                out
            }),
        ));
    }

    if opts.table1 {
        jobs.push((
            false,
            Box::new(move || {
                let mut out = String::new();
                let _ = writeln!(out, "{}", cost::render_table1(&CameraApp::coral_pie(), 17));
                let rows: Vec<Vec<String>> =
                    cost::table1_rows(&CameraApp::coral_pie(), 17, CostModel::paper_prices())
                        .iter()
                        .map(|r| {
                            vec![
                                r.config().label(),
                                r.tpus().to_string(),
                                r.rpis().to_string(),
                                r.total_usd().to_string(),
                            ]
                        })
                        .collect();
                dump(
                    csv,
                    "table1",
                    &["config", "tpus", "rpis", "total_usd"],
                    &rows,
                );
                out
            }),
        ));
    }

    if opts.fig6 {
        jobs.push((false, Box::new(move || {
            let mut out = String::new();
            let mut trace_cfg = TraceConfig::microedge_downsized();
            if quick {
                trace_cfg.duration = SimDuration::from_secs(5 * 60);
            }
            let trace = synthesize(&trace_cfg, 42);
            let outcomes = trace_study::run_fig6(&trace, &trace_cfg, 6);
            let _ = writeln!(out, "{}", trace_study::render_fig6(&outcomes));
            if !quick {
                // The paper (§6.3): "to fully understand the benefits of
                // co-compilation and workload partitioning, we would need to
                // run a much larger configuration of the workload on a larger
                // cluster. Such a study would show a stronger separation".
                let scaled_cfg = trace_cfg.scaled(2.5);
                let scaled_trace = synthesize(&scaled_cfg, 43);
                let scaled = trace_study::run_fig6(&scaled_trace, &scaled_cfg, 12);
                let _ = writeln!(
                    out,
                    "{}",
                    trace_study::render_fig6_summary(
                        "Fig. 6 at 2.5× workload on 12 TPUs (the paper's predicted stronger separation)",
                        &scaled,
                    )
                );
            }
            type SeriesFn = fn(&trace_study::TraceOutcome) -> &[f64];
            let exports: [(&str, SeriesFn); 2] = [
                ("fig6a_utilization", |o| o.windowed_utilization()),
                ("fig6b_served", |o| o.served_series()),
            ];
            for (name, series) in exports {
                let minutes = outcomes.iter().map(|o| series(o).len()).max().unwrap_or(0);
                let mut headers: Vec<String> = vec!["minute".to_owned()];
                headers.extend(outcomes.iter().map(|o| o.config().label()));
                let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
                let rows: Vec<Vec<String>> = (0..minutes)
                    .map(|m| {
                        let mut row = vec![m.to_string()];
                        row.extend(
                            outcomes
                                .iter()
                                .map(|o| format!("{:.4}", series(o).get(m).copied().unwrap_or(0.0))),
                        );
                        row
                    })
                    .collect();
                dump(csv, name, &header_refs, &rows);
            }
            out
        })));
    }

    if opts.fig7a {
        jobs.push((
            true,
            Box::new(move || {
                let mut out = String::new();
                let samples = if quick { 500 } else { 5000 };
                let _ = writeln!(out, "{}", admission_overhead::render_fig7a(samples, 42));
                let rows: Vec<Vec<String>> = admission_overhead::run_overhead(samples, 42)
                    .iter()
                    .map(|r| {
                        vec![
                            r.label().to_owned(),
                            format!("{:.1}", r.mean_ms()),
                            format!("{:.1}", r.std_ms()),
                            format!("{:.2}", r.overhead_pct()),
                        ]
                    })
                    .collect();
                dump(
                    csv,
                    "fig7a",
                    &["config", "mean_ms", "std_ms", "overhead_pct"],
                    &rows,
                );
                out
            }),
        ));
    }

    if opts.fig7b {
        jobs.push((
            false,
            Box::new(move || {
                let mut out = String::new();
                let _ = writeln!(out, "{}", latency_breakdown::render_fig7b(frames.min(300)));
                let rows: Vec<Vec<String>> = [
                    latency_breakdown::measure_breakdown(SystemConfig::Baseline, frames.min(300)),
                    latency_breakdown::measure_breakdown(
                        SystemConfig::microedge_full(),
                        frames.min(300),
                    ),
                    latency_breakdown::serverless_row(),
                ]
                .iter()
                .map(|r| {
                    let p = r.phases_ms();
                    vec![
                        r.label().to_owned(),
                        format!("{:.2}", p[0]),
                        format!("{:.2}", p[1]),
                        format!("{:.2}", p[2]),
                        format!("{:.2}", p[3]),
                        format!("{:.2}", r.total_ms()),
                    ]
                })
                .collect();
                dump(
                    csv,
                    "fig7b",
                    &[
                        "design",
                        "pre_ms",
                        "transmission_ms",
                        "inference_ms",
                        "post_ms",
                        "total_ms",
                    ],
                    &rows,
                );
                out
            }),
        ));
    }

    if opts.ablations {
        jobs.push((
            false,
            Box::new(move || {
                let mut out = String::new();
                let _ = writeln!(out, "{}", packing::render_packing(60, 6, 10));
                let _ = writeln!(
                    out,
                    "{}",
                    pipeline_ablation::render_pipeline_ablation(frames.min(300))
                );
                let _ = writeln!(
                    out,
                    "{}",
                    diff_detector::render_diff_detector(6, frames.min(300))
                );
                let _ = writeln!(
                    out,
                    "{}",
                    microedge_bench::tail_latency::render_tail_latency(6, frames.min(300))
                );
                out
            }),
        ));
    }

    let mut chunks: Vec<Option<String>> = jobs.iter().map(|_| None).collect();
    let mut parallel: Vec<(usize, Job)> = Vec::new();
    let mut alone: Vec<(usize, Job)> = Vec::new();
    for (i, (timing, job)) in jobs.into_iter().enumerate() {
        if timing {
            alone.push((i, job));
        } else {
            parallel.push((i, job));
        }
    }
    for (i, rendered) in microedge_sim::par::par_map(parallel, |_, (i, job)| (i, job())) {
        chunks[i] = Some(rendered);
    }
    for (i, job) in alone {
        chunks[i] = Some(job());
    }
    for chunk in chunks.into_iter().flatten() {
        print!("{chunk}");
    }

    let dir = opts.csv.clone().unwrap_or_else(|| PathBuf::from("."));
    let write_bench = |name: &str, body: String| {
        let path = dir.join(name);
        match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, body)) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    };

    if opts.chaos {
        let horizon = microedge_bench::chaos::chaos_horizon(opts.quick);
        let points = microedge_bench::chaos::run_chaos(horizon);
        println!("{}", microedge_bench::chaos::render_chaos(&points, horizon));
        write_bench(
            "BENCH_chaos.json",
            microedge_bench::chaos::to_json(&points, horizon),
        );
    }

    if opts.perf {
        let rounds = if opts.quick { 1 } else { 3 };
        let result = microedge_bench::perf::run_kernel_perf(rounds);
        println!("{}", result.render_summary());
        write_bench("BENCH_kernel.json", result.to_json());

        let admission = admission_overhead::run_admission_perf(rounds);
        println!("{}", scalability::render_admission_scalability(&admission));
        write_bench("BENCH_admission.json", admission.to_json());
    }

    if opts.scale || opts.perf {
        let study = microedge_bench::scale::run_scale(opts.quick);
        println!("{}", study.render_summary());
        let sharded = microedge_bench::scale_sharded::run_scale_sharded(opts.quick);
        println!("{}", sharded.render_summary());
        write_bench(
            "BENCH_scale.json",
            microedge_bench::scale_sharded::render_bench_json(&study, &sharded),
        );
    }

    if opts.fleet {
        use microedge_bench::fleet;
        // The chaos tiers are pure simulated time; the placement sweep is
        // a host-clock measurement, so it runs here, after everything
        // parallel has finished.
        let tiers = fleet::run_fleet_chaos(opts.quick);
        let perf = if opts.quick {
            fleet::run_fleet_perf_with(&[(64, 2_000), (512, 500), (4096, 200)], 1)
        } else {
            fleet::run_fleet_perf(3)
        };
        println!("{}", fleet::render_fleet(&perf, &tiers));
        write_bench("BENCH_fleet.json", fleet::to_json(&perf, &tiers));
    }

    if opts.net {
        use microedge_bench::netchaos;
        let tiers = netchaos::run_net_chaos(opts.quick);
        println!("{}", netchaos::render_net_chaos(&tiers));
        write_bench("BENCH_net.json", netchaos::to_json(&tiers));
    }

    if opts.defrag {
        use microedge_bench::defrag;
        let study = defrag::run_defrag_study(opts.quick);
        println!("{}", defrag::render_defrag(&study));
        write_bench("BENCH_defrag.json", defrag::to_json(&study));
    }
}
