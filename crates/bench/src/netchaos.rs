//! Network-chaos study (`repro --net`), feeding `BENCH_net.json`.
//!
//! One fleet — [`NET_CLUSTERS`] clusters in [`NET_REGIONS`] regions behind
//! the front door with the lossy-transport plane armed — replayed across
//! five link-condition tiers:
//!
//! * **loss tiers** `0 / 0.1 / 1 / 10 %`: every uplink degraded from the
//!   first instant ([`DegradedLink::lossy`]: 20 ms latency, 10 ms jitter,
//!   5 % reorder) at the tier's loss rate. Per-message loss draws compare
//!   one shared hash against the tier's threshold, so a higher tier drops
//!   a strict superset of a lower tier's messages — goodput and
//!   availability degrade monotonically by construction, and the committed
//!   artifact shows it.
//! * **flapping partitions**: staggered square-wave partitions longer than
//!   the detector's lease, so heartbeat silence produces *gray failures* —
//!   false-positive suspicions of perfectly alive clusters — which the
//!   resumed heartbeats then reconcile, stream for stream.
//!
//! Each tier reports the per-class conservation ledgers (`delivered +
//! dropped + gave_up == sent`, enforced), export goodput and frame-drop
//! rate, control retransmit overhead, detector false-positive counts and
//! rates, and suspicion-derived availability nines. Everything but the
//! `host_`-prefixed wall-clock lines is simulated time: `BENCH_net.json`
//! is byte-identical across hosts, runs, and `MICROEDGE_WORKERS` settings
//! once `host_` lines are stripped.

use std::fmt::Write as _;
use std::time::Instant;

use microedge_cluster::topology::ClusterBuilder;
use microedge_core::config::Features;
use microedge_core::net::{DegradedLink, LinkSchedule, LinkState, NetConfig, NetReport};
use microedge_core::runtime::StreamSpec;
use microedge_core::shard::{FleetReport, ShardedWorld};
use microedge_metrics::recovery::availability_nines;
use microedge_metrics::report::Table;
use microedge_sim::time::{SimDuration, SimTime};

/// Clusters in the chaos fleet (one uplink each).
pub const NET_CLUSTERS: u32 = 8;
/// Regions the fleet is partitioned into.
pub const NET_REGIONS: u32 = 2;
/// Pre-admitted exporting cameras (one per cluster, admitted at t = 0
/// through the front door).
pub const NET_EXPORT_STREAMS: u32 = NET_CLUSTERS;
/// Mid-run admissions whose deploy commands ride the control channel.
pub const NET_LATE_ADMITS: u32 = 6;
/// The loss tiers, parts per million: 0 %, 0.1 %, 1 %, 10 %.
pub const LOSS_TIERS_PPM: [u32; 4] = [0, 1_000, 10_000, 100_000];

/// First partition onset of the flapping tier.
pub const FLAP_FIRST: SimDuration = SimDuration::from_secs(4);
/// Down-phase length — longer than the 4 s lease, so every full window
/// starves the detector into a false positive.
pub const FLAP_DOWN: SimDuration = SimDuration::from_secs(6);
/// Up-phase length — long enough for reconciliation and a summary
/// refresh before the next window.
pub const FLAP_UP: SimDuration = SimDuration::from_secs(6);
/// Per-link onset stagger, so the fleet never loses every uplink at once.
pub const FLAP_STAGGER: SimDuration = SimDuration::from_millis(1_500);
/// Instant the flapping stops (every link healed), leaving the tail of
/// the run for the reconciler to close every suspicion span.
pub const FLAP_UNTIL: SimTime = SimTime::from_secs(18);

/// One link-condition tier of the study.
#[derive(Debug, Clone)]
pub struct NetChaosTier {
    /// Tier label (`"0%"` … `"10%"`, `"flapping"`).
    pub label: String,
    /// Loss rate of the degraded links, ppm (0 for the flapping tier:
    /// its links alternate healthy/partitioned instead).
    pub loss_ppm: u32,
    /// Fleet-tier counters of the run.
    pub report: FleetReport,
    /// Network-tier counters of the run.
    pub net: NetReport,
    /// Frames completed fleet-wide (deterministic work fingerprint).
    pub frames: u64,
    /// Simulation events processed.
    pub events: u64,
    /// Simulated run window the availability is measured over.
    pub window: SimDuration,
    /// Host wall-clock seconds for the tier (non-deterministic).
    pub host_wall_s: f64,
}

impl NetChaosTier {
    /// Fraction of frame exports that reached the aggregation peer.
    #[must_use]
    pub fn goodput(&self) -> f64 {
        self.net.stats.telemetry.delivery_fraction()
    }

    /// Fraction of frame exports lost on the wire.
    #[must_use]
    pub fn drop_rate(&self) -> f64 {
        1.0 - self.goodput()
    }

    /// Detector false positives per heartbeat sent.
    #[must_use]
    pub fn fp_rate(&self) -> f64 {
        self.net
            .detection
            .false_positive_rate(self.net.stats.heartbeat.sent)
    }

    /// Control retransmissions per logical control message.
    #[must_use]
    pub fn retransmit_overhead(&self) -> f64 {
        self.net.stats.control.retransmit_overhead()
    }

    /// Mean fraction of the window each cluster was *not* under
    /// suspicion.
    #[must_use]
    pub fn availability(&self) -> f64 {
        self.net.availability(self.window)
    }

    /// [`availability`](Self::availability) expressed as nines.
    #[must_use]
    pub fn nines(&self) -> f64 {
        availability_nines(self.availability())
    }
}

/// Frame budget of the pre-admitted exporting cameras (15 FPS).
#[must_use]
pub fn export_frames(quick: bool) -> u64 {
    if quick {
        150 // 10 s
    } else {
        360 // 24 s — outlives the flapping, so every suspicion reconciles
    }
}

/// A schedule degrading every uplink from t = 0 at `loss_ppm`.
#[must_use]
pub fn loss_schedule(loss_ppm: u32) -> LinkSchedule {
    if loss_ppm == 0 {
        return LinkSchedule::scripted(Vec::new());
    }
    LinkSchedule::scripted(
        (0..NET_CLUSTERS)
            .map(|link| {
                (
                    SimTime::ZERO,
                    link,
                    LinkState::Degraded(DegradedLink::lossy(loss_ppm)),
                )
            })
            .collect(),
    )
}

/// The staggered square-wave partition schedule of the flapping tier.
#[must_use]
pub fn flapping_schedule(quick: bool) -> LinkSchedule {
    let until = if quick {
        // The quick workload drains around 11 s; stop flapping early
        // enough that the runs stays comparable, not reconciled.
        SimTime::from_secs(10)
    } else {
        FLAP_UNTIL
    };
    LinkSchedule::flapping(
        NET_CLUSTERS,
        SimTime::ZERO + FLAP_FIRST,
        FLAP_DOWN,
        FLAP_UP,
        FLAP_STAGGER,
        until,
    )
}

/// Runs one tier: the standard fleet and workload under `schedule`, with
/// an explicit worker count (callers pin it for determinism checks; the
/// `repro` path passes the ambient `MICROEDGE_WORKERS` resolution).
///
/// # Panics
///
/// Panics if any class's conservation ledger fails to balance — the
/// invariant the whole transport is built around.
#[must_use]
pub fn run_net_tier(
    label: &str,
    loss_ppm: u32,
    schedule: LinkSchedule,
    quick: bool,
    workers: usize,
) -> NetChaosTier {
    let fleet = (0..NET_CLUSTERS).map(|_| ClusterBuilder::new().trpis(1).vrpis(4).build());
    let mut world = ShardedWorld::new(fleet, Features::all())
        .with_front_door(NET_REGIONS, 1)
        .with_network(NetConfig::new(schedule));
    let frames = export_frames(quick);
    for c in 0..NET_EXPORT_STREAMS {
        world.admit_global(
            SimTime::ZERO,
            c * NET_REGIONS / NET_CLUSTERS,
            StreamSpec::builder(&format!("cam-{c}"), "ssd-mobilenet-v2")
                .frame_limit(frames)
                .export_completions(true)
                .start_offset(SimDuration::from_millis(u64::from(c) * 997 % 1000))
                .build(),
        );
    }
    // Mid-run admissions: their deploy commands ride the (lossy) control
    // channel — delayed under degradation, retransmitted across flaps.
    for i in 0..NET_LATE_ADMITS {
        world.admit_global(
            SimTime::from_millis(2_000 + u64::from(i) * 400),
            i % NET_REGIONS,
            StreamSpec::builder(&format!("late-{i}"), "ssd-mobilenet-v2")
                .frame_limit(frames / 2)
                .build(),
        );
    }
    let start = Instant::now();
    let (results, report, net) = world.run_net_with_workers(SimTime::from_secs(60), workers);
    let host_wall_s = start.elapsed().as_secs_f64();
    assert_eq!(
        net.stats.conservation_violations(),
        0,
        "conservation violated in tier {label}: {:?}",
        net.stats
    );
    NetChaosTier {
        label: label.to_owned(),
        loss_ppm,
        report,
        frames: results.reports().iter().map(|r| r.completed()).sum(),
        events: results.events_processed(),
        window: SimDuration::from_nanos(results.end().as_nanos()),
        net,
        host_wall_s,
    }
}

/// Runs every tier: the four loss tiers, then the flapping-partition tier.
#[must_use]
pub fn run_net_chaos(quick: bool) -> Vec<NetChaosTier> {
    let workers = microedge_sim::par::worker_count(NET_CLUSTERS as usize);
    let mut tiers: Vec<NetChaosTier> = LOSS_TIERS_PPM
        .iter()
        .map(|&ppm| {
            let label = format!("{}%", ppm as f64 / 10_000.0);
            run_net_tier(&label, ppm, loss_schedule(ppm), quick, workers)
        })
        .collect();
    tiers.push(run_net_tier(
        "flapping",
        0,
        flapping_schedule(quick),
        quick,
        workers,
    ));
    tiers
}

// ───────────────────────── rendering ─────────────────────────

/// Renders the human table `repro --net` prints.
#[must_use]
pub fn render_net_chaos(tiers: &[NetChaosTier]) -> String {
    let mut table = Table::new(&[
        "tier",
        "goodput",
        "drop rate",
        "rtx/msg",
        "gave up",
        "false pos",
        "reconciled",
        "availability",
        "nines",
    ]);
    for t in tiers {
        table.row_owned(vec![
            t.label.clone(),
            format!("{:.4}", t.goodput()),
            format!("{:.4}", t.drop_rate()),
            format!("{:.3}", t.retransmit_overhead()),
            t.net.stats.control.gave_up.to_string(),
            t.net.detection.false_positives.to_string(),
            format!(
                "{}/{}",
                t.net.detection.reconciled_streams, t.net.detection.suspected_streams
            ),
            format!("{:.6}", t.availability()),
            format!("{:.2}", t.nines()),
        ]);
    }
    format!(
        "### Network chaos — QoS classes under degraded links \
         ({clusters} clusters, {exports} exporting cameras, {late} mid-run admissions)\n{table}",
        clusters = NET_CLUSTERS,
        exports = NET_EXPORT_STREAMS,
        late = NET_LATE_ADMITS,
    )
}

/// Renders the `BENCH_net.json` document. Wall-clock measurements ride
/// `host_`-prefixed lines; every other field is a pure function of the
/// simulated workload.
#[must_use]
pub fn to_json(tiers: &[NetChaosTier]) -> String {
    let mut body = String::new();
    for (i, t) in tiers.iter().enumerate() {
        let comma = if i + 1 < tiers.len() { "," } else { "" };
        let s = &t.net.stats;
        let d = &t.net.detection;
        let _ = write!(
            body,
            "\n      {{\"tier\": \"{label}\", \"loss_ppm\": {ppm},\n        \
             \"control\": {{\"sent\": {cs}, \"delivered\": {cd}, \"dropped\": {cdr}, \
             \"gave_up\": {cg}, \"retransmits\": {crt}, \"shed\": {csh}}},\n        \
             \"heartbeat\": {{\"sent\": {hs}, \"delivered\": {hd}, \"dropped\": {hdr}}},\n        \
             \"telemetry\": {{\"sent\": {ts}, \"delivered\": {td}, \"dropped\": {tdr}, \
             \"reordered\": {tre}}},\n        \
             \"goodput\": {goodput:.6}, \"frame_drop_rate\": {drops:.6}, \
             \"retransmit_overhead\": {rtx:.6},\n        \
             \"detections\": {det}, \"false_positives\": {fp}, \"fp_rate\": {fpr:.6}, \
             \"reconciliations\": {rec}, \"suspected_streams\": {sus}, \
             \"reconciled_streams\": {recs},\n        \
             \"stale_drains\": {sdr}, \"stale_restores\": {sre}, \
             \"admit_rejected\": {arej}, \"conservation_violations\": {viol},\n        \
             \"availability\": {avail:.6}, \"nines\": {nines:.3}, \
             \"frames\": {frames}, \"events\": {events},\n        \
             \"host_wall_s\": {wall:.3}}}{comma}",
            label = t.label,
            ppm = t.loss_ppm,
            cs = s.control.sent,
            cd = s.control.delivered,
            cdr = s.control.dropped,
            cg = s.control.gave_up,
            crt = s.control.retransmits,
            csh = s.control.shed,
            hs = s.heartbeat.sent,
            hd = s.heartbeat.delivered,
            hdr = s.heartbeat.dropped,
            ts = s.telemetry.sent,
            td = s.telemetry.delivered,
            tdr = s.telemetry.dropped,
            tre = s.telemetry.reordered,
            goodput = t.goodput(),
            drops = t.drop_rate(),
            rtx = t.retransmit_overhead(),
            det = d.detections,
            fp = d.false_positives,
            fpr = t.fp_rate(),
            rec = d.reconciliations,
            sus = d.suspected_streams,
            recs = d.reconciled_streams,
            sdr = t.net.stale_drains,
            sre = t.net.stale_restores,
            arej = t.report.admit_rejected,
            viol = s.conservation_violations(),
            avail = t.availability(),
            nines = t.nines(),
            frames = t.frames,
            events = t.events,
            wall = t.host_wall_s,
        );
    }
    format!(
        "{{\n  \"benchmark\": \"net_chaos\",\n  \
         \"workload\": \"{clusters} clusters / {regions} regions, {exports} exporting cameras \
         + {late} mid-run admissions; loss tiers {tiers:?} ppm + flapping partitions \
         (down {down} s > lease)\",\n  \"tiers\": [{body}\n  ]\n}}\n",
        clusters = NET_CLUSTERS,
        regions = NET_REGIONS,
        exports = NET_EXPORT_STREAMS,
        late = NET_LATE_ADMITS,
        tiers = LOSS_TIERS_PPM,
        down = FLAP_DOWN.as_secs_f64(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip_host_lines(json: &str) -> String {
        json.lines()
            .filter(|l| !l.contains("\"host_"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn loss_tiers_degrade_monotonically() {
        let zero = run_net_tier("0%", 0, loss_schedule(0), true, 2);
        let ten = run_net_tier("10%", 100_000, loss_schedule(100_000), true, 2);
        assert!((zero.goodput() - 1.0).abs() < f64::EPSILON);
        assert_eq!(zero.net.detection.false_positives, 0);
        assert!(ten.goodput() < 1.0);
        assert!(ten.net.stats.telemetry.dropped > 0);
        assert!(ten.availability() <= zero.availability());
    }

    #[test]
    fn flapping_tier_false_positives_and_reconciles() {
        let t = run_net_tier("flapping", 0, flapping_schedule(false), false, 2);
        assert!(t.net.detection.false_positives > 0);
        assert!(t.net.detection.reconciliations > 0);
        assert_eq!(
            t.net.detection.reconciled_streams, t.net.detection.suspected_streams,
            "the reconciler must recover every suspected stream"
        );
        assert!(t.availability() < 1.0);
        assert!(t.nines() > 0.0);
    }

    #[test]
    fn net_json_is_worker_invariant_and_host_lines_strip_clean() {
        let json = |workers: usize| {
            let tiers = vec![
                run_net_tier("0.1%", 1_000, loss_schedule(1_000), true, workers),
                run_net_tier("flapping", 0, flapping_schedule(true), true, workers),
            ];
            to_json(&tiers)
        };
        let one = json(1);
        assert!(one.contains("\"benchmark\": \"net_chaos\""));
        assert!(one.contains("\"conservation_violations\": 0"));
        assert!(one.ends_with("}\n"));
        assert_eq!(
            one.matches(['{', '[']).count(),
            one.matches(['}', ']']).count()
        );
        let stripped = strip_host_lines(&one);
        assert!(!stripped.contains("wall"));
        assert_eq!(stripped, strip_host_lines(&json(8)));
    }
}
