//! One-off probe: the unsharded 1M-stream point (not part of `repro`).
//!
//! This measures the single-`World` baseline the sharded study is compared
//! against in EXPERIMENTS.md ("Sharded replay"): the same 1M cameras and
//! 15M events drained through one event queue. It is deliberately excluded
//! from `repro --scale` — at ~90s wall it would dominate the sweep while
//! adding no deterministic output — so run it by hand when re-measuring:
//!
//! ```sh
//! cargo run --release -p microedge-bench --example serial_1m_probe
//! ```
fn main() {
    let p = microedge_bench::scale::run_scale_point(1_000_000, 5);
    println!(
        "streams={} events={} admit_s={:.3} replay_s={:.3} Mev/s={:.2}",
        p.streams,
        p.events,
        p.admit_wall_s,
        p.run_wall_s,
        p.events_per_sec() / 1e6
    );
}
