//! Ablation (paper §2, §6.4.2): MicroEdge's deployment-time design vs the
//! serverless shared-queue design, per-invoke, across the model catalog.

use criterion::{criterion_group, Criterion};
use microedge_baselines::serverless::{
    baremetal_invoke_breakdown, microedge_invoke_breakdown, ServerlessPath,
};
use microedge_cluster::network::NetworkModel;
use microedge_core::config::DataPlaneConfig;
use microedge_metrics::report::{fmt_f64, Table};
use microedge_models::catalog::fig1_models;

fn render() -> String {
    let net = NetworkModel::rpi_gigabit();
    let dp = DataPlaneConfig::calibrated();
    let path = ServerlessPath::rpi_calibrated();
    let mut table = Table::new(&[
        "model",
        "bare-metal (ms)",
        "microedge (ms)",
        "serverless (ms)",
        "serverless penalty (ms)",
    ]);
    for m in fig1_models() {
        let bm = baremetal_invoke_breakdown(&m, &dp).total().as_millis_f64();
        let me = microedge_invoke_breakdown(&m, &net, &dp)
            .total()
            .as_millis_f64();
        let sl = path.invoke_breakdown(&m, &net, &dp).total().as_millis_f64();
        table.row_owned(vec![
            m.id().to_string(),
            fmt_f64(bm, 2),
            fmt_f64(me, 2),
            fmt_f64(sl, 2),
            fmt_f64(sl - me, 2),
        ]);
    }
    format!("### Ablation — per-invoke latency by design\n{table}")
}

fn bench(c: &mut Criterion) {
    let net = NetworkModel::rpi_gigabit();
    let dp = DataPlaneConfig::calibrated();
    let path = ServerlessPath::rpi_calibrated();
    let models = fig1_models();
    c.bench_function("ablation/serverless_penalty_catalog", |b| {
        b.iter(|| {
            models
                .iter()
                .map(|m| path.penalty_over_microedge(m, &net, &dp).as_nanos())
                .sum::<u64>()
        })
    });
}

criterion_group!(benches, bench);

fn main() {
    println!("{}", render());
    benches();
    Criterion::default().configure_from_args().final_summary();
}
