//! Table 1 — cost of ownership for 17 Coral-Pie cameras.

use criterion::{criterion_group, Criterion};
use microedge_bench::cost::{render_table1, table1_rows};
use microedge_cluster::cost::CostModel;
use microedge_workloads::apps::CameraApp;

fn bench(c: &mut Criterion) {
    let app = CameraApp::coral_pie();
    c.bench_function("table1/compute_rows", |b| {
        b.iter(|| table1_rows(&app, 17, CostModel::paper_prices()))
    });
}

criterion_group!(benches, bench);

fn main() {
    println!("{}", render_table1(&CameraApp::coral_pie(), 17));
    benches();
    Criterion::default().configure_from_args().final_summary();
}
