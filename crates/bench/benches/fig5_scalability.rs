//! Fig. 5a–5d — scalability of MicroEdge vs the dedicated baseline.

use criterion::{criterion_group, Criterion};
use microedge_bench::runner::SystemConfig;
use microedge_bench::scalability::{fig5_sweep, max_cameras, render_sweep, run_point};
use microedge_workloads::apps::CameraApp;

fn bench(c: &mut Criterion) {
    let app = CameraApp::coral_pie();
    c.bench_function("fig5/admission_capacity_6tpus", |b| {
        b.iter(|| max_cameras(&app, SystemConfig::microedge_full(), 6))
    });
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("data_plane_point_2tpus_100frames", |b| {
        b.iter(|| run_point(&app, SystemConfig::microedge_full(), 2, 100))
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    let coral = CameraApp::coral_pie();
    let points = fig5_sweep(&coral, &SystemConfig::fig5_configs(), 6, 300);
    println!("{}", render_sweep(&coral, &points));
    let bodypix = CameraApp::bodypix();
    let bp = [SystemConfig::Baseline, SystemConfig::microedge_full()];
    let points = fig5_sweep(&bodypix, &bp, 6, 300);
    println!("{}", render_sweep(&bodypix, &points));
    benches();
    Criterion::default().configure_from_args().final_summary();
}
