//! Fig. 7b — Invoke latency breakdown.

use criterion::{criterion_group, Criterion};
use microedge_bench::latency_breakdown::{measure_breakdown, render_fig7b};
use microedge_bench::runner::SystemConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7b");
    g.sample_size(10);
    g.bench_function("measure_microedge_50frames", |b| {
        b.iter(|| measure_breakdown(SystemConfig::microedge_full(), 50))
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    println!("{}", render_fig7b(300));
    benches();
    Criterion::default().configure_from_args().final_summary();
}
