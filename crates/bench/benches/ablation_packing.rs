//! Ablation (DESIGN.md ◊3): packing heuristics for admission control.

use criterion::{criterion_group, Criterion};
use microedge_bench::packing::{render_packing, run_packing_ablation};
use microedge_core::config::Features;

fn bench(c: &mut Criterion) {
    c.bench_function("ablation/packing_60req_6tpus_all_policies", |b| {
        b.iter(|| run_packing_ablation(60, 6, Features::all(), 7))
    });
}

criterion_group!(benches, bench);

fn main() {
    println!("{}", render_packing(60, 6, 10));
    benches();
    Criterion::default().configure_from_args().final_summary();
}
