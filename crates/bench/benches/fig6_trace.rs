//! Fig. 6a/6b — MicroEdge performance under the trace workload.

use criterion::{criterion_group, Criterion};
use microedge_bench::runner::SystemConfig;
use microedge_bench::trace_study::{render_fig6, run_fig6, run_trace};
use microedge_sim::time::SimDuration;
use microedge_workloads::trace::{synthesize, TraceConfig};

fn bench(c: &mut Criterion) {
    let mut cfg = TraceConfig::microedge_downsized();
    cfg.duration = SimDuration::from_secs(120);
    let trace = synthesize(&cfg, 42);
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("replay_2min_full_microedge", |b| {
        b.iter(|| run_trace(SystemConfig::microedge_full(), &trace, &cfg, 6))
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    let mut cfg = TraceConfig::microedge_downsized();
    cfg.duration = SimDuration::from_secs(10 * 60);
    let trace = synthesize(&cfg, 42);
    let outcomes = run_fig6(&trace, &cfg, 6);
    println!("{}", render_fig6(&outcomes));
    benches();
    Criterion::default().configure_from_args().final_summary();
}
