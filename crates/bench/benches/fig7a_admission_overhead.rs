//! Fig. 7a — one-time admission-control overhead.

use criterion::{criterion_group, Criterion};
use microedge_bench::admission_overhead::{render_fig7a, run_overhead};
use microedge_bench::runner::experiment_cluster;
use microedge_core::admission::{AdmissionPolicy, FirstFit};
use microedge_core::config::Features;
use microedge_core::pool::TpuPool;
use microedge_core::units::TpuUnits;
use microedge_models::catalog::ssd_mobilenet_v2;
use microedge_tpu::spec::TpuSpec;

fn bench(c: &mut Criterion) {
    c.bench_function("fig7a/launch_model_2000_samples", |b| {
        b.iter(|| run_overhead(2000, 42))
    });
    // The admission decision itself, at the paper's 100-node ceiling.
    let pool = TpuPool::from_cluster(&experiment_cluster(100), TpuSpec::coral_usb());
    let model = ssd_mobilenet_v2();
    let mut policy = FirstFit::new();
    c.bench_function("fig7a/admission_decision_100_tpus", |b| {
        b.iter(|| policy.plan(&pool, &model, TpuUnits::from_f64(0.35), Features::all()))
    });
}

criterion_group!(benches, bench);

fn main() {
    println!("{}", render_fig7a(5000, 42));
    benches();
    Criterion::default().configure_from_args().final_summary();
}
