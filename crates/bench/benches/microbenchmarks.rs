//! Core-operation micro-benchmarks: the per-operation costs that bound the
//! simulator's and the control plane's throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use microedge_bench::runner::experiment_cluster;
use microedge_core::admission::{reference, AdmissionPolicy, FirstFit, PlanBuffer};
use microedge_core::config::Features;
use microedge_core::lbs::LbService;
use microedge_core::pool::{Allocation, TpuPool};
use microedge_core::units::TpuUnits;
use microedge_models::catalog::ssd_mobilenet_v2;
use microedge_sim::event::EventQueue;
use microedge_sim::rng::DetRng;
use microedge_sim::time::{SimDuration, SimTime};
use microedge_tpu::device::TpuId;
use microedge_tpu::spec::TpuSpec;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("micro/event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                q.schedule_at(SimTime::from_nanos((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            sum
        })
    });
}

fn bench_event_queue_1m(c: &mut Criterion) {
    // The two-tier queue at scale: a million events spread over ~100
    // simulated seconds, far beyond the near-future ring, so the bench
    // exercises overflow-heap migration as well as bucket scans.
    c.bench_function("micro/event_queue_push_pop_1m", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000_000u64 {
                q.schedule_at(SimTime::from_nanos((i * 7919) % 100_000_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            sum
        })
    });
}

fn bench_epoch_barrier_exchange(c: &mut Criterion) {
    // The sharded replay's epoch machinery at a million events: 8 shard
    // queues each holding 125k events, drained epoch by epoch with a
    // barrier `advance_to` and a sorted cross-shard exchange (every 8th
    // event emits a message ring-routed to the next shard), against the
    // unsharded baseline of one queue popping the same million events.
    // The gap between the two is the price of determinism-preserving
    // sharding — barrier bookkeeping, exchange sort, re-scheduling.
    const EVENTS: u64 = 1_000_000;
    const SHARDS: u64 = 8;
    const SPAN_NS: u64 = 10_000_000_000; // events spread over 10 simulated seconds
    const FORWARDED: u64 = 1 << 63; // high bit marks a delivered message

    c.bench_function("micro/epoch_unsharded_queue_1m", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..EVENTS {
                q.schedule_at(SimTime::from_nanos((i * 7919) % SPAN_NS), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            sum
        })
    });

    c.bench_function("micro/epoch_sharded_8x125k_exchange_1m", |b| {
        let epoch = SimDuration::from_millis(500);
        b.iter(|| {
            let mut queues: Vec<EventQueue<u64>> = (0..SHARDS).map(|_| EventQueue::new()).collect();
            for i in 0..EVENTS {
                queues[(i % SHARDS) as usize]
                    .schedule_at(SimTime::from_nanos((i * 7919) % SPAN_NS), i);
            }
            let mut sum = 0u64;
            let mut now = SimTime::from_nanos(0);
            let mut msgs: Vec<(u64, SimTime, u64)> = Vec::new();
            loop {
                let barrier = now.checked_add(epoch).expect("epoch barrier overflows");
                for (src, q) in queues.iter_mut().enumerate() {
                    while let Some((t, v)) = q.pop_due(barrier) {
                        sum = sum.wrapping_add(v & !FORWARDED);
                        if v & FORWARDED == 0 && v.is_multiple_of(8) {
                            msgs.push((src as u64, t, v));
                        }
                    }
                    q.advance_to(barrier);
                }
                msgs.sort_unstable_by_key(|&(src, t, v)| (t, src, v));
                for (src, t, v) in msgs.drain(..) {
                    let dest = ((src + 1) % SHARDS) as usize;
                    queues[dest].schedule_at(t.max(barrier), v | FORWARDED);
                }
                now = barrier;
                if queues.iter().all(EventQueue::is_empty) {
                    break;
                }
            }
            sum
        })
    });
}

fn bench_stream_lookup(c: &mut Criterion) {
    // The dispatch loop resolves a StreamId on every event. The runtime
    // stores streams in a slab (Vec indexed by id); this pins the gap to
    // the BTreeMap it replaced.
    const STREAMS: u64 = 512;
    let slab: Vec<u64> = (0..STREAMS).map(|i| i * 3).collect();
    let map: std::collections::BTreeMap<u64, u64> = (0..STREAMS).map(|i| (i, i * 3)).collect();
    let ids: Vec<u64> = (0..4096u64).map(|i| (i * 2654435761) % STREAMS).collect();
    c.bench_function("micro/stream_lookup_slab_4k", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for &id in &ids {
                sum = sum.wrapping_add(slab[id as usize]);
            }
            sum
        })
    });
    c.bench_function("micro/stream_lookup_btreemap_4k", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for &id in &ids {
                sum = sum.wrapping_add(map[&id]);
            }
            sum
        })
    });
}

fn bench_units(c: &mut Criterion) {
    c.bench_function("micro/tpu_units_duty_cycle", |b| {
        let service = SimDuration::from_nanos(23_333_333);
        let period = SimDuration::from_nanos(66_666_667);
        b.iter(|| TpuUnits::from_duty_cycle(service, period))
    });
}

fn bench_lbs(c: &mut Criterion) {
    let allocations: Vec<Allocation> = (0..6)
        .map(|i| {
            Allocation::new(
                TpuId(i),
                TpuUnits::from_micro(100_000 + u64::from(i) * 37_000),
            )
        })
        .collect();
    let mut lbs = LbService::from_allocations(&allocations);
    c.bench_function("micro/lbs_next_6_targets", |b| b.iter(|| lbs.next()));
}

fn bench_admission(c: &mut Criterion) {
    for tpus in [6u32, 100] {
        let pool = TpuPool::from_cluster(&experiment_cluster(tpus), TpuSpec::coral_usb());
        let model = ssd_mobilenet_v2();
        let mut policy = FirstFit::new();
        c.bench_function(format!("micro/admission_plan_{tpus}_tpus"), |b| {
            b.iter(|| policy.plan(&pool, &model, TpuUnits::from_f64(0.35), Features::all()))
        });
    }
}

fn bench_admission_indexed_vs_linear(c: &mut Criterion) {
    // The control-plane fast path on its adversarial workload: a 4096-TPU
    // fleet where every TPU but the last is at 0.75 load, so a 0.35 plan
    // fits only on the final TPU. The linear reference walks 4095
    // accounts; the indexed policy makes one capacity-index descent. The
    // PR's acceptance bar — indexed ≥ 10x faster than linear at 4096 —
    // is read directly off these two numbers.
    const TPUS: u32 = 4096;
    let mut pool = TpuPool::from_cluster(&experiment_cluster(TPUS), TpuSpec::coral_usb());
    let model = ssd_mobilenet_v2();
    let load = TpuUnits::from_f64(0.75);
    let preload: Vec<Allocation> = pool
        .accounts()
        .iter()
        .take(TPUS as usize - 1)
        .map(|account| Allocation::new(account.id(), load))
        .collect();
    pool.commit(&model, &preload);
    let units = TpuUnits::from_f64(0.35);

    let mut indexed = FirstFit::new();
    let mut linear = reference::FirstFit::new();
    assert_eq!(
        indexed.plan(&pool, &model, units, Features::all()),
        linear.plan(&pool, &model, units, Features::all()),
        "indexed and reference plans diverged"
    );

    let mut buffer = PlanBuffer::new();
    c.bench_function("micro/admission_indexed_4096_tpus", |b| {
        b.iter(|| indexed.plan_into(&pool, &model, units, Features::all(), &mut buffer))
    });
    c.bench_function("micro/admission_linear_4096_tpus", |b| {
        b.iter(|| linear.plan_into(&pool, &model, units, Features::all(), &mut buffer))
    });
}

fn bench_defrag_planner(c: &mut Criterion) {
    // The background defragmenter's hot path on its adversarial workload:
    // a 4096-TPU fleet after heavy churn, every TPU left holding one
    // 0.25-unit straggler (0.75 free but nothing whole). `plan_evict`
    // prices one donor's full eviction — scratch-pool clone plus best-fit
    // receiver planning — and `donor_candidates` is the capacity-index
    // scan that orders the cycle's donors. Both run at epoch barriers, so
    // their cost bounds how much repacking a 500 ms barrier can afford.
    use microedge_core::defrag::donor_candidates;
    use microedge_core::scheduler::ExtendedScheduler;
    use microedge_models::catalog::Catalog;
    use microedge_orch::lifecycle::Orchestrator;
    use microedge_orch::pod::{PodSpec, ResourceRequest, EXT_MODEL, EXT_TPU_UNITS};

    const TPUS: u32 = 4096;
    let cluster = experiment_cluster(TPUS);
    let mut sched =
        ExtendedScheduler::new(&cluster, Catalog::builtin(), Features::co_compiling_only());
    let mut orch = Orchestrator::new(cluster);
    let mut pods = Vec::new();
    for i in 0..TPUS * 4 {
        let spec = PodSpec::builder(&format!("cam-{i}"), "coral-pie:latest")
            .resources(ResourceRequest::camera_default())
            .extension(EXT_MODEL, "mobilenet-v1")
            .extension(EXT_TPU_UNITS, "0.25")
            .build();
        pods.push(
            sched
                .deploy(&mut orch, spec)
                .expect("pool sized to fit")
                .pod(),
        );
    }
    // Churn: keep one straggler per TPU, tear the rest down.
    let mut keeper_seen = std::collections::BTreeSet::new();
    for pod in pods {
        let tpu = sched.assignment(pod).expect("pod is live")[0].tpu();
        if !keeper_seen.insert(tpu) {
            sched.teardown(&mut orch, pod).expect("live pod tears down");
        }
    }
    assert_eq!(sched.pool().used_tpus(), TPUS as usize);

    let donor = TpuId(0);
    c.bench_function("micro/defrag_plan_evict_4096_fragmented", |b| {
        b.iter(|| sched.plan_evict(donor).expect("donor load fits elsewhere"))
    });
    c.bench_function("micro/defrag_donor_scan_4096_fragmented", |b| {
        b.iter(|| donor_candidates(sched.pool()).len())
    });
}

fn bench_rng(c: &mut Criterion) {
    let mut rng = DetRng::seed_from(1);
    c.bench_function("micro/rng_exponential", |b| b.iter(|| rng.exponential(0.5)));
}

fn bench_telemetry_sketch_vs_exact(c: &mut Criterion) {
    // The per-completion telemetry path at a million samples: the
    // constant-memory log-linear sketch against the sample-retaining exact
    // histogram it replaced, for both recording and percentile queries.
    use microedge_sim::stats::{Histogram, LogLinearSketch};
    const SAMPLES: usize = 1_000_000;
    let mut rng = DetRng::seed_from(7);
    let latencies: Vec<f64> = (0..SAMPLES)
        .map(|_| 5.0 + rng.exponential(1.0 / 25.0))
        .collect();
    c.bench_function("micro/telemetry_sketch_record_1m", |b| {
        b.iter(|| {
            let mut s = LogLinearSketch::new();
            for &v in &latencies {
                s.record(v);
            }
            s.count()
        })
    });
    c.bench_function("micro/telemetry_exact_record_1m", |b| {
        b.iter(|| {
            let mut h = Histogram::new();
            for &v in &latencies {
                h.record(v);
            }
            h.count()
        })
    });
    let sketch: LogLinearSketch = latencies.iter().copied().collect();
    let exact: Histogram = latencies.iter().copied().collect();
    c.bench_function("micro/telemetry_sketch_p99_1m", |b| {
        b.iter(|| sketch.percentile(99.0))
    });
    c.bench_function("micro/telemetry_exact_p99_1m", |b| {
        // The clone is part of the honest cost: the exact histogram's
        // percentile sorts its retained samples, so a fresh (unsorted)
        // copy is what the recorder hands it.
        b.iter(|| exact.clone().percentile(99.0))
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_event_queue_1m,
    bench_epoch_barrier_exchange,
    bench_stream_lookup,
    bench_units,
    bench_lbs,
    bench_admission,
    bench_admission_indexed_vs_linear,
    bench_defrag_planner,
    bench_rng,
    bench_telemetry_sketch_vs_exact
);
criterion_main!(benches);
