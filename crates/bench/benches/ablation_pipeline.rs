//! Ablation (paper §8 extension): multi-model pipeline hop optimization.

use criterion::{criterion_group, Criterion};
use microedge_bench::pipeline_ablation::{render_pipeline_ablation, run_pipeline_ablation};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_pipeline");
    g.sample_size(10);
    g.bench_function("two_stage_pipeline_60frames", |b| {
        b.iter(|| run_pipeline_ablation(60))
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    println!("{}", render_pipeline_ablation(300));
    benches();
    Criterion::default().configure_from_args().final_summary();
}
