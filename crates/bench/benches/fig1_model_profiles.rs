//! Fig. 1 — model processing times on the TPU.

use criterion::{criterion_group, Criterion};
use microedge_bench::fig1::{fig1_rows, render_fig1};

fn bench(c: &mut Criterion) {
    c.bench_function("fig1/build_rows", |b| b.iter(fig1_rows));
}

criterion_group!(benches, bench);

fn main() {
    println!("{}", render_fig1());
    benches();
    Criterion::default().configure_from_args().final_summary();
}
