//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the `proptest!` macro (with `#![proptest_config]`), `prop_assert*` /
//! `prop_assume!`, `prop_oneof!`, the [`strategy::Strategy`] trait with
//! `prop_map` / `boxed`, numeric range strategies, tuples, `Just`,
//! `prop::collection::vec`, `prop::option::of`, `prop::bool::ANY`, and
//! string strategies driven by a small regex subset (`[...]` classes,
//! `{m,n}` / `*` quantifiers, `\PC`).
//!
//! Differences from the real crate, deliberately accepted for an offline
//! environment: inputs are sampled from a deterministic per-test RNG (seeded
//! from the test name), failing cases are reported but **not shrunk**, and
//! no `.proptest-regressions` files are read or written.

pub mod test_runner {
    /// Run configuration mirroring `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic xoshiro256++ generator used to sample all strategies.
    /// Seeded from the test name so every test sees a stable but distinct
    /// stream across runs and across test reorderings.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        #[must_use]
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Stable FNV-1a hash of the test name → seed.
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Debiased multiply-shift.
            let mut x = self.next_u64();
            let mut m = u128::from(x) * u128::from(n);
            let mut lo = m as u64;
            if lo < n {
                let threshold = n.wrapping_neg() % n;
                while lo < threshold {
                    x = self.next_u64();
                    m = u128::from(x) * u128::from(n);
                    lo = m as u64;
                }
            }
            (m >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use core::ops::{Range, RangeInclusive};

    use crate::test_runner::TestRng;

    /// Value-generation trait mirroring `proptest::strategy::Strategy`.
    ///
    /// Unlike the real crate there is no value tree: a strategy simply
    /// samples a value from the runner's RNG (no shrinking).
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, func: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, func }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Object-safe boxed strategy, mirroring `proptest::strategy::BoxedStrategy`.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        func: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.func)(self.source.sample(rng))
        }
    }

    /// Constant strategy mirroring `proptest::strategy::Just`.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice over boxed strategies; the expansion of `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        #[must_use]
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            assert!(
                arms.iter().any(|(w, _)| *w > 0),
                "prop_oneof! needs a positive weight"
            );
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut pick = rng.below(total);
            for (weight, strategy) in &self.arms {
                let weight = u64::from(*weight);
                if pick < weight {
                    return strategy.sample(rng);
                }
                pick -= weight;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let width = (hi as i128 - lo as i128) as u64;
                    if width == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(width + 1) as i128) as $t
                }
            }
        )*};
    }

    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty strategy range");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    // Tuple expressions evaluate left to right, so the
                    // element sampling order is deterministic.
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategies!(A: 0);
    tuple_strategies!(A: 0, B: 1);
    tuple_strategies!(A: 0, B: 1, C: 2);
    tuple_strategies!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategies!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategies!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    tuple_strategies!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    tuple_strategies!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

    impl Strategy for &'static str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            crate::string::sample_pattern(self, rng)
        }
    }
}

pub mod string {
    //! String generation from a regex subset: literal characters, `[...]`
    //! classes (ranges, `\`-escapes), `{n}` / `{m,n}` / `*` / `+` / `?`
    //! quantifiers, and `\PC` (printable, non-control characters).

    use crate::test_runner::TestRng;

    fn printable_chars() -> Vec<char> {
        let mut set: Vec<char> = (0x20u8..0x7F).map(char::from).collect();
        // A few multi-byte code points so parsers meet non-ASCII input.
        set.extend(['é', 'Ω', 'λ', '→', '中']);
        set
    }

    fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
        // chars[i] is the character after '['.
        let mut set = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            if chars[i] == '\\' && i + 1 < chars.len() {
                set.push(chars[i + 1]);
                i += 2;
            } else if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                let (lo, hi) = (chars[i], chars[i + 2]);
                assert!(lo <= hi, "inverted class range {lo}-{hi}");
                for c in lo..=hi {
                    set.push(c);
                }
                i += 3;
            } else {
                set.push(chars[i]);
                i += 1;
            }
        }
        assert!(i < chars.len(), "unterminated character class");
        (set, i + 1) // skip ']'
    }

    fn parse_quantifier(chars: &[char], i: usize) -> (usize, usize, usize) {
        match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated quantifier")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (lo, hi) = match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("bad quantifier"),
                        hi.parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n: usize = body.parse().expect("bad quantifier");
                        (n, n)
                    }
                };
                (lo, hi, close + 1)
            }
            Some('*') => (0, 15, i + 1),
            Some('+') => (1, 15, i + 1),
            Some('?') => (0, 1, i + 1),
            _ => (1, 1, i),
        }
    }

    /// Samples one string matching `pattern` (within the supported subset).
    pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let choices: Vec<char> = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(&chars, i + 1);
                    i = next;
                    set
                }
                '\\' => {
                    let escape = *chars.get(i + 1).expect("dangling escape");
                    if escape == 'P' || escape == 'p' {
                        // `\PC` / `\pC`-style unicode category; treat any
                        // category letter as "printable".
                        i += 3;
                        printable_chars()
                    } else {
                        i += 2;
                        vec![escape]
                    }
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (lo, hi, next) = parse_quantifier(&chars, i);
            i = next;
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                out.push(choices[rng.below(choices.len() as u64) as usize]);
            }
        }
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn class_with_quantifier() {
            let mut rng = TestRng::from_seed(1);
            for _ in 0..200 {
                let s = sample_pattern("[a-z][a-z0-9-]{0,20}", &mut rng);
                assert!(!s.is_empty() && s.len() <= 21);
                assert!(s.chars().next().unwrap().is_ascii_lowercase());
                assert!(s
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
            }
        }

        #[test]
        fn escaped_dash_and_literals() {
            let mut rng = TestRng::from_seed(2);
            for _ in 0..200 {
                let s = sample_pattern("[a-z0-9,.\\- ]{0,40}", &mut rng);
                assert!(s.len() <= 40);
                assert!(s.chars().all(|c| c.is_ascii_lowercase()
                    || c.is_ascii_digit()
                    || matches!(c, ',' | '.' | '-' | ' ')));
            }
        }

        #[test]
        fn printable_star() {
            let mut rng = TestRng::from_seed(3);
            for _ in 0..200 {
                let s = sample_pattern("\\PC*", &mut rng);
                assert!(s.chars().all(|c| !c.is_control()));
            }
        }

        #[test]
        fn exact_count() {
            let mut rng = TestRng::from_seed(4);
            let s = sample_pattern("[ ]{4}", &mut rng);
            assert_eq!(s, "    ");
        }
    }
}

pub mod collection {
    use core::ops::{Range, RangeInclusive};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive element-count range, mirroring `proptest::collection::SizeRange`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// `Vec` strategy, mirroring `proptest::collection::VecStrategy`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `Option` strategy, mirroring `proptest::option::OptionStrategy`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            // 1-in-4 None, matching the real crate's default weighting
            // closely enough for coverage purposes.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform boolean strategy, mirroring `proptest::bool::ANY`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...)` item becomes
/// a test that samples its arguments `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut proptest_rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                for proptest_case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &($strategy),
                            &mut proptest_rng,
                        );
                    )+
                    let proptest_outcome =
                        (|| -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(message) = proptest_outcome {
                        ::std::panic!(
                            "proptest case {}/{} failed: {}",
                            proptest_case + 1,
                            config.cases,
                            message
                        );
                    }
                }
            }
        )*
    };
}

/// Non-fatal assertion: reports the failing case instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                left,
                right,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Skips the current case when its sampled inputs don't satisfy a
/// precondition. (The stub counts skipped cases as passed.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Weighted union of strategies: `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirrors the `prop` module alias the real prelude exposes.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::option;
        pub use crate::string;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 5usize..=9, z in -2.0f64..2.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((5..=9).contains(&y));
            prop_assert!((-2.0..2.0).contains(&z));
        }

        #[test]
        fn vec_sizes_respect_range(xs in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&x| x < 5));
        }

        #[test]
        fn exact_vec_size(xs in prop::collection::vec(0u64..=10, 4)) {
            prop_assert_eq!(xs.len(), 4);
        }

        #[test]
        fn tuples_and_map(pair in (0u32..4, 0u32..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair <= 6);
        }

        #[test]
        fn oneof_selects_every_arm(picks in prop::collection::vec(
            prop_oneof![3 => (0..3usize).prop_map(|i| i), 1 => Just(99usize)],
            50..60,
        )) {
            prop_assert!(picks.iter().all(|&p| p < 3 || p == 99));
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0, "only even cases reach here");
        }

        #[test]
        fn bool_and_option(flag in prop::bool::ANY, opt in prop::option::of(0u32..5)) {
            let _ = flag;
            if let Some(v) = opt {
                prop_assert!(v < 5);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u64..1_000, 1..50);
        let mut a = TestRng::for_test("determinism");
        let mut b = TestRng::for_test("determinism");
        for _ in 0..16 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }
}
