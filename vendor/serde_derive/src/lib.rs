//! Offline stand-in for `serde_derive`.
//!
//! The workspace cannot reach a crates.io registry, and nothing in the tree
//! actually serialises bytes (serde is declared for future wire formats).
//! These derives accept the same syntax as the real crate — including
//! `#[serde(...)]` field attributes — and expand to nothing; the companion
//! `serde` stub supplies blanket trait impls so bounds still hold.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
