//! Offline stand-in for the `rand` 0.9 API surface used by this workspace.
//!
//! The only consumer is `microedge_sim::rng::DetRng`, which needs
//! `SmallRng::seed_from_u64`, `RngCore::next_u64`, `Rng::random::<f64>()` and
//! `Rng::random_range(lo..hi)` over `u64`. The generator is xoshiro256++
//! (the same family the real `SmallRng` uses on 64-bit targets), seeded via
//! SplitMix64 exactly like `SeedableRng::seed_from_u64` in rand_core, so the
//! statistical quality matches what the simulator's distribution tests
//! (normal/exponential/Poisson moments) expect. Numeric streams are NOT
//! bit-compatible with upstream `rand`; determinism within this workspace is
//! what matters and is preserved.

use core::ops::Range;

/// Core trait mirroring `rand_core::RngCore`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seeding trait mirroring `rand_core::SeedableRng` (the `seed_from_u64`
/// entry point only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable by [`Rng::random`].
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                // Debiased multiply-shift (Lemire); width is < 2^64 here
                // because start < end.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (width as u128);
                let mut lo = m as u64;
                if lo < width {
                    let threshold = width.wrapping_neg() % width;
                    while lo < threshold {
                        x = rng.next_u64();
                        m = (x as u128) * (width as u128);
                        lo = m as u64;
                    }
                }
                self.start.wrapping_add((m >> 64) as u64 as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u64, u32, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.random::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; the same
    /// generator family the real `SmallRng` selects on 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.random_range(10u64..20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.random_range(0u64..8) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }
}
