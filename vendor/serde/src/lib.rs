//! Offline stand-in for `serde`.
//!
//! The repository declares serde on most crates for eventual wire formats,
//! but no code path serialises anything yet (there is no `serde_json` in the
//! tree). This stub keeps the `#[derive(Serialize, Deserialize)]` annotations
//! compiling without network access: the derives expand to nothing and the
//! traits hold for every type via blanket impls, so any `T: Serialize` bound
//! in future code is satisfied trivially. Swap back to the real crate by
//! restoring the registry dependency — no source changes needed.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de> + ?Sized> DeserializeOwned for T {}

pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
