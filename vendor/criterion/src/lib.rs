//! Offline stand-in for `criterion` covering the API surface the workspace
//! benches use: `Criterion::default().configure_from_args().final_summary()`,
//! `bench_function`, `benchmark_group` (+ `sample_size` / `finish`),
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark warms up briefly, then runs timed
//! batches and reports the best per-iteration time (least interference) plus
//! the mean, in a single line per benchmark. No plots, no statistics files —
//! just numbers on stdout, which is all the offline environment can use.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Per-iteration timing collector handed to the closure given to
/// [`Criterion::bench_function`].
pub struct Bencher {
    /// Total time budget for the measurement phase.
    budget: Duration,
    /// Measured best and mean nanoseconds per iteration.
    best_ns: f64,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            budget,
            best_ns: f64::INFINITY,
            mean_ns: 0.0,
            iters: 0,
        }
    }

    /// Runs `f` repeatedly, timing batches whose size adapts so each batch
    /// lasts long enough for the clock to resolve it.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until ~10% of the budget is spent, sizing batches.
        let warmup_end = Instant::now() + self.budget / 10;
        let mut batch = 1u64;
        while Instant::now() < warmup_end {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed < Duration::from_micros(200) {
                batch = batch.saturating_mul(2);
            }
        }

        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        let measure_end = Instant::now() + self.budget;
        while Instant::now() < measure_end {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            let elapsed = start.elapsed();
            let per_iter = elapsed.as_secs_f64() * 1e9 / batch as f64;
            if per_iter < self.best_ns {
                self.best_ns = per_iter;
            }
            total += elapsed;
            total_iters += batch;
        }
        if total_iters > 0 {
            self.mean_ns = total.as_secs_f64() * 1e9 / total_iters as f64;
            self.iters = total_iters;
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Benchmark driver mirroring `criterion::Criterion`.
pub struct Criterion {
    /// Measurement budget per benchmark.
    measurement: Duration,
    /// Substring filter taken from argv (first free argument), like the real
    /// harness's name filter.
    filter: Option<String>,
    ran: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(300),
            filter: None,
            ran: 0,
        }
    }
}

impl Criterion {
    /// Picks up a benchmark-name substring filter from the command line.
    /// Flags (`--bench`, `--test`, ...) that cargo passes are ignored.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    /// Overrides the per-benchmark measurement time.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement = t;
        self
    }

    /// Runs one benchmark and prints a summary line.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let id = id.as_ref();
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher::new(self.measurement);
        f(&mut b);
        if b.iters > 0 {
            println!(
                "{id:<48} best {:>12}/iter  mean {:>12}/iter  ({} iters)",
                format_ns(b.best_ns),
                format_ns(b.mean_ns),
                b.iters
            );
        } else {
            println!("{id:<48} (no iterations measured)");
        }
        self.ran += 1;
        self
    }

    /// Opens a named group; the name prefixes every benchmark inside it.
    pub fn benchmark_group<S: AsRef<str>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.as_ref().to_string(),
        }
    }

    /// Prints the closing line the real harness emits.
    pub fn final_summary(&mut self) {
        println!("criterion (offline stub): {} benchmark(s) run", self.ran);
    }
}

/// Group handle mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's fixed time budget already
    /// bounds the iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement = t;
        self
    }

    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        self.criterion.bench_function(full, f);
        self
    }

    pub fn finish(self) {}
}

/// Mirrors `criterion_group!`: expands to a function running each target
/// against a shared `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Mirrors `criterion_main!`: expands to `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(20));
        c.bench_function("stub/self_test", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("inner", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
